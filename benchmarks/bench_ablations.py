"""Ablation benches: tile size, theta, queue policy, host/device overlap.

Each ablation prints its paper-style table and benchmarks the piece of
machinery whose design choice it studies.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench.experiments import (
    ablation_overlap,
    ablation_queue,
    ablation_theta,
    ablation_tile,
)
from repro.core import PlanConfig, get_plan
from repro.core.scheduler import schedule_walks
from repro.nbody import plummer
from repro.tree import build_octree, generate_walks


class TestTileAblation:
    @pytest.fixture(scope="class")
    def result(self):
        res = ablation_tile(n_values=(4096, 16384), wg_sizes=(64, 128, 256))
        emit(res.render())
        return res

    def test_bench_tile_points(self, result, benchmark):
        from repro.bench.runner import run_plan_point

        def point():
            return run_plan_point("jw", 4096, config=PlanConfig(wg_size=128))

        benchmark.pedantic(point, rounds=3, iterations=1, warmup_rounds=1)
        assert len(result.data["points"]) == 6


class TestThetaAblation:
    @pytest.fixture(scope="class")
    def result(self):
        res = ablation_theta(n=2048)
        emit(res.render())
        return res

    def test_bench_theta_point(self, result, benchmark):
        particles = plummer(2048, seed=4)
        plan = get_plan("jw", PlanConfig(theta=0.6))

        def functional_step():
            return plan.compute_step(particles.positions, particles.masses)

        benchmark.pedantic(functional_step, rounds=3, iterations=1, warmup_rounds=1)
        errs = result.data["errors"]
        assert errs == sorted(errs)  # error grows with theta


class TestQueueAblation:
    @pytest.fixture(scope="class")
    def result(self):
        res = ablation_queue(n=32768)
        emit(res.render())
        return res

    def test_bench_scheduling(self, result, benchmark):
        particles = plummer(16384, seed=5)
        plan = get_plan("w", PlanConfig())
        walks = plan.prepare(particles.positions, particles.masses)
        costs = walks.interactions_per_walk().astype(float)

        def schedule_all():
            return [schedule_walks(costs, 18, p) for p in ("static", "dynamic", "dynamic-lpt")]

        outs = benchmark.pedantic(schedule_all, rounds=3, iterations=2, warmup_rounds=1)
        assert outs[1].makespan <= outs[0].makespan


class TestOverlapAblation:
    @pytest.fixture(scope="class")
    def result(self):
        res = ablation_overlap(n_values=(4096, 16384, 65536))
        emit(res.render())
        return res

    def test_overlap_gains(self, result, benchmark):
        from repro.core.pipeline import overlapped_pipeline3, split_batches

        rng = np.random.default_rng(6)
        cpu = list(rng.uniform(1e-4, 1e-3, 64))
        pcie = list(rng.uniform(1e-5, 1e-4, 64))
        gpu = list(rng.uniform(1e-4, 1e-3, 64))

        def pipeline():
            return overlapped_pipeline3(cpu, pcie, gpu)

        benchmark.pedantic(pipeline, rounds=5, iterations=10, warmup_rounds=1)
        assert all(g > 1.0 for g in result.data["gains"])

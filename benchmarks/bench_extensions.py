"""Extension benches: quadrupole moments, multi-GPU projection, validation.

These cover the beyond-the-paper features: the higher-order treecode, the
multi-device scaling projection, and the plan x workload accuracy sweep.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.experiments import (
    ablation_quadrupole,
    extension_multigpu,
    validation_accuracy,
)
from repro.nbody import plummer
from repro.tree import build_octree
from repro.tree.quadrupole import bh_accelerations_quadrupole, quadrupole_moments


class TestQuadrupoleExtension:
    @pytest.fixture(scope="class")
    def result(self):
        res = ablation_quadrupole(n=2048, thetas=(0.6, 1.0))
        emit(res.render())
        return res

    @pytest.fixture(scope="class")
    def tree(self):
        p = plummer(4096, seed=21)
        return build_octree(p.positions, p.masses, leaf_size=16)

    def test_bench_moment_computation(self, result, tree, benchmark):
        q = benchmark.pedantic(
            lambda: quadrupole_moments(tree), rounds=5, iterations=1, warmup_rounds=1
        )
        assert q.shape == (tree.n_nodes, 3, 3)

    def test_bench_quadrupole_force(self, result, tree, benchmark):
        quads = quadrupole_moments(tree)

        def force():
            return bh_accelerations_quadrupole(
                tree, theta=0.6, softening=1e-2, quads=quads
            )

        acc = benchmark.pedantic(force, rounds=3, iterations=1, warmup_rounds=1)
        assert acc.shape == (4096, 3)
        assert all(i > 1.0 for i in result.data["improvements"])


class TestMultiGpuExtension:
    @pytest.fixture(scope="class")
    def result(self):
        res = extension_multigpu(n=32768, devices=(1, 2, 4, 8))
        emit(res.render())
        return res

    def test_bench_multigpu_point(self, result, benchmark):
        from repro.core import MultiDeviceJwPlan, PlanConfig

        p = plummer(16384, seed=22)
        plan = MultiDeviceJwPlan(PlanConfig(), n_devices=4)

        def point():
            return plan.step_breakdown(p.positions, p.masses)

        benchmark.pedantic(point, rounds=3, iterations=1, warmup_rounds=1)
        totals = result.data["totals"]
        assert totals[0] > totals[-1]  # more devices never slower
        # saturation: 8 devices nowhere near 8x
        assert totals[0] / totals[-1] < 4.0


class TestValidationSweep:
    @pytest.fixture(scope="class")
    def result(self):
        res = validation_accuracy(n=1024)
        emit(res.render())
        return res

    def test_bench_validation_cell(self, result, benchmark):
        from repro.bench.validation import accuracy_matrix

        def one_cell():
            return accuracy_matrix(plans=("jw",), workloads=("plummer",), n=512)

        cells = benchmark.pedantic(one_cell, rounds=3, iterations=1, warmup_rounds=1)
        assert cells[0].passed
        assert result.data["all_passed"]

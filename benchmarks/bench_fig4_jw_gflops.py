"""Fig. 4 — jw-parallel GFLOPS vs N.

Regenerates the paper's Fig. 4 series (printed below the pytest-benchmark
table) and times the jw plan's full per-step cost computation — tree
build, walk generation, and simulated-device timing — which is the
harness work behind every figure point.
"""

import pytest

from benchmarks.conftest import BENCH_N_SWEEP, emit
from repro.bench.experiments import fig4
from repro.core import PlanConfig, get_plan
from repro.nbody import plummer


@pytest.fixture(scope="module")
def figure():
    result = fig4(n_values=BENCH_N_SWEEP)
    emit(result.render())
    return result


def test_fig4_regenerates(figure, benchmark):
    rows = figure.data["rows"]
    # paper shape: substantial already at small N, near-sustained at large N
    assert rows[0].kernel_gflops > 100
    assert rows[-1].kernel_gflops > 250

    particles = plummer(16384, seed=1)
    plan = get_plan("jw", PlanConfig())

    def point():
        return plan.step_breakdown(particles.positions, particles.masses)

    b = benchmark.pedantic(point, rounds=3, iterations=1, warmup_rounds=1)
    assert b.kernel_gflops() > 200


def test_fig4_peak_convention(figure):
    """The 38-flop convention column reproduces the paper's 431-style peak."""
    rows = figure.data["rows"]
    peak_rsqrt = max(r.kernel_gflops_rsqrt for r in rows)
    assert 400 < peak_rsqrt < 700

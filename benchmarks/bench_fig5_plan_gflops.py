"""Fig. 5 — kernel GFLOPS of all four plans vs N.

Prints the regenerated figure and times each plan's per-step cost
computation at N = 4096 so the four plans' harness costs are directly
comparable in the pytest-benchmark table.
"""

import pytest

from benchmarks.conftest import BENCH_N_SWEEP, emit
from repro.bench.experiments import fig5
from repro.core import PlanConfig, plan_by_name
from repro.nbody import plummer


@pytest.fixture(scope="module")
def figure():
    result = fig5(n_values=BENCH_N_SWEEP)
    emit(result.render())
    return result


@pytest.fixture(scope="module")
def particles():
    return plummer(4096, seed=2)


@pytest.mark.parametrize("plan_name", ["i", "j", "w", "jw"])
def test_fig5_plan_point(figure, particles, benchmark, plan_name):
    plan = plan_by_name(plan_name, PlanConfig())

    def point():
        return plan.step_breakdown(particles.positions, particles.masses)

    b = benchmark.pedantic(point, rounds=3, iterations=1, warmup_rounds=1)
    assert b.kernel_gflops() > 0


def test_fig5_shapes(figure):
    rows = figure.data["rows"]
    small = {r.plan: r.kernel_gflops for r in rows if r.n_bodies == BENCH_N_SWEEP[0]}
    # the paper's small-N ordering: jw > j > i, and w dragged down by lanes
    assert small["jw"] > small["j"] > small["i"]
    assert small["jw"] > small["w"]

"""Batched-vs-sequential serving benchmark (PR 4 acceptance gate).

Submits a mixed batch of small-N jobs — several plans, one fault-injected
job recovering through per-job retries, and deliberate repeats — through
:func:`repro.serve.connect`, and compares wall-clock throughput
against the obvious baseline: a fresh :class:`RunSession` per submission,
run back-to-back.

The batched path wins on two axes, both honest:

* **time-axis overlap** — live sessions interleave their force tasks
  over one shared :class:`~repro.exec.EnginePool` instead of idling
  between runs (multi-core hosts);
* **content addressing** — repeated specs coalesce in flight and are
  served from the checkpoint cache, so the service never steps the same
  physics twice (any host).

Every job is verified **bit-identical** to its standalone run before any
timing is reported, and the run ends by resubmitting a spec to a fresh
service to prove the cache answers across service lifetimes.

Writes ``BENCH_PR4.json``::

    python benchmarks/bench_serve_batch.py --out BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.check import compare_arrays
from repro.exec.faults import FaultInjector, RetryPolicy
from repro.runtime import RunSession
from repro.serve import JobSpec, SubmitOptions, connect

#: (workload, n, seed, plan) for the unique jobs in the batch.
BATCH = [
    ("plummer", 1024, 1, "jw"),
    ("plummer", 1024, 2, "i"),
    ("plummer", 1024, 3, "w"),
    ("plummer", 1024, 4, "j"),
    ("uniform", 1024, 5, "jw"),
    ("plummer", 2048, 6, "jw"),
    ("uniform", 1024, 7, "w"),
    ("plummer", 1024, 8, "jw"),
]

#: Indices of BATCH resubmitted verbatim (dedup/cache work, zero re-stepping).
REPEATS = [0, 5]

#: Index of BATCH that runs under an injected fault + retry policy.
FAULTY = 3


def build_specs(steps: int) -> list[JobSpec]:
    specs = [
        JobSpec(workload=w, n=n, seed=s, plan=p, steps=steps)
        for (w, n, s, p) in BATCH
    ]
    return specs + [specs[i] for i in REPEATS]


def solo_reference(spec: JobSpec) -> tuple[np.ndarray, np.ndarray]:
    """Final state of ``spec`` run standalone (the bit-identity oracle)."""
    sim = spec.build_simulation()
    for _ in range(spec.steps):
        sim.step()
    return sim.particles.positions.copy(), sim.particles.velocities.copy()


def run_sequential(specs: list[JobSpec], root: Path) -> float:
    """Baseline: one RunSession per submission, back to back, no cache."""
    t0 = time.perf_counter()
    for i, spec in enumerate(specs):
        session = RunSession(spec.build_simulation(), root / f"seq_{i:02d}")
        session.run(spec.steps)
    return time.perf_counter() - t0


def run_batched(
    specs: list[JobSpec],
    cache_dir: Path,
    *,
    backend: str,
    workers: int,
    max_concurrent: int,
) -> tuple[float, list, dict]:
    service = connect(
        None,
        cache_dir=cache_dir,
        max_concurrent_jobs=max_concurrent,
        pool_backend=backend,
        pool_workers=workers,
    )
    t0 = time.perf_counter()
    try:
        handles = []
        for i, spec in enumerate(specs):
            options = None
            if i == FAULTY:
                options = SubmitOptions(
                    fault_injector=FaultInjector(
                        seed=13, task_failure_rate=0.2, fail_attempts=1
                    ),
                    retry=RetryPolicy(max_retries=4, backoff_s=0.0),
                )
            handles.append(service.submit(spec, options=options))
        for h in handles:
            h.result(timeout=600)
        wall = time.perf_counter() - t0
        described = service.describe()
    finally:
        service.close()
    return wall, handles, described


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-concurrent", type=int, default=4)
    parser.add_argument("--out", default="BENCH_PR4.json")
    args = parser.parse_args(argv)

    specs = build_specs(args.steps)
    print(
        f"batch: {len(specs)} submissions ({len(BATCH)} unique, "
        f"{len(REPEATS)} repeats, job {FAULTY} fault-injected), "
        f"steps={args.steps}, pool={args.backend}x{args.workers}"
    )

    references = {}
    for spec in specs:
        h = spec.spec_hash()
        if h not in references:
            references[h] = solo_reference(spec)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        seq_wall = run_sequential(specs, tmp / "seq")
        print(f"sequential: {seq_wall:.3f} s for {len(specs)} runs")

        cache_dir = tmp / "cache"
        batch_wall, handles, described = run_batched(
            specs,
            cache_dir,
            backend=args.backend,
            workers=args.workers,
            max_concurrent=args.max_concurrent,
        )
        print(f"batched:    {batch_wall:.3f} s ({described['deduped']} deduped)")

        # --- bit-identity gate: every job equals its standalone run -----
        jobs = []
        identical = True
        for i, h in enumerate(handles):
            result = h.result()
            ref_pos, ref_vel = references[h.spec_hash]
            ok = (
                compare_arrays(ref_pos, result.positions).bit_identical
                and compare_arrays(ref_vel, result.velocities).bit_identical
            )
            identical &= ok
            jobs.append(
                {
                    "spec_hash": h.spec_hash[:16],
                    "workload": h.spec.workload,
                    "n": h.spec.n,
                    "seed": h.spec.seed,
                    "plan": h.spec.plan,
                    "fault_injected": i == FAULTY,
                    "repeat": i >= len(BATCH),
                    "bit_identical": bool(ok),
                }
            )
        if not identical:
            print("FAIL: batched results are not bit-identical", file=sys.stderr)

        # --- cache gate: a fresh service answers from the cache ---------
        with connect(None, cache_dir=cache_dir) as client:
            t0 = time.perf_counter()
            replay = client.run(specs[0])
            cache_wall = time.perf_counter() - t0
        cache_ok = (
            replay.from_cache
            and compare_arrays(
                references[specs[0].spec_hash()][0], replay.positions
            ).bit_identical
        )
        print(
            f"cache replay: {cache_wall * 1e3:.1f} ms, from_cache={replay.from_cache}"
        )

    speedup = seq_wall / batch_wall if batch_wall > 0 else float("inf")
    doc = {
        "schema": 1,
        "experiment": "serve-batched-vs-sequential",
        "n_submissions": len(specs),
        "n_unique": len(BATCH),
        "n_repeats": len(REPEATS),
        "steps": args.steps,
        "pool": {"backend": args.backend, "workers": args.workers},
        "max_concurrent_jobs": args.max_concurrent,
        "sequential_wall_s": seq_wall,
        "batched_wall_s": batch_wall,
        "throughput_speedup": speedup,
        "deduped": described["deduped"],
        "cache_hits": described["cache_hits"],
        "all_bit_identical": bool(identical),
        "cache_replay": {"from_cache": bool(replay.from_cache),
                         "bit_identical": bool(cache_ok),
                         "wall_s": cache_wall},
        "jobs": jobs,
    }
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    print(
        f"speedup {speedup:.2f}x  bit-identical={identical}  "
        f"cache-replay={cache_ok}  -> {args.out}"
    )
    if not identical or not cache_ok:
        return 1
    if speedup <= 1.0:
        print("FAIL: batched serving did not beat the sequential loop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

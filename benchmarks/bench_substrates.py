"""Substrate micro-benchmarks: real wall-time of the building blocks.

These measure the actual Python/NumPy performance of the library's hot
paths on this machine — octree build, walk generation, traversal, direct
summation, functional device kernels — the numbers a downstream user
needs to size their own runs.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import format_table, fmt_seconds
from repro.core import PlanConfig, get_plan
from repro.nbody import direct_forces, plummer
from repro.tree import build_octree, generate_walks
from repro.tree.traversal import bh_accelerations


@pytest.fixture(scope="module")
def p16k():
    return plummer(16384, seed=7)


@pytest.fixture(scope="module")
def p2k():
    return plummer(2048, seed=7)


@pytest.fixture(scope="module")
def tree16k(p16k):
    return build_octree(p16k.positions, p16k.masses, leaf_size=32)


def test_bench_octree_build(p16k, benchmark):
    def build():
        return build_octree(p16k.positions, p16k.masses, leaf_size=32)

    tree = benchmark.pedantic(build, rounds=5, iterations=1, warmup_rounds=1)
    assert tree.n_bodies == 16384


def test_bench_walk_generation(tree16k, benchmark):
    def walks():
        return generate_walks(tree16k, theta=0.6, group_size=256)

    ws = benchmark.pedantic(walks, rounds=5, iterations=1, warmup_rounds=1)
    assert ws.total_interactions > 0


def test_bench_point_traversal(tree16k, benchmark):
    def traverse():
        return bh_accelerations(tree16k, theta=0.6, softening=1e-2)

    acc = benchmark.pedantic(traverse, rounds=3, iterations=1, warmup_rounds=1)
    assert acc.shape == (16384, 3)


def test_bench_direct_forces_2k(p2k, benchmark):
    def direct():
        return direct_forces(p2k.positions, p2k.masses, softening=1e-2)

    benchmark.pedantic(direct, rounds=3, iterations=1, warmup_rounds=1)


def test_bench_jw_functional_2k(p2k, benchmark):
    plan = get_plan("jw", PlanConfig(softening=1e-2))

    def functional():
        return plan.accelerations(p2k.positions, p2k.masses)

    benchmark.pedantic(functional, rounds=3, iterations=1, warmup_rounds=1)


@pytest.fixture(scope="module", autouse=True)
def print_substrate_summary(p16k):
    """Emit a one-shot substrate summary table alongside the benches."""
    import time

    rows = []
    t0 = time.perf_counter()
    tree = build_octree(p16k.positions, p16k.masses, leaf_size=32)
    rows.append(["octree build (N=16384)", fmt_seconds(time.perf_counter() - t0)])
    t0 = time.perf_counter()
    ws = generate_walks(tree, theta=0.6, group_size=256)
    rows.append(["walk generation (N=16384)", fmt_seconds(time.perf_counter() - t0)])
    rows.append(["walks", str(len(ws))])
    rows.append(["interactions per step", f"{ws.total_interactions:,}"])
    emit(format_table("Substrate summary (real wall time on this machine)",
                      ["stage", "value"], rows))
    yield

"""Table 1 — CPU vs GPU (jw-parallel) running time, 100 steps.

Prints the regenerated table (modelled Pentium vs simulated HD 5850) and
benchmarks the *real* arithmetic behind both columns at N = 2048: the
blocked float64 direct-summation CPU reference against the float32
walk-list evaluation the device kernels perform — the actual work ratio
on this machine, next to the modelled one.
"""

import pytest

from benchmarks.conftest import BENCH_N_SWEEP, emit
from repro.bench.experiments import table1
from repro.core import PlanConfig, get_plan
from repro.nbody import direct_forces, plummer


@pytest.fixture(scope="module")
def table():
    result = table1(n_values=BENCH_N_SWEEP)
    emit(result.render())
    return result


@pytest.fixture(scope="module")
def particles():
    return plummer(2048, seed=3)


def test_table1_cpu_reference(table, particles, benchmark):
    pos, m = particles.positions, particles.masses

    def cpu():
        return direct_forces(pos, m, softening=1e-2, include_self=False)

    benchmark.pedantic(cpu, rounds=3, iterations=1, warmup_rounds=1)


def test_table1_gpu_functional(table, particles, benchmark):
    plan = get_plan("jw", PlanConfig(softening=1e-2))
    pos, m = particles.positions, particles.masses

    def gpu():
        return plan.accelerations(pos, m)

    benchmark.pedantic(gpu, rounds=3, iterations=1, warmup_rounds=1)


def test_table1_speedup_shape(table):
    speedups = table.data["speedups"]
    # "about 400x" at large N, monotone growth over the sweep
    assert speedups == sorted(speedups)
    assert speedups[-1] > 250

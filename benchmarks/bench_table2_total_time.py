"""Table 2 — total time of the four GPU plans, 100 steps.

Prints the regenerated table and benchmarks the full sweep computation
(all four plans over the reduced N grid), i.e. the cost of regenerating
the table itself.
"""

import pytest

from benchmarks.conftest import BENCH_N_SWEEP, emit
from repro.bench.experiments import table2
from repro.bench.runner import run_sweep


@pytest.fixture(scope="module")
def table():
    result = table2(n_values=BENCH_N_SWEEP)
    emit(result.render())
    return result


def test_table2_sweep(table, benchmark):
    def sweep():
        return run_sweep(["i", "j", "w", "jw"], (1024, 4096))

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1, warmup_rounds=1)
    assert len(rows) == 8


def test_table2_jw_wins(table):
    rows = table.data["rows"]
    by_n: dict[int, dict[str, float]] = {}
    for r in rows:
        by_n.setdefault(r.n_bodies, {})[r.plan] = r.total_seconds
    for n, plans in by_n.items():
        assert plans["jw"] == min(plans.values()), f"jw not fastest at N={n}"
        # the headline 2-5x over the prior tree plan
        assert 1.5 <= plans["w"] / plans["jw"] <= 5.0

"""Table 3 — running (kernel-only) time of the four GPU plans, 100 steps.

Prints the regenerated table and benchmarks the timing engine itself:
scheduling a large realistic launch (1000+ work-groups) onto the modelled
device, which is the per-point cost of every kernel-time column.
"""

import pytest

from benchmarks.conftest import BENCH_N_SWEEP, emit
from repro.bench.experiments import table3
from repro.gpu import KernelLaunch, RADEON_HD_5850, tile_loop_work, time_kernel


@pytest.fixture(scope="module")
def table():
    result = table3(n_values=BENCH_N_SWEEP)
    emit(result.render())
    return result


@pytest.fixture(scope="module")
def big_launch():
    wgs = [
        tile_loop_work(
            f"wg{i}",
            active_threads=64 + (i * 37) % 192,
            n_sources=512 + (i * 211) % 2048,
            wg_size=256,
            wavefront_size=64,
        )
        for i in range(1200)
    ]
    return KernelLaunch("bench", 256, wgs)


def test_table3_timing_engine(table, big_launch, benchmark):
    def schedule():
        return time_kernel(RADEON_HD_5850, big_launch)

    t = benchmark.pedantic(schedule, rounds=5, iterations=2, warmup_rounds=1)
    assert t.seconds > 0


def test_table3_kernel_ordering(table):
    rows = table.data["rows"]
    for n in BENCH_N_SWEEP:
        k = {r.plan: r.kernel_seconds for r in rows if r.n_bodies == n}
        # jw kernels beat w kernels at every N (lane packing + queue)
        assert k["jw"] < k["w"], f"jw kernel not fastest vs w at N={n}"

"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper and
prints it through :func:`emit`, while pytest-benchmark times the
computational core that produces it.  ``emit`` suspends pytest's
fd-level capture so the tables appear in the live run output (and in any
``tee`` log), and additionally appends them to ``benchmarks/paper_tables.txt``
so the regenerated tables survive as an artifact.

At the end of every benchmark session a machine-readable summary of the
headline sweep (all four plans over :data:`BENCH_N_SWEEP`) is written to
``BENCH_PR1.json`` at the repository root — the cross-PR performance
trajectory future PRs diff against.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

#: Reduced sweep used by the benchmark tables so a full
#: ``pytest benchmarks/ --benchmark-only`` stays minutes, not hours.
BENCH_N_SWEEP = (1024, 4096, 16384, 65536)

#: File the emitted tables are appended to (truncated per session).
TABLES_PATH = Path(__file__).parent / "paper_tables.txt"

#: Machine-readable perf-trajectory artifact, at the repository root.
BENCH_SUMMARY_PATH = Path(__file__).parent.parent / "BENCH_PR1.json"

_capmanager = None


@pytest.fixture(scope="session", autouse=True)
def _capture_manager_hook(request):
    """Expose pytest's capture manager to :func:`emit`, reset the tables
    artifact once per session, and write the perf summary at session end."""
    global _capmanager
    _capmanager = request.config.pluginmanager.getplugin("capturemanager")
    TABLES_PATH.write_text("", encoding="utf-8")
    yield
    from repro.bench.experiments import ALL_PLANS
    from repro.bench.runner import write_bench_summary

    write_bench_summary(
        BENCH_SUMMARY_PATH,
        list(ALL_PLANS),
        BENCH_N_SWEEP,
        experiment="plan-sweep",
    )
    emit(f"bench summary written to {BENCH_SUMMARY_PATH}")
    _capmanager = None


def emit(text: str) -> None:
    """Print a paper table to the real stdout and append it to the artifact."""
    block = "\n" + text + "\n"
    with TABLES_PATH.open("a", encoding="utf-8") as fh:
        fh.write(block)
    if _capmanager is not None:
        with _capmanager.global_and_fixture_disabled():
            sys.stdout.write(block)
            sys.stdout.flush()
    else:  # pragma: no cover - emit outside a pytest session
        sys.stdout.write(block)
        sys.stdout.flush()


@pytest.fixture(scope="session")
def bench_sweep() -> tuple[int, ...]:
    return BENCH_N_SWEEP

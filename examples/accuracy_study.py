"""Accuracy study: the Barnes-Hut theta / cost trade-off, measured.

Sweeps the opening angle on several workloads and prints measured RMS
force error against float64 direct summation next to the interaction
counts and simulated device time — the practical guide for choosing
theta that the paper's "about 1% accuracy" remark summarises.

Run:  python examples/accuracy_study.py
"""

from repro.core import JwParallelPlan, PlanConfig
from repro.nbody import cold_disc, direct_forces, plummer, uniform_sphere
from repro.tree import max_relative_error, rms_relative_error

SOFTENING = 1e-2
N = 2048
THETAS = (0.3, 0.45, 0.6, 0.8, 1.0)
WORKLOADS = {
    "plummer": lambda: plummer(N, seed=3),
    "uniform": lambda: uniform_sphere(N, seed=3),
    "disc": lambda: cold_disc(N, seed=3),
}


def main() -> None:
    for name, factory in WORKLOADS.items():
        particles = factory()
        ref = direct_forces(
            particles.positions, particles.masses, softening=SOFTENING,
            include_self=False,
        )
        pp_interactions = N * N
        print(f"\n=== {name} (N = {N}) ===")
        print(f"{'theta':>6} {'rms err':>10} {'max err':>10} "
              f"{'interactions':>13} {'vs PP':>7} {'step ms':>9}")
        for theta in THETAS:
            plan = JwParallelPlan(PlanConfig(softening=SOFTENING, theta=theta))
            acc, step = plan.compute_step(particles.positions, particles.masses)
            print(
                f"{theta:6.2f} {rms_relative_error(acc, ref):10.2e} "
                f"{max_relative_error(acc, ref):10.2e} "
                f"{step.interactions:13,} "
                f"{step.interactions / pp_interactions:6.1%} "
                f"{step.total_seconds * 1e3:9.3f}"
            )
    print("\nreading: theta = 0.6 delivers the classic <1% RMS error at a "
          "fraction of the all-pairs work; anisotropic workloads (disc) "
          "need slightly tighter theta for the same accuracy.")


if __name__ == "__main__":
    main()

"""Device-model exploration: what-if studies the simulator enables.

Because the GPU is a parameterised model, questions the paper could not
ask of its fixed testbed become one-liners here:

* How does the jw plan scale with compute-unit count?
* Where does the host walk generation become the bottleneck (the
  multi-GPU ceiling the conclusion alludes to)?
* How sensitive is each plan to PCIe bandwidth?

Run:  python examples/device_exploration.py
"""

import dataclasses

from repro.core import JwParallelPlan, PlanConfig, WParallelPlan
from repro.gpu import RADEON_HD_5850, scaled_device
from repro.nbody import plummer

SOFTENING = 1e-2
N = 32768


def cu_scaling() -> None:
    print(f"=== jw-parallel step time vs compute units (N = {N}) ===")
    particles = plummer(N, seed=9)
    base = None
    for cus in (4, 9, 18, 36, 72):
        dev = scaled_device(RADEON_HD_5850, compute_units=cus)
        cfg = PlanConfig(softening=SOFTENING, device=dev)
        b = JwParallelPlan(cfg).step_breakdown(particles.positions, particles.masses)
        base = base or b.total_seconds
        print(f"  {cus:3d} CUs: {b.total_seconds * 1e3:8.3f} ms/step  "
              f"(speedup vs 4 CUs: {base / b.total_seconds:4.2f}x, "
              f"kernel {b.kernel_seconds * 1e3:7.3f} ms, host {b.host_seconds * 1e3:7.3f} ms)")
    print("  -> scaling flattens once the overlapped host walk generation "
          "becomes the critical path: faster devices need a faster host.")


def pcie_sensitivity() -> None:
    print(f"\n=== sensitivity to PCIe bandwidth (N = {N}) ===")
    particles = plummer(N, seed=9)
    for gbps in (1e9, 5e9, 16e9):
        dev = dataclasses.replace(RADEON_HD_5850, pcie_bandwidth_bytes_s=gbps)
        cfg = PlanConfig(softening=SOFTENING, device=dev)
        bw = WParallelPlan(cfg).step_breakdown(particles.positions, particles.masses)
        bjw = JwParallelPlan(cfg).step_breakdown(particles.positions, particles.masses)
        print(f"  {gbps / 1e9:4.0f} GB/s:  w-parallel {bw.total_seconds * 1e3:8.3f} ms, "
              f"jw-parallel {bjw.total_seconds * 1e3:8.3f} ms "
              f"(jw streams its lists asynchronously, so it degrades less)")


def occupancy_story() -> None:
    print("\n=== the small-N occupancy story, replayed on a half-size device ===")
    from repro.core import IParallelPlan

    particles = plummer(1024, seed=9)
    for cus in (18, 9):
        dev = scaled_device(RADEON_HD_5850, compute_units=cus)
        cfg = PlanConfig(softening=SOFTENING, device=dev)
        b = IParallelPlan(cfg).step_breakdown(particles.positions, particles.masses)
        frac = b.kernel_gflops() / (dev.sustained_interaction_rate * 20 / 1e9)
        print(f"  {cus:2d} CUs: i-parallel at N=1024 reaches "
              f"{b.kernel_gflops():6.1f} GFLOPS = {frac:5.1%} of sustained "
              f"({b.meta['n_workgroups']} blocks for {cus} CUs)")
    print("  -> fewer CUs are easier to fill: occupancy starvation is a "
          "property of the (plan, device) pair, exactly as PTPM frames it.")


if __name__ == "__main__":
    cu_scaling()
    pcie_sensitivity()
    occupancy_story()

"""Two-cluster collision: the workload the paper's introduction motivates.

Two Plummer spheres fall together, merge, and relax.  The example tracks
energy and angular momentum through the encounter and reports how the
simulated GPU's per-step cost evolves as the mass distribution changes
(the merger deepens the tree and lengthens interaction lists — a genuine
load-balancing stress for the walk-based plans).

Run:  python examples/galaxy_collision.py
"""

import numpy as np

from repro.core import JwParallelPlan, PlanConfig, Simulation
from repro.nbody import angular_momentum, total_energy, two_clusters

SOFTENING = 2e-2


def main() -> None:
    particles = two_clusters(
        4096,
        separation=4.0,
        approach_speed=0.6,
        impact_parameter=0.8,
        mass_ratio=1.0,
        seed=7,
    )
    e0 = total_energy(particles, softening=SOFTENING)
    l0 = angular_momentum(particles)
    print(f"colliding clusters: {particles.n} bodies, E0 = {e0:+.4f}, "
          f"|L0| = {np.linalg.norm(l0):.4f}")

    plan = JwParallelPlan(PlanConfig(softening=SOFTENING, theta=0.6))
    sim = Simulation(particles, plan, dt=2e-3)

    print(f"\n{'t':>6} {'E drift':>9} {'|L| drift':>9} {'sep':>6} "
          f"{'walks':>6} {'step ms':>8} {'GFLOPS':>7}")

    def separation() -> float:
        """Distance between the two halves' centres of mass."""
        half = particles.n // 2
        c1 = particles.positions[:half].mean(axis=0)
        c2 = particles.positions[half:].mean(axis=0)
        return float(np.linalg.norm(c1 - c2))

    def report(s: Simulation) -> None:
        e = total_energy(s.particles, softening=SOFTENING)
        l = angular_momentum(s.particles)
        b = s.record.breakdowns[-1]
        print(
            f"{s.time:6.3f} {abs(e - e0) / abs(e0):9.2e} "
            f"{np.linalg.norm(l - l0) / np.linalg.norm(l0):9.2e} "
            f"{separation():6.2f} {b.meta['n_walks']:6d} "
            f"{b.total_seconds * 1e3:8.3f} {b.kernel_gflops():7.1f}"
        )

    sim.run(60, callback=report, callback_every=10)

    e1 = total_energy(particles, softening=SOFTENING)
    print(f"\nfinal energy drift: {abs(e1 - e0) / abs(e0):.2e}")
    print(f"simulated GPU time for the whole run: "
          f"{sim.record.simulated_seconds * 1e3:.1f} ms "
          f"({sim.record.steps} force evaluations)")


if __name__ == "__main__":
    main()

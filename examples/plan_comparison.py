"""Compare the four PTPM plans head-to-head, like the paper's section 5.

For one snapshot the script (a) verifies all four plans compute the same
physics (against float64 direct summation), then (b) sweeps N and prints
the per-step timing table with the PTPM model's explanation of each
plan's behaviour.

Run:  python examples/plan_comparison.py
"""

from repro.bench import fmt_seconds
from repro.core import (
    IParallelPlan,
    JParallelPlan,
    JwParallelPlan,
    PlanConfig,
    WParallelPlan,
    describe,
)
from repro.nbody import direct_forces, plummer
from repro.tree import rms_relative_error

SOFTENING = 1e-2
PLANS = (IParallelPlan, JParallelPlan, WParallelPlan, JwParallelPlan)


def verify_physics() -> None:
    """All four plans against the float64 direct-summation oracle."""
    print("=== functional verification (N = 2048) ===")
    p = plummer(2048, seed=1)
    ref = direct_forces(p.positions, p.masses, softening=SOFTENING, include_self=False)
    cfg = PlanConfig(softening=SOFTENING)
    for cls in PLANS:
        acc = cls(cfg).accelerations(p.positions, p.masses)
        err = rms_relative_error(acc, ref)
        kind = "float32 round-off" if cls.method == "pp" else "Barnes-Hut truncation"
        print(f"  {cls.name:>2}-parallel: RMS force error {err:.2e}  ({kind})")


def sweep_timing() -> None:
    print("\n=== simulated per-step time on the AMD HD 5850 model ===")
    cfg = PlanConfig(softening=SOFTENING)
    header = f"{'N':>8} | " + " | ".join(f"{c.name + '-parallel':>12}" for c in PLANS)
    print(header)
    print("-" * len(header))
    for n in (1024, 4096, 16384, 65536):
        p = plummer(n, seed=2)
        cells = []
        for cls in PLANS:
            b = cls(cfg).step_breakdown(p.positions, p.masses)
            cells.append(f"{fmt_seconds(b.total_seconds):>12}")
        print(f"{n:>8} | " + " | ".join(cells))


def explain_with_ptpm() -> None:
    print("\n=== what the PTPM model says about each plan ===")
    for name in ("i", "j", "w", "jw"):
        d = describe(name)
        issues = []
        if d.predicts_occupancy_starvation_at_small_n:
            issues.append("occupancy starvation at small N")
        if d.predicts_lane_underutilization:
            issues.append("idle SIMT lanes on small walks")
        if d.predicts_reduction_overhead:
            issues.append("partial-force reduction cost")
        if d.predicts_serial_host_bottleneck:
            issues.append("serial host walk generation")
        print(f"  {name:>2}-parallel  (i->{d.i_mapping.value}, j->{d.j_mapping.value}, "
              f"walk->{d.walk_mapping.value}, overlap={'yes' if d.host_device_overlap else 'no'})")
        print(f"      predicted costs: {', '.join(issues) if issues else 'none'}")


if __name__ == "__main__":
    verify_physics()
    sweep_timing()
    explain_with_ptpm()

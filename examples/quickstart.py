"""Quickstart: simulate a Plummer cluster with the jw-parallel plan.

Builds a 4096-body cluster, evolves it for 20 leapfrog steps through the
simulated GPU, and prints physics diagnostics plus the simulated device
timing — the two things this library produces.

Run:  python examples/quickstart.py
"""

from repro.core import JwParallelPlan, PlanConfig, Simulation
from repro.nbody import plummer, total_energy, virial_ratio

SOFTENING = 1e-2


def main() -> None:
    # 1. a workload: equilibrium Plummer sphere in N-body units
    particles = plummer(4096, seed=42)
    print(f"workload: {particles}")
    print(f"  virial ratio : {virial_ratio(particles, softening=SOFTENING):.3f}")
    e0 = total_energy(particles, softening=SOFTENING)
    print(f"  total energy : {e0:+.4f}")

    # 2. a plan: the paper's jw-parallel treecode on the simulated HD 5850
    config = PlanConfig(softening=SOFTENING, theta=0.6)
    plan = JwParallelPlan(config)
    print(f"plan: jw-parallel on {config.device.name}")

    # 3. run
    sim = Simulation(particles, plan, dt=1e-3)
    record = sim.run(20)

    # 4. physics: energy must be conserved by the symplectic integrator
    e1 = total_energy(particles, softening=SOFTENING)
    drift = abs(e1 - e0) / abs(e0)
    print(f"\nafter {record.steps} force evaluations (t = {sim.time:.3f}):")
    print(f"  total energy : {e1:+.4f}  (relative drift {drift:.2e})")

    # 5. performance: what this run would have cost on the modelled GPU
    step = record.breakdowns[-1]
    print("\nsimulated device accounting (per step):")
    print(f"  kernel time    : {step.kernel_seconds * 1e3:8.3f} ms")
    print(f"  host (tree+walks): {step.host_seconds * 1e3:6.3f} ms (overlapped)")
    print(f"  transfers      : {step.transfer_seconds * 1e3:8.3f} ms")
    print(f"  total          : {step.total_seconds * 1e3:8.3f} ms")
    print(f"  interactions   : {step.interactions:,}")
    print(f"  kernel GFLOPS  : {step.kernel_gflops():.1f} (20-flop convention)")


if __name__ == "__main__":
    main()

"""Visualize the scheduling story: why the dynamic walk queue wins.

Renders per-compute-unit execution timelines (ASCII Gantt charts) of the
same Barnes-Hut walk workload under w-parallel's static assignment and
the jw plan's dynamic queue + j-splitting, then shows the host/DMA/GPU
event graph that produces the jw overlap.  This makes the two mechanisms
behind the paper's Tables 2-3 visible rather than just aggregated.

Run:  python examples/scheduling_trace.py
"""

from repro.core import JwParallelPlan, PlanConfig, WParallelPlan
from repro.gpu import EventGraph, trace_launch
from repro.nbody import plummer

SOFTENING = 1e-2
N = 8192


def main() -> None:
    particles = plummer(N, seed=13)
    cfg = PlanConfig(softening=SOFTENING)

    w_plan = WParallelPlan(cfg)
    walks = w_plan.prepare(particles.positions, particles.masses)
    print(f"workload: {N} bodies -> {len(walks)} walks, "
          f"{walks.total_interactions:,} interactions, "
          f"load imbalance {walks.load_imbalance():.2f}\n")

    # --- w-parallel: one block per walk, static assignment ---------------
    w_launch = w_plan._launch(walks)
    tr_static = trace_launch(cfg.device, w_launch, schedule="static")
    print("w-parallel (static walk->block assignment):")
    print(tr_static.gantt(width=64))

    # --- jw-parallel: j-split items drained from a dynamic queue ---------
    jw_plan = JwParallelPlan(cfg)
    jw_launch, _ = jw_plan._launches(walks)
    tr_dyn = trace_launch(cfg.device, jw_launch, schedule="hardware")
    print("\njw-parallel (dynamic queue, work-proportional j-split):")
    print(tr_dyn.gantt(width=64))

    speedup = tr_static.makespan / tr_dyn.makespan
    print(f"\nkernel makespan ratio (static w / dynamic jw): {speedup:.2f}x")

    # --- the time axis: host -> DMA -> GPU event graph -------------------
    b = jw_plan.breakdown_from_walks(walks)
    batches = 8
    g = EventGraph.pipelined_step(
        [b.host_seconds / batches] * batches,
        [0.1 * b.kernel_seconds / batches] * batches,
        [b.kernel_seconds / batches] * batches,
    )
    records = g.simulate()
    print("\njw step as an event graph (8 walk batches):")
    for r in records[:6]:
        print(f"  {r.command.resource:>5} {r.command.label:<9} "
              f"[{r.start * 1e3:7.3f} .. {r.end * 1e3:7.3f}] ms")
    print("  ...")
    serial = b.host_seconds + 0.1 * b.kernel_seconds + b.kernel_seconds
    print(f"  pipelined makespan : {g.makespan() * 1e3:.3f} ms")
    print(f"  serial composition : {serial * 1e3:.3f} ms "
          f"({serial / g.makespan():.2f}x slower)")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 660 editable installs (which must build a wheel) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall back to
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

"""repro — reproduction of "Parallel Time-Space Processing Model Based
Fast N-body Simulation on GPUs" (Wang, Zeng, Wang, Fu & Zeng).

Stable front door
-----------------
The documented public API is re-exported here, so user code needs one
import root::

    import repro

    repro.configure(workers=4)
    particles = repro.ParticleSet(...)          # or repro.nbody.plummer(...)
    sim = repro.Simulation(particles, repro.JwParallelPlan(), dt=1e-3)
    session = repro.RunSession(sim, "runs/demo", checkpoint_every=25)
    session.run(1000)

Re-exports resolve lazily (PEP 562), so ``import repro`` stays cheap and
circular-import-free; subpackages remain importable directly.

Package layout
--------------
* :mod:`repro.nbody` — particle/physics substrate (ParticleSet, forces,
  integrators, initial conditions, flop accounting, snapshot I/O).
* :mod:`repro.tree` — Barnes-Hut substrate (Morton keys, octree, MAC,
  traversal, walks).
* :mod:`repro.gpu` — simulated SIMT GPU device (device specs, kernels,
  timing engine).
* :mod:`repro.core` — the paper's contribution: the PTPM model, the four
  parallel plans (i/j/w/jw), the host-device pipeline and the high-level
  :class:`~repro.core.simulation.Simulation`.
* :mod:`repro.exec` — CPU execution engine: workspace pool, deterministic
  parallel map, retry/fallback fault handling.
* :mod:`repro.runtime` — fault-tolerant run sessions: checkpointing and
  bit-exact resume.
* :mod:`repro.check` — differential & invariant verification: the
  oracle behind cross-plan/cross-backend equivalence, runtime guards,
  golden snapshots.
* :mod:`repro.obs` — tracing, metrics, and the durable run ledger.
* :mod:`repro.perfmodel` — analytic performance model and metrics.
* :mod:`repro.bench` — benchmark harness regenerating the paper's tables
  and figures.
"""

from importlib import import_module

from repro._version import __version__

#: Lazily resolved public names -> defining module.
_EXPORTS = {
    "Simulation": "repro.core.simulation",
    "SimulationRecord": "repro.core.simulation",
    "ParticleSet": "repro.nbody.particles",
    "PlanConfig": "repro.core.plans",
    "IParallelPlan": "repro.core.plans",
    "JParallelPlan": "repro.core.plans",
    "WParallelPlan": "repro.core.plans",
    "JwParallelPlan": "repro.core.plans",
    "plan_by_name": "repro.core.plans",
    "available_plans": "repro.core.plans",
    "get_plan": "repro.core.plans",
    "register": "repro.plans",
    "resolve_plan": "repro.core.plans",
    "RunSession": "repro.runtime",
    "RunLedger": "repro.obs.ledger",
    "ExecutionEngine": "repro.exec",
    "EnginePool": "repro.exec",
    "Client": "repro.serve",
    "Coordinator": "repro.serve",
    "Gateway": "repro.serve",
    "JobHandle": "repro.serve",
    "JobResult": "repro.serve",
    "JobService": "repro.serve",
    "JobSpec": "repro.serve",
    "SubmitOptions": "repro.serve",
    "TenantPolicy": "repro.serve",
    "Worker": "repro.serve",
    "connect": "repro.serve",
    "RetryPolicy": "repro.exec",
    "FaultInjector": "repro.exec",
    "configure": "repro.config",
    "ReproError": "repro.errors",
    "VerificationError": "repro.errors",
    "DifferentialOracle": "repro.check",
    "RunGuard": "repro.check",
    "TolerancePolicy": "repro.check",
    "GoldenStore": "repro.check",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute '{name}'") from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))

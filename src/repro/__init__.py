"""repro — reproduction of "Parallel Time-Space Processing Model Based
Fast N-body Simulation on GPUs" (Wang, Zeng, Wang, Fu & Zeng).

Public API layout:

* :mod:`repro.nbody` — particle/physics substrate (ParticleSet, forces,
  integrators, initial conditions, flop accounting).
* :mod:`repro.tree` — Barnes-Hut substrate (Morton keys, octree, MAC,
  traversal, walks).
* :mod:`repro.gpu` — simulated SIMT GPU device (device specs, kernels,
  timing engine).
* :mod:`repro.core` — the paper's contribution: the PTPM model, the four
  parallel plans (i/j/w/jw), the host-device pipeline and the high-level
  :class:`~repro.core.simulation.Simulation`.
* :mod:`repro.perfmodel` — analytic performance model and metrics.
* :mod:`repro.bench` — benchmark harness regenerating the paper's tables
  and figures.
"""

from repro._version import __version__

__all__ = ["__version__"]

"""Benchmark harness: workloads, sweep runner, paper tables and figures."""

from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP, WORKLOADS, make_workload
from repro.bench.runner import PAPER_N_STEPS, SweepRow, run_plan_point, run_sweep
from repro.bench.tables import fmt_gflops, fmt_int, fmt_ratio, fmt_seconds, format_table
from repro.bench.figures import ascii_chart
from repro.bench.experiments import (
    ALL_PLANS,
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "PAPER_N_SWEEP",
    "QUICK_N_SWEEP",
    "WORKLOADS",
    "make_workload",
    "PAPER_N_STEPS",
    "SweepRow",
    "run_plan_point",
    "run_sweep",
    "fmt_gflops",
    "fmt_int",
    "fmt_ratio",
    "fmt_seconds",
    "format_table",
    "ascii_chart",
    "ALL_PLANS",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
]

"""A/B benchmark: block timesteps vs the fixed-``dt_min`` integrator.

The block-timestep claim is *work*, not accuracy: a rung-resolved run
must integrate the same physical span as a fixed-step run at the finest
required step while evaluating far fewer body-force rows, without
leaving the documented invariant budgets.  This benchmark runs both
sides on one Plummer sphere and records:

* **interaction reduction** — body-rows x sources evaluated by the
  fixed-``dt_min`` baseline over the rung-resolved total (the paper-level
  figure of merit; the acceptance gate is >= 2x);
* **wall-time speedup** — same advance loops, wall clock;
* **differential oracle** — the masked active-set force pass must
  bit-match the rows of a full evaluation at the final state, and the
  block trajectory must sit within the documented tolerance of the
  fixed-``dt_min`` trajectory it subsamples;
* **invariant verdict** — the block run is guarded end to end under its
  plan-default (per-sync-budget) policy;
* **resume gate** — a mid-rung checkpoint/resume must reproduce the
  uninterrupted trajectory bit for bit (run at a smaller N: the property
  is size-independent and the gate would otherwise triple the bench).

``dt_min`` is taken from the tightest body's acceleration criterion at
t=0 — the step a fixed integrator *needs* — and ``dt_max`` is
``dt_min * 2**(n_rungs-1)``, so both sides resolve the same worst body.

The default softening is 1e-3, not the check suite's 1e-2: at n=16384
the mean interparticle separation of the Plummer core is ~0.05, and a
softening of 1e-2 floors the densest bodies' accelerations so hard that
the whole population's criterion collapses to within ~1.5x of the
tightest body — no timestep scheme, however clever, can then save work
(the ideal reduction is the harmonic mean of ``dt_min/dt_i``).  At 1e-3
the core resolves real close encounters and the criterion spreads over
the hierarchy the way production runs do.

This is the record behind ``BENCH_PR10.json``::

    PYTHONPATH=src python -m repro.bench.blockstep_ab --output BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Sequence

import numpy as np

from repro.bench.workloads import make_workload
from repro.check import RunGuard, state_digest
from repro.check.oracle import ForceTolerance, compare_arrays
from repro.core.plans import PlanConfig, get_plan
from repro.core.simulation import Simulation
from repro.errors import VerificationError
from repro.nbody.kernels import compiled_backends
from repro.nbody.timestep import BlockTimestepSchedule, acceleration_timestep

__all__ = ["blockstep_ab_bench", "main"]

#: Deviation allowed between the rung-resolved trajectory and the
#: fixed-``dt_min`` trajectory it subsamples.  This is a *physical*
#: deviation (coarser steps for calm bodies), not a scheduling one, so
#: the budget matches the pp-vs-direct class rather than bit-identity.
TRAJECTORY_TOLERANCE = ForceTolerance(
    name="blockstep-vs-fixed", rms_rel=1e-4, max_rel=1e-2
)


def _pick_backend(requested: str | None) -> str | None:
    """Resolve ``auto`` to the first available compiled backend."""
    if requested != "auto":
        return requested
    names = list(compiled_backends())
    return names[0] if names else None


def _resume_gate(
    *, n: int, seed: int, dt_max: float, n_rungs: int, softening: float
) -> dict[str, Any]:
    """Mid-rung checkpoint/resume must be bit-identical (small N)."""
    from repro.runtime import RunSession

    config = PlanConfig(softening=softening, n_rungs=n_rungs)
    particles = make_workload("plummer", n, seed=seed)
    target, ckpt_every = 11, 5  # 5 is never aligned to a power-of-two cycle

    solo = Simulation(particles.copy(), "block-i", dt=dt_max, plan_config=config)
    solo.run(target)

    with TemporaryDirectory() as tmp:
        interrupted = Simulation(
            particles.copy(), "block-i", dt=dt_max, plan_config=config
        )
        RunSession(interrupted, tmp, checkpoint_every=ckpt_every).run(ckpt_every)
        session = RunSession.resume(tmp)
        mid_substep = session.simulation.substep
        session.run(target)
        resumed = session.simulation

    solo_digest = state_digest(solo.particles, solo.time)
    resumed_digest = state_digest(resumed.particles, resumed.time)
    return {
        "n": n,
        "target_steps": target,
        "checkpoint_step": ckpt_every,
        "resume_substep": mid_substep,
        "mid_rung": mid_substep != 0,
        "solo_digest": solo_digest,
        "resumed_digest": resumed_digest,
        "bit_identical": bool(
            solo_digest == resumed_digest
            and resumed.record.force_passes == solo.record.force_passes
        ),
    }


def blockstep_ab_bench(
    *,
    n: int = 16384,
    seed: int = 0,
    softening: float = 1e-3,
    n_rungs: int = 5,
    intervals: int = 2,
    workload: str = "plummer",
    kernel_backend: str | None = "auto",
    resume_n: int = 1024,
) -> dict[str, Any]:
    """Run the block-vs-fixed A/B; returns the JSON-able summary dict."""
    backend = _pick_backend(kernel_backend)
    config = PlanConfig(softening=softening, kernel_backend=backend)
    block_config = PlanConfig(
        softening=softening, kernel_backend=backend, n_rungs=n_rungs
    )
    particles = make_workload(workload, n, seed=seed)

    # dt_min from the tightest body at t=0: the step a fixed-dt run needs.
    probe = get_plan("i", config)
    a0 = probe.accelerations(particles.positions, particles.masses)
    dt_body = acceleration_timestep(a0, softening=softening)
    dt_min = float(dt_body.min())
    n_substeps = 1 << (n_rungs - 1)
    dt_max = dt_min * n_substeps
    steps = intervals * n_substeps

    schedule = BlockTimestepSchedule(
        dt_max=dt_max, n_rungs=n_rungs, softening=softening
    )
    occupancy_t0 = schedule.occupancy(schedule.assign(a0))

    # -- B: fixed dt_min --------------------------------------------------
    fixed = Simulation(particles.copy(), "i", dt=dt_min, plan_config=config)
    t0 = time.perf_counter()
    fixed.run(steps)
    fixed_wall = time.perf_counter() - t0
    fixed_interactions = (steps + 1) * n * n  # bootstrap + one pass/step

    # -- A: block timesteps over the same physical span -------------------
    block = Simulation(
        particles.copy(), "block-i", dt=dt_max, plan_config=block_config
    )
    guard = RunGuard()
    guard.prime(block)
    evaluated_rows = n  # bootstrap evaluates every body
    t0 = time.perf_counter()
    for _ in range(steps):
        bd = block.step()
        if bd is not None:
            evaluated_rows += bd.meta["active_bodies"]
    block_wall = time.perf_counter() - t0
    block_interactions = evaluated_rows * n
    try:
        invariant_report = guard.check(block, where="final").to_dict()
        invariants_ok = True
    except VerificationError as exc:
        invariant_report = {"error": str(exc)}
        invariants_ok = False

    # -- differential oracle ----------------------------------------------
    # 1. masked active-set rows must bit-match a full evaluation
    plan = block.plan
    full = plan.accelerations(block.particles.positions, block.particles.masses)
    active = np.arange(0, n, 3)
    rows, _ = plan.compute_step(
        block.particles.positions, block.particles.masses, active=active
    )
    mask_dev = compare_arrays(full[active], rows)
    # 2. block trajectory vs the fixed-dt_min trajectory it subsamples
    traj_dev = compare_arrays(
        fixed.particles.positions, block.particles.positions
    )
    traj_ok = TRAJECTORY_TOLERANCE.admits(traj_dev)
    oracle_ok = bool(mask_dev.bit_identical and traj_ok)

    resume = _resume_gate(
        n=resume_n, seed=seed, dt_max=dt_max, n_rungs=n_rungs,
        softening=softening,
    )

    reduction = fixed_interactions / block_interactions
    speedup = fixed_wall / block_wall
    return {
        "schema": 1,
        "experiment": "blockstep-ab",
        "workload": workload,
        "n": n,
        "seed": seed,
        "softening": softening,
        "kernel_backend": backend or "numpy",
        "n_rungs": n_rungs,
        "dt_min": dt_min,
        "dt_max": dt_max,
        "substeps_per_interval": n_substeps,
        "intervals": intervals,
        "steps": steps,
        "rung_occupancy_t0": [int(c) for c in occupancy_t0],
        "host": {"cpu_count": os.cpu_count()},
        "fixed": {
            "plan": "i",
            "wall_seconds": fixed_wall,
            "interactions": fixed_interactions,
            "force_passes": fixed.record.force_passes,
        },
        "block": {
            "plan": "block-i",
            "wall_seconds": block_wall,
            "interactions": block_interactions,
            "evaluated_rows": evaluated_rows,
            "force_passes": block.record.force_passes,
            "rung_occupancy_final": [
                int(c) for c in schedule.occupancy(block.rungs)
            ],
        },
        "interaction_reduction": reduction,
        "wall_speedup": speedup,
        "oracle": {
            "masked_rows_bit_identical": mask_dev.bit_identical,
            "trajectory_tolerance": TRAJECTORY_TOLERANCE.to_dict(),
            "trajectory_deviation": traj_dev.to_dict(),
            "trajectory_ok": traj_ok,
            "ok": oracle_ok,
        },
        "invariants": {"ok": invariants_ok, "report": invariant_report},
        "resume": resume,
        "gates": {
            "interaction_reduction_ge_2x": bool(reduction >= 2.0),
            "wall_speedup_gt_1": bool(speedup > 1.0),
            "oracle_pass": oracle_ok,
            "invariants_pass": invariants_ok,
            "resume_bit_identical": bool(resume["bit_identical"]),
        },
        "pass": bool(
            reduction >= 2.0
            and speedup > 1.0
            and oracle_ok
            and invariants_ok
            and resume["bit_identical"]
        ),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.blockstep_ab",
        description="A/B block timesteps against the fixed-dt_min integrator",
    )
    parser.add_argument(
        "--output", default="BENCH_PR10.json", metavar="PATH",
        help="where to write the JSON summary (default: BENCH_PR10.json)",
    )
    parser.add_argument("--n", type=int, default=16384)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-rungs", type=int, default=5)
    parser.add_argument(
        "--intervals", type=int, default=2,
        help="sync intervals to integrate (each is 2**(n_rungs-1) substeps)",
    )
    parser.add_argument(
        "--kernel-backend", default="auto", metavar="NAME",
        help="kernel backend for both sides (auto = first available "
        "compiled backend, 'numpy' forces the reference)",
    )
    args = parser.parse_args(argv)

    summary = blockstep_ab_bench(
        n=args.n,
        seed=args.seed,
        n_rungs=args.n_rungs,
        intervals=args.intervals,
        kernel_backend=args.kernel_backend,
    )
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")

    occ = summary["rung_occupancy_t0"]
    print(
        f"n={summary['n']} {summary['workload']} seed={summary['seed']} "
        f"backend={summary['kernel_backend']}  "
        f"dt_min={summary['dt_min']:.3e} x{summary['substeps_per_interval']} "
        f"rungs={summary['n_rungs']} occupancy(t0)={occ}"
    )
    print(
        f"fixed dt_min : {summary['fixed']['wall_seconds']:8.2f} s  "
        f"{summary['fixed']['interactions']:>14,} interactions"
    )
    print(
        f"block        : {summary['block']['wall_seconds']:8.2f} s  "
        f"{summary['block']['interactions']:>14,} interactions"
    )
    print(
        f"reduction {summary['interaction_reduction']:.2f}x  "
        f"speedup {summary['wall_speedup']:.2f}x  "
        f"oracle {'PASS' if summary['oracle']['ok'] else 'FAIL'}  "
        f"invariants {'PASS' if summary['invariants']['ok'] else 'FAIL'}  "
        f"resume {'bit-identical' if summary['resume']['bit_identical'] else 'FAIL'}"
    )
    print(f"verdict: {'PASS' if summary['pass'] else 'FAIL'}")
    print(f"wrote {args.output}")
    return 0 if summary["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

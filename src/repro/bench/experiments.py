"""Experiment registry: one entry per table/figure of the paper.

Each experiment function runs the relevant sweep, formats a paper-style
table (and an ASCII chart for the figures), and returns an
:class:`ExperimentResult` carrying both the rendered text and the raw
rows so tests can assert on the *shapes* — who wins, by what factor,
where crossovers fall.

Experiment ids:

========  ============================================================
fig4      jw-parallel GFLOPS vs N (both flop conventions)
fig5      GFLOPS of i/j/w/jw vs N
table1    CPU vs GPU(jw) running time, 100 steps
table2    total time of i/j/w/jw, 100 steps
table3    running (kernel-only) time of i/j/w/jw, 100 steps
abl-tile  work-group size ablation (jw)
abl-theta BH accuracy/time trade-off
abl-queue dynamic queue vs static walk assignment
abl-overlap host/device overlap on vs off (jw)
========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bench.figures import ascii_chart
from repro.bench.runner import PAPER_N_STEPS, SweepRow, run_plan_point, run_sweep
from repro.bench.tables import fmt_gflops, fmt_ratio, fmt_seconds, format_table
from repro.bench.workloads import PAPER_N_SWEEP, make_workload
from repro.core.hostmodel import PENTIUM_E5300
from repro.core.plans import PlanConfig, get_plan
from repro.core.scheduler import schedule_walks
from repro.nbody.forces import direct_forces
from repro.tree.bh_force import rms_relative_error

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "ALL_PLANS"]

ALL_PLANS = ("i", "j", "w", "jw")


@dataclass
class ExperimentResult:
    """Rendered output plus raw data for one experiment."""

    exp_id: str
    title: str
    table: str
    chart: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Full printable report of the experiment."""
        parts = [self.table]
        if self.chart:
            parts.append("")
            parts.append(self.chart)
        return "\n".join(parts)


def _rows_by_plan(rows: Sequence[SweepRow]) -> dict[str, list[SweepRow]]:
    out: dict[str, list[SweepRow]] = {}
    for r in rows:
        out.setdefault(r.plan, []).append(r)
    return out


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def fig4(
    *,
    n_values: Sequence[int] = PAPER_N_SWEEP,
    workload: str = "plummer",
    config: PlanConfig | None = None,
) -> ExperimentResult:
    """Fig. 4: jw-parallel performance over the particle-count sweep."""
    rows = run_sweep(["jw"], n_values, workload=workload, config=config)
    table_rows = [
        [
            f"{r.n_bodies:,}",
            fmt_gflops(r.kernel_gflops),
            fmt_gflops(r.kernel_gflops_rsqrt),
            fmt_gflops(r.effective_gflops),
            fmt_seconds(r.kernel_seconds / r.n_steps),
        ]
        for r in rows
    ]
    table = format_table(
        "Fig. 4 — jw-parallel performance vs number of particles",
        ["N", "GFLOPS (20 flop)", "GFLOPS (38 flop)", "effective GFLOPS", "kernel/step"],
        table_rows,
        notes=[
            "paper: ~300 GFLOPS sustained (20-flop), 431 GFLOPS peak (38-flop)",
            "paper: performance already high at N=1024 thanks to the j-split",
        ],
    )
    chart = ascii_chart(
        [r.n_bodies for r in rows],
        {"jw": [r.kernel_gflops for r in rows]},
        title="jw-parallel kernel GFLOPS vs N",
        y_label="GFLOPS, 20-flop convention",
    )
    return ExperimentResult("fig4", "jw-parallel GFLOPS vs N", table, chart, {"rows": rows})


def fig5(
    *,
    n_values: Sequence[int] = PAPER_N_SWEEP,
    workload: str = "plummer",
    config: PlanConfig | None = None,
) -> ExperimentResult:
    """Fig. 5: GFLOPS of all four plans over the sweep."""
    rows = run_sweep(list(ALL_PLANS), n_values, workload=workload, config=config)
    by_plan = _rows_by_plan(rows)
    table_rows = []
    for k, n in enumerate(n_values):
        table_rows.append(
            [f"{n:,}"] + [fmt_gflops(by_plan[p][k].kernel_gflops) for p in ALL_PLANS]
        )
    table = format_table(
        "Fig. 5 — kernel GFLOPS of i/j/w/jw vs number of particles",
        ["N", "i-parallel", "j-parallel", "w-parallel", "jw-parallel"],
        table_rows,
        notes=[
            "paper: jw-parallel leads at every N, by the largest margin at small N",
            "paper: i-parallel is occupancy-starved until N is large",
        ],
    )
    chart = ascii_chart(
        list(n_values),
        {p: [r.kernel_gflops for r in by_plan[p]] for p in ALL_PLANS},
        title="kernel GFLOPS vs N, all plans",
        y_label="GFLOPS, 20-flop convention",
    )
    return ExperimentResult("fig5", "plan GFLOPS vs N", table, chart, {"rows": rows})


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1(
    *,
    n_values: Sequence[int] = PAPER_N_SWEEP,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
) -> ExperimentResult:
    """Table 1: CPU vs GPU (jw-parallel) running time over ``n_steps`` steps.

    The CPU column models the paper's host running the *same* treecode
    (tree + walks + scalar force loop + integration).
    """
    host = (config or PlanConfig()).host
    rows = run_sweep(["jw"], n_values, workload=workload, config=config, n_steps=n_steps)
    table_rows = []
    speedups = []
    for r in rows:
        cpu_total = n_steps * (
            host.force_seconds(r.interactions // n_steps)
            + host.tree_build_seconds(r.n_bodies)
            + host.walk_generation_seconds(
                int(r.meta.get("n_walks", 0)),
                int(r.meta.get("n_walks", 0) * r.meta.get("mean_list_length", 0.0)),
            )
            + host.integration_seconds(r.n_bodies)
        )
        s = cpu_total / r.total_seconds
        speedups.append(s)
        table_rows.append(
            [f"{r.n_bodies:,}", fmt_seconds(cpu_total), fmt_seconds(r.total_seconds), fmt_ratio(s)]
        )
    table = format_table(
        f"Table 1 — CPU vs GPU (jw-parallel) running time, {n_steps} steps",
        ["N", f"CPU ({host.name})", "GPU (jw-parallel)", "speedup"],
        table_rows,
        notes=["paper: about 400x at large N"],
    )
    return ExperimentResult(
        "table1", "CPU vs GPU running time", table, None,
        {"rows": rows, "speedups": speedups},
    )


def _plan_time_table(
    which: str,
    title: str,
    notes: list[str],
    *,
    n_values: Sequence[int],
    workload: str,
    config: PlanConfig | None,
    n_steps: int,
) -> ExperimentResult:
    rows = run_sweep(list(ALL_PLANS), n_values, workload=workload, config=config, n_steps=n_steps)
    by_plan = _rows_by_plan(rows)
    attr = "total_seconds" if which == "total" else "kernel_seconds"
    table_rows = []
    for k, n in enumerate(n_values):
        vals = [getattr(by_plan[p][k], attr) for p in ALL_PLANS]
        jw = vals[-1]
        best_other = min(vals[:-1])
        table_rows.append(
            [f"{n:,}"]
            + [fmt_seconds(v) for v in vals]
            + [fmt_ratio(best_other / jw)]
        )
    table = format_table(
        title,
        ["N", "i-parallel", "j-parallel", "w-parallel", "jw-parallel", "jw vs best other"],
        table_rows,
        notes=notes,
    )
    return ExperimentResult(
        f"table{'2' if which == 'total' else '3'}",
        title,
        table,
        None,
        {"rows": rows},
    )


def table2(
    *,
    n_values: Sequence[int] = PAPER_N_SWEEP,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
) -> ExperimentResult:
    """Table 2: total time (kernel + host + transfers) of all plans."""
    return _plan_time_table(
        "total",
        f"Table 2 — total time of the GPU plans, {n_steps} steps",
        ["paper: jw-parallel fastest overall; 2-5x vs prior GPU plans"],
        n_values=n_values,
        workload=workload,
        config=config,
        n_steps=n_steps,
    )


def table3(
    *,
    n_values: Sequence[int] = PAPER_N_SWEEP,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
) -> ExperimentResult:
    """Table 3: running (kernel-only) time of all plans."""
    return _plan_time_table(
        "kernel",
        f"Table 3 — running (kernel) time of the GPU plans, {n_steps} steps",
        ["paper: jw-parallel's kernels are the fastest at every N"],
        n_values=n_values,
        workload=workload,
        config=config,
        n_steps=n_steps,
    )


# ---------------------------------------------------------------------------
# Ablations (design-choice studies beyond the paper's headline numbers)
# ---------------------------------------------------------------------------

def ablation_tile(
    *,
    n_values: Sequence[int] = (4096, 16384, 65536),
    wg_sizes: Sequence[int] = (64, 128, 256),
    workload: str = "plummer",
) -> ExperimentResult:
    """Work-group (tile) size ablation for the jw plan."""
    table_rows = []
    data: dict[str, Any] = {"points": []}
    for n in n_values:
        row = [f"{n:,}"]
        for p in wg_sizes:
            r = run_plan_point("jw", n, workload=workload, config=PlanConfig(wg_size=p))
            row.append(fmt_seconds(r.total_seconds))
            data["points"].append((n, p, r.total_seconds))
        table_rows.append(row)
    table = format_table(
        "Ablation — jw-parallel total time vs work-group size (100 steps)",
        ["N"] + [f"p={p}" for p in wg_sizes],
        table_rows,
        notes=["the paper uses p=256 (the HD 5850's maximum work-group size)"],
    )
    return ExperimentResult("abl-tile", "tile-size ablation", table, None, data)


def ablation_theta(
    *,
    n: int = 4096,
    thetas: Sequence[float] = (0.3, 0.45, 0.6, 0.8, 1.0),
    workload: str = "plummer",
    seed: int = 0,
) -> ExperimentResult:
    """BH opening-angle trade-off: force error vs jw step time.

    Runs the *functional* jw kernels and compares against float64 direct
    summation, so the error column is measured, not modelled.
    """
    particles = make_workload(workload, n, seed=seed)
    ref = direct_forces(
        particles.positions, particles.masses, softening=PlanConfig().softening,
        include_self=False,
    )
    table_rows = []
    errors = []
    times = []
    for theta in thetas:
        cfg = PlanConfig(theta=theta)
        plan = get_plan("jw", cfg)
        acc, step = plan.compute_step(particles.positions, particles.masses)
        err = rms_relative_error(acc, ref)
        errors.append(err)
        times.append(step.total_seconds)
        table_rows.append(
            [
                f"{theta:.2f}",
                f"{err:.2e}",
                fmt_seconds(step.total_seconds),
                f"{step.interactions:,}",
            ]
        )
    table = format_table(
        f"Ablation — accuracy vs time over theta (jw-parallel, N={n:,})",
        ["theta", "RMS force error", "step time", "interactions"],
        table_rows,
        notes=["paper cites the classic ~1% BH accuracy at typical theta"],
    )
    return ExperimentResult(
        "abl-theta", "theta ablation", table, None,
        {"thetas": list(thetas), "errors": errors, "times": times},
    )


def ablation_queue(
    *,
    n: int = 65536,
    workload: str = "plummer",
    seed: int = 0,
) -> ExperimentResult:
    """Dynamic walk queue vs static assignment (the jw scheduling claim)."""
    cfg = PlanConfig()
    particles = make_workload(workload, n, seed=seed)
    plan = get_plan("w", cfg)
    walks = plan.prepare(particles.positions, particles.masses)
    costs = walks.interactions_per_walk().astype(float)
    table_rows = []
    outcomes = {}
    for policy in ("static", "dynamic", "dynamic-lpt"):
        out = schedule_walks(costs, cfg.device.compute_units, policy)
        outcomes[policy] = out
        table_rows.append(
            [
                policy,
                f"{out.makespan:,.0f}",
                f"{out.balance_efficiency:.3f}",
                f"{out.idle_fraction * 100:.1f}%",
            ]
        )
    table = format_table(
        f"Ablation — walk scheduling policy (N={n:,}, {len(costs)} walks, "
        f"{cfg.device.compute_units} CUs)",
        ["policy", "makespan (interactions)", "balance efficiency", "idle"],
        table_rows,
        notes=["the jw plan's dynamic queue removes the static tail"],
    )
    return ExperimentResult("abl-queue", "queue ablation", table, None, {"outcomes": outcomes})


def ablation_quadrupole(
    *,
    n: int = 4096,
    thetas: Sequence[float] = (0.6, 0.8, 1.0),
    workload: str = "plummer",
    seed: int = 0,
) -> ExperimentResult:
    """Monopole vs quadrupole cells: the accuracy extension, measured.

    The quadrupole treecode (beyond the paper's monopole-only code) buys
    accuracy at fixed theta — equivalently, a larger theta (shorter lists,
    less device work) at fixed accuracy.
    """
    from repro.tree.octree import build_octree
    from repro.tree.quadrupole import bh_accelerations_quadrupole, quadrupole_moments
    from repro.tree.traversal import bh_accelerations

    particles = make_workload(workload, n, seed=seed)
    eps = PlanConfig().softening
    ref = direct_forces(
        particles.positions, particles.masses, softening=eps, include_self=False
    )
    tree = build_octree(particles.positions, particles.masses, leaf_size=16)
    quads = quadrupole_moments(tree)
    table_rows = []
    improvements = []
    for theta in thetas:
        mono = bh_accelerations(tree, theta=theta, softening=eps)
        quad = bh_accelerations_quadrupole(tree, theta=theta, softening=eps, quads=quads)
        e_m = rms_relative_error(mono, ref)
        e_q = rms_relative_error(quad, ref)
        improvements.append(e_m / e_q)
        table_rows.append([f"{theta:.2f}", f"{e_m:.2e}", f"{e_q:.2e}", fmt_ratio(e_m / e_q)])
    table = format_table(
        f"Ablation — monopole vs quadrupole cell moments (N={n:,})",
        ["theta", "monopole RMS err", "quadrupole RMS err", "improvement"],
        table_rows,
        notes=["extension beyond the paper: higher-order moments at the same theta"],
    )
    return ExperimentResult(
        "abl-quad", "quadrupole ablation", table, None,
        {"thetas": list(thetas), "improvements": improvements},
    )


def ablation_overlap(
    *,
    n_values: Sequence[int] = (4096, 16384, 65536),
    workload: str = "plummer",
) -> ExperimentResult:
    """Host/device overlap on vs off for the jw plan (the pipelining claim)."""
    table_rows = []
    gains = []
    for n in n_values:
        r_on = run_plan_point("jw", n, workload=workload)
        r_off = run_plan_point("jw", n, workload=workload, overlap=False)
        gain = r_off.total_seconds / r_on.total_seconds
        gains.append(gain)
        table_rows.append(
            [
                f"{n:,}",
                fmt_seconds(r_off.total_seconds),
                fmt_seconds(r_on.total_seconds),
                fmt_ratio(gain),
            ]
        )
    table = format_table(
        "Ablation — jw-parallel with and without host/device overlap (100 steps)",
        ["N", "no overlap", "overlap", "gain"],
        table_rows,
        notes=["overlap hides walk generation behind the kernel"],
    )
    return ExperimentResult("abl-overlap", "overlap ablation", table, None, {"gains": gains})


def extension_multigpu(
    *,
    n: int = 65536,
    devices: Sequence[int] = (1, 2, 4, 8),
    workload: str = "plummer",
    seed: int = 0,
) -> ExperimentResult:
    """Extension: jw-parallel projected across multiple GPUs.

    One host feeds a shared walk queue; device count scales kernel and
    transfer capacity but not walk generation, so speedup saturates at
    the host ceiling — the quantitative version of the paper's
    multi-device outlook.
    """
    from repro.core.plans.multi_jw import MultiDeviceJwPlan

    particles = make_workload(workload, n, seed=seed)
    cfg = PlanConfig()
    table_rows = []
    totals = []
    base_total = None
    for d in devices:
        plan = MultiDeviceJwPlan(cfg, n_devices=d)
        b = plan.step_breakdown(particles.positions, particles.masses)
        totals.append(b.total_seconds)
        base_total = base_total if base_total is not None else b.total_seconds
        table_rows.append(
            [
                str(d),
                fmt_seconds(b.total_seconds),
                fmt_seconds(b.kernel_seconds),
                fmt_seconds(b.host_seconds),
                fmt_ratio(base_total / b.total_seconds),
            ]
        )
    table = format_table(
        f"Extension — jw-parallel multi-GPU projection (N={n:,}, one host)",
        ["devices", "step total", "kernel", "host (walks)", "speedup"],
        table_rows,
        notes=["scaling saturates when host walk generation becomes critical"],
    )
    return ExperimentResult(
        "ext-multigpu", "multi-GPU projection", table, None,
        {"devices": list(devices), "totals": totals},
    )


def validation_accuracy(
    *,
    n: int = 1024,
    plans: Sequence[str] = ("i", "j", "w", "jw"),
    workloads: Sequence[str] = ("plummer", "uniform", "two_clusters", "disc"),
    seed: int = 0,
) -> ExperimentResult:
    """Validation sweep: every plan's functional kernels vs the oracle."""
    from repro.bench.validation import accuracy_matrix, render_accuracy_matrix

    cells = accuracy_matrix(plans=plans, workloads=workloads, n=n, seed=seed)
    table = render_accuracy_matrix(cells)
    return ExperimentResult(
        "val-accuracy", "plan x workload accuracy validation", table, None,
        {"cells": cells, "all_passed": all(c.passed for c in cells)},
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig4": fig4,
    "fig5": fig5,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "abl-tile": ablation_tile,
    "abl-theta": ablation_theta,
    "abl-queue": ablation_queue,
    "abl-overlap": ablation_overlap,
    "abl-quad": ablation_quadrupole,
    "ext-multigpu": extension_multigpu,
    "val-accuracy": validation_accuracy,
}


def run_experiment(exp_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment by id."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment '{exp_id}'; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)

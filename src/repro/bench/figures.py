"""Terminal line charts for regenerating the paper's figures.

The harness runs offline without a plotting stack, so figures render as
ASCII charts: series of markers over a log-x grid — enough to read the
shapes (who wins, where curves flatten, where crossovers fall).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 18,
    log_x: bool = True,
    y_label: str = "",
) -> str:
    """Render named series over a shared x grid as an ASCII chart."""
    if not series:
        raise ValueError("at least one series required")
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    x_values = list(map(float, x_values))
    if len(x_values) < 2:
        raise ValueError("need at least two x points")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series '{name}' length does not match x grid")

    def xt(v: float) -> float:
        return math.log(v) if log_x else v

    x0, x1 = xt(x_values[0]), xt(x_values[-1])
    all_y = [y for ys in series.values() for y in ys]
    y0, y1 = min(all_y), max(all_y)
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for xv, yv in zip(x_values, ys):
            col = round((xt(xv) - x0) / (x1 - x0) * (width - 1))
            row = round((yv - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:10.1f} +" + "-" * width)
    for r, row in enumerate(grid):
        label = " " * 10
        lines.append(f"{label} |" + "".join(row))
    lines.append(f"{y0:10.1f} +" + "-" * width)
    lines.append(
        " " * 12
        + f"N = {int(x_values[0])} ... {int(x_values[-1])}"
        + ("  (log scale)" if log_x else "")
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)

"""A/B benchmark: multi-tenant fair gateway vs a no-fairness baseline.

Drives a large batch of tiny unique jobs (default 1000) through the
HTTP gateway from a thread-pool of concurrent clients, split into two
tenant classes:

* ``interactive`` — 1 job in 4, weight 4, priority 2 (latency-sensitive)
* ``bulk``        — 3 jobs in 4, weight 1, priority 0 (throughput work)

Phase A ("fair") runs the gateway with those tenant policies; phase B
("baseline") replays the *same* spec list with no tenant labels — one
FIFO class — so the two phases differ only in scheduling.  For each
class we report p50/p99/mean completion latency (submit-request start
to result-response done) and throughput.  The benchmark's verdict
checks the two claims the fairness layer makes:

1. interactive p99 improves under fair scheduling (latency isolation);
2. bulk throughput stays within 10% of baseline (work conservation —
   fairness reorders, it does not waste slots).

Determinism rides along: sampled jobs are re-run solo and compared by
state digest, and every job's digest must agree across the two phases
(scheduling must never touch physics).

This is the record behind ``BENCH_PR9.json``::

    PYTHONPATH=src python -m repro.bench.gateway_ab --output BENCH_PR9.json

Completion is detected by non-blocking status sweeps (~50 ms
resolution); queue wait dominates at this scale, so class-to-class
comparisons are unaffected by the probe cadence.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Sequence

from repro.check.golden import state_digest
from repro.nbody.particles import ParticleSet
from repro.serve import Gateway, JobSpec

__all__ = ["gateway_ab_bench", "main"]

#: Tenant policies for the fair phase; baseline runs with none.
FAIR_TENANTS = {
    "interactive": {"weight": 4.0},
    "bulk": {"weight": 1.0},
}
INTERACTIVE_PRIORITY = 2
#: Every 4th job is interactive — bulk provides the contending backlog.
INTERACTIVE_EVERY = 4


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _make_specs(jobs: int, n: int) -> list[tuple[str, JobSpec]]:
    """(class, spec) per job; unique (seed, steps) so nothing dedups."""
    out = []
    for i in range(jobs):
        cls = "interactive" if i % INTERACTIVE_EVERY == 0 else "bulk"
        out.append((cls, JobSpec(n=n, seed=i, steps=1 + i % 2)))
    return out


def _http(base: str, method: str, path: str, body: Any = None, timeout: float = 900.0):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _run_phase(
    name: str,
    specs: list[tuple[str, JobSpec]],
    *,
    fair: bool,
    threads: int,
    max_concurrent: int,
) -> dict[str, Any]:
    records = [
        {"cls": cls, "spec": spec, "t_submit": None, "t_done": None,
         "sha": None, "status": None}
        for cls, spec in specs
    ]
    with tempfile.TemporaryDirectory(prefix=f"gwbench-{name}-") as cache_dir:
        gateway = Gateway(
            backend=None,
            cache_dir=cache_dir,
            ledger=False,
            max_concurrent_jobs=max_concurrent,
            queue_capacity=len(specs) + 8,
            tenants=FAIR_TENANTS if fair else None,
        ).start()
        base = f"http://{gateway.addr}"
        try:
            def submit(record):
                options: dict[str, Any] = {}
                if fair:
                    options["tenant"] = record["cls"]
                    if record["cls"] == "interactive":
                        options["priority"] = INTERACTIVE_PRIORITY
                record["t_submit"] = time.perf_counter()
                status, _ = _http(
                    base, "POST", "/v1/jobs",
                    {"spec": record["spec"].to_dict(), "options": options},
                )
                record["status"] = status

            def check(record):
                """One non-blocking status probe; None once terminal."""
                spec_hash = record["spec"].spec_hash()
                code, body = _http(base, "GET", f"/v1/jobs/{spec_hash}")
                if code != 200 or body["job"]["status"] not in (
                    "complete", "failed", "cancelled"
                ):
                    return record
                record["t_done"] = time.perf_counter()
                code, body = _http(
                    base, "GET", f"/v1/jobs/{spec_hash}/result?timeout=60"
                )
                if code == 200 and body.get("result"):
                    record["sha"] = body["result"]["state_sha256"]
                return None

            wall_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=threads) as pool:
                # Submit the whole batch first so the scheduler faces a
                # genuinely contended queue, then sweep completion with
                # non-blocking status probes (~50 ms resolution) — a
                # blocking-result sweep would measure connection
                # scheduling, not completion time.
                list(pool.map(submit, records))
                pending = [r for r in records if r["status"] == 200]
                deadline = time.perf_counter() + 900
                while pending and time.perf_counter() < deadline:
                    pending = [
                        r for r in pool.map(check, pending) if r is not None
                    ]
                    if pending:
                        time.sleep(0.05)
            wall = time.perf_counter() - wall_start
            shed_total = gateway.shed_total
            requests_total = gateway.requests_total
        finally:
            gateway.stop()

    classes: dict[str, dict[str, Any]] = {}
    for cls in ("interactive", "bulk"):
        done = [
            r for r in records
            if r["cls"] == cls and r["t_done"] is not None
        ]
        latencies = sorted(r["t_done"] - r["t_submit"] for r in done)
        first_submit = min((r["t_submit"] for r in done), default=0.0)
        last_done = max((r["t_done"] for r in done), default=0.0)
        makespan = max(1e-9, last_done - first_submit)
        classes[cls] = {
            "jobs": len(done),
            "p50_s": round(_percentile(latencies, 0.50), 4),
            "p99_s": round(_percentile(latencies, 0.99), 4),
            "mean_s": round(sum(latencies) / max(1, len(latencies)), 4),
            "max_s": round(latencies[-1] if latencies else 0.0, 4),
            "makespan_s": round(makespan, 3),
            "throughput_jobs_s": round(len(done) / makespan, 2),
        }

    completed = sum(1 for r in records if r["t_done"] is not None)
    return {
        "phase": name,
        "fair_scheduling": fair,
        "jobs_submitted": len(records),
        "jobs_completed": completed,
        "jobs_shed": shed_total,
        "gateway_requests_total": requests_total,
        "wall_s": round(wall, 3),
        "throughput_jobs_s": round(completed / max(1e-9, wall), 2),
        "classes": classes,
        "digests": {
            r["spec"].spec_hash(): r["sha"]
            for r in records if r["sha"] is not None
        },
    }


def _solo_digest(spec: JobSpec) -> str:
    sim = spec.build_simulation()
    for _ in range(spec.steps):
        sim.step()
    return state_digest(
        ParticleSet(
            positions=sim.particles.positions,
            velocities=sim.particles.velocities,
            masses=sim.particles.masses,
        ),
        sim.time,
    )


def gateway_ab_bench(
    *,
    jobs: int = 1000,
    n: int = 256,
    threads: int = 16,
    max_concurrent: int = 4,
    identity_samples: int = 3,
) -> dict[str, Any]:
    """Run both phases and assemble the benchmark record."""
    # Headroom for ast.literal_eval in numpy's npy-header parser, which
    # CPython 3.11 can crash with "AST constructor recursion depth
    # mismatch" when many threads parse headers near the default limit.
    sys.setrecursionlimit(max(10_000, sys.getrecursionlimit()))
    specs = _make_specs(jobs, n)
    fair = _run_phase(
        "fair", specs, fair=True, threads=threads, max_concurrent=max_concurrent
    )
    baseline = _run_phase(
        "baseline", specs, fair=False, threads=threads,
        max_concurrent=max_concurrent,
    )

    # -- fairness verdict ---------------------------------------------
    bulk_ratio = (
        fair["classes"]["bulk"]["throughput_jobs_s"]
        / max(1e-9, baseline["classes"]["bulk"]["throughput_jobs_s"])
    )
    p99_fair = fair["classes"]["interactive"]["p99_s"]
    p99_base = baseline["classes"]["interactive"]["p99_s"]
    fairness = {
        "bulk_throughput_ratio_fair_vs_baseline": round(bulk_ratio, 3),
        "bulk_throughput_within_10pct": bulk_ratio >= 0.9,
        "interactive_p99_fair_s": p99_fair,
        "interactive_p99_baseline_s": p99_base,
        "interactive_p99_speedup": round(p99_base / max(1e-9, p99_fair), 2),
        "interactive_isolated": p99_fair <= p99_base,
    }

    # -- determinism gate ---------------------------------------------
    shared = sorted(set(fair["digests"]) & set(baseline["digests"]))
    cross_ok = all(fair["digests"][h] == baseline["digests"][h] for h in shared)
    samples = []
    for cls, spec in specs[:identity_samples]:
        spec_hash = spec.spec_hash()
        solo = _solo_digest(spec)
        samples.append({
            "spec_hash": spec_hash[:12],
            "class": cls,
            "solo": solo[:16],
            "gateway": (fair["digests"].get(spec_hash) or "")[:16],
            "identical": fair["digests"].get(spec_hash) == solo,
        })
    bit_identity = {
        "cross_phase_digests_compared": len(shared),
        "cross_phase_identical": cross_ok,
        "solo_samples": samples,
        "solo_identical": all(s["identical"] for s in samples),
    }

    ok = (
        fairness["bulk_throughput_within_10pct"]
        and fairness["interactive_isolated"]
        and bit_identity["cross_phase_identical"]
        and bit_identity["solo_identical"]
        and fair["jobs_completed"] == jobs
        and baseline["jobs_completed"] == jobs
    )
    for phase in (fair, baseline):
        del phase["digests"]  # bulky; the comparison above is the record
    return {
        "bench": "gateway_ab",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "jobs": jobs,
            "n": n,
            "steps": "1-2 (alternating)",
            "client_threads": threads,
            "max_concurrent_jobs": max_concurrent,
            "tenants": FAIR_TENANTS,
            "interactive_priority": INTERACTIVE_PRIORITY,
            "interactive_share": f"1/{INTERACTIVE_EVERY}",
        },
        "phases": {"fair": fair, "baseline": baseline},
        "fairness": fairness,
        "bit_identity": bit_identity,
        "verdict": "ok" if ok else "check-failed",
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="A/B: multi-tenant fair gateway vs no-fairness baseline"
    )
    parser.add_argument("--jobs", type=int, default=1000)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--max-concurrent", type=int, default=4)
    parser.add_argument("--output", default="BENCH_PR9.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small run (150 jobs) for smoke-testing the harness",
    )
    args = parser.parse_args(argv)
    jobs = 150 if args.quick else args.jobs

    summary = gateway_ab_bench(
        jobs=jobs, n=args.n, threads=args.threads,
        max_concurrent=args.max_concurrent,
    )
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")

    for name, phase in summary["phases"].items():
        print(f"[{name}] {phase['jobs_completed']}/{phase['jobs_submitted']} "
              f"jobs in {phase['wall_s']}s "
              f"({phase['throughput_jobs_s']} jobs/s)")
        for cls, row in phase["classes"].items():
            print(f"  {cls:<12} p50={row['p50_s']}s p99={row['p99_s']}s "
                  f"({row['throughput_jobs_s']} jobs/s)")
    fairness = summary["fairness"]
    print(f"bulk throughput fair/baseline: "
          f"{fairness['bulk_throughput_ratio_fair_vs_baseline']} "
          f"(within 10%: {fairness['bulk_throughput_within_10pct']})")
    print(f"interactive p99: fair={fairness['interactive_p99_fair_s']}s "
          f"baseline={fairness['interactive_p99_baseline_s']}s")
    print(f"bit-identity: cross-phase={summary['bit_identity']['cross_phase_identical']} "
          f"solo={summary['bit_identity']['solo_identical']}")
    print(f"verdict: {summary['verdict']}")
    return 0 if summary["verdict"] == "ok" else 1


if __name__ == "__main__":
    raise SystemExit(main())

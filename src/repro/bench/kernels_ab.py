"""A/B benchmark: compiled force-kernel backends vs the NumPy reference.

Times one *functional* direct-sum force pass (``include_self=True``, the
GPU-kernel convention — same arithmetic the device plans funnel through)
on the NumPy reference and on each requested compiled backend, at a
sweep of N in float64 and float32.  Every compiled measurement is
verified against the reference under the documented ``compiled-*``
oracle tolerances before its timing is trusted; a point that fails
verification is recorded with ``within_tolerance: false`` and poisons
the overall verdict.

This is the record behind ``BENCH_PR7.json``::

    PYTHONPATH=src python -m repro.bench.kernels_ab --output BENCH_PR7.json

Timings are best-of-``repeats`` after a warm-up pass (which also pays
one-time costs: the C build/dlopen, Numba JIT, workspace pool growth),
so the A/B compares steady-state force passes.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.bench.workloads import make_workload
from repro.check.oracle import compare_arrays, compiled_tolerance
from repro.nbody.forces import direct_forces
from repro.nbody.kernels import compiled_backends, get_backend

__all__ = ["kernel_ab_bench", "main"]

#: Default N sweep; 16384 is the headline point (the paper's mid-size N).
DEFAULT_N_VALUES = (2048, 8192, 16384)


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _ab_point(
    name: str,
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    dtype: type,
    softening: float,
    repeats: int,
) -> dict[str, Any]:
    """One (backend, n, dtype) A/B row, reference-verified."""
    n = positions.shape[0]
    kw = dict(softening=softening, dtype=dtype)

    ref = direct_forces(positions, masses, backend="numpy", **kw)  # warm-up
    numpy_seconds = _best_of(
        lambda: direct_forces(positions, masses, backend="numpy", **kw), repeats
    )
    got = direct_forces(positions, masses, backend=name, **kw)  # warm-up/JIT
    backend_seconds = _best_of(
        lambda: direct_forces(positions, masses, backend=name, **kw), repeats
    )

    dev = compare_arrays(ref, got)
    tol = compiled_tolerance(dtype)
    return {
        "backend": name,
        "n": n,
        "dtype": np.dtype(dtype).name,
        "numpy_seconds": numpy_seconds,
        "backend_seconds": backend_seconds,
        "speedup": numpy_seconds / backend_seconds,
        "interactions": n * n,
        "tolerance": tol.name,
        "rms_rel_error": dev.rms_rel_error,
        "max_rel_error": dev.max_rel_error,
        "within_tolerance": bool(
            dev.rms_rel_error <= tol.rms_rel and dev.max_rel_error <= tol.max_rel
        ),
    }


def kernel_ab_bench(
    *,
    backends: Sequence[str] | None = None,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    dtypes: Sequence[type] = (np.float64, np.float32),
    workload: str = "plummer",
    seed: int = 0,
    softening: float = 1e-2,
    repeats: int = 3,
) -> dict[str, Any]:
    """Run the A/B sweep; returns the JSON-able summary dict.

    ``backends=None`` selects every compiled backend available on this
    host (the same set ``repro-nbody check`` auto-verifies).
    """
    names = list(compiled_backends()) if backends is None else list(backends)
    points: list[dict[str, Any]] = []
    t0 = time.perf_counter()
    for n in n_values:
        particles = make_workload(workload, n, seed=seed)
        for name in names:
            for dtype in dtypes:
                points.append(
                    _ab_point(
                        name,
                        particles.positions,
                        particles.masses,
                        dtype=dtype,
                        softening=softening,
                        repeats=repeats,
                    )
                )
    wall = time.perf_counter() - t0

    headline_n = max(n_values)
    headline = {
        f"{p['backend']}_{p['dtype']}": p["speedup"]
        for p in points
        if p["n"] == headline_n
    }
    return {
        "schema": 1,
        "experiment": "kernel-backend-ab",
        "workload": workload,
        "seed": seed,
        "softening": softening,
        "repeats": repeats,
        "pass": "direct-sum force pass (include_self=True, G=1)",
        "host": {
            "cpu_count": os.cpu_count(),
            "backends_described": [get_backend(b).describe() for b in names],
        },
        "backends": names,
        "n_values": list(n_values),
        "wall_seconds": wall,
        "points": points,
        "headline_n": headline_n,
        "headline_speedups": headline,
        "all_within_tolerance": all(p["within_tolerance"] for p in points),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels_ab",
        description="A/B a compiled kernel backend against the numpy reference",
    )
    parser.add_argument(
        "--output", default="BENCH_PR7.json", metavar="PATH",
        help="where to write the JSON summary (default: BENCH_PR7.json)",
    )
    parser.add_argument(
        "--backends", default=None, metavar="CSV",
        help="comma-separated backends (default: every available compiled one)",
    )
    parser.add_argument(
        "--n", default=None, metavar="CSV",
        help=f"comma-separated N sweep (default: {','.join(map(str, DEFAULT_N_VALUES))})",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    backends = args.backends.split(",") if args.backends else None
    n_values = (
        tuple(int(v) for v in args.n.split(",")) if args.n else DEFAULT_N_VALUES
    )
    summary = kernel_ab_bench(
        backends=backends, n_values=n_values, repeats=args.repeats
    )
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")

    for p in summary["points"]:
        flag = "ok  " if p["within_tolerance"] else "FAIL"
        print(
            f"{flag} n={p['n']:>6} {p['dtype']:>7} {p['backend']:>6}  "
            f"numpy {p['numpy_seconds']*1e3:8.2f} ms  "
            f"{p['backend']} {p['backend_seconds']*1e3:8.2f} ms  "
            f"speedup {p['speedup']:5.1f}x  [{p['tolerance']}] "
            f"max_rel {p['max_rel_error']:.2e}"
        )
    print(
        f"headline (n={summary['headline_n']}): "
        + ", ".join(f"{k} {v:.1f}x" for k, v in summary["headline_speedups"].items())
    )
    print(f"wrote {args.output}")
    return 0 if summary["all_within_tolerance"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""One-shot report generator: every experiment, one markdown file.

``python -m repro report`` runs the whole registry and writes a
self-contained markdown document (tables in fenced blocks, with the
paper-claim notes attached) — the artifact to attach to a reproduction
writeup or CI run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro._version import __version__
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP

__all__ = ["generate_report", "DEFAULT_REPORT_PATH"]

DEFAULT_REPORT_PATH = "repro_report.md"

#: Experiments that take an ``n_values`` sweep argument.
_SWEEP_EXPERIMENTS = {"fig4", "fig5", "table1", "table2", "table3"}


def generate_report(
    path: str | Path = DEFAULT_REPORT_PATH,
    *,
    quick: bool = False,
    workload: str = "plummer",
    experiments: Sequence[str] | None = None,
) -> Path:
    """Run experiments and write the consolidated markdown report.

    Parameters
    ----------
    quick:
        Use the short N sweep for the sweep-style experiments.
    experiments:
        Subset of experiment ids to include (default: all, in registry
        order).

    Returns the path written.
    """
    path = Path(path)
    exp_ids = list(experiments) if experiments is not None else sorted(EXPERIMENTS)
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    sweep = QUICK_N_SWEEP if quick else PAPER_N_SWEEP
    lines = [
        "# PTPM N-body reproduction report",
        "",
        f"- library version: `{__version__}`",
        f"- workload: `{workload}`",
        f"- particle sweep: `{sweep}`",
        "",
        "Regenerated from the paper *Parallel Time-Space Processing Model "
        "Based Fast N-body Simulation on GPUs* (Wang et al.) on the "
        "simulated AMD Radeon HD 5850 device model.  See EXPERIMENTS.md "
        "for the paper-vs-measured discussion.",
        "",
    ]
    for exp_id in exp_ids:
        kwargs: dict = {}
        if exp_id in _SWEEP_EXPERIMENTS:
            kwargs["n_values"] = sweep
            kwargs["workload"] = workload
        result = run_experiment(exp_id, **kwargs)
        lines.append(f"## {exp_id} — {result.title}")
        lines.append("")
        lines.append("```text")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines), encoding="utf-8")
    return path

"""Parameter-sweep runner producing the rows the experiments format.

Sweeps run the *timing* path of each plan (work enumeration + simulated
device timing), which is exact with respect to the interaction lists and
cheap enough to sweep to N = 131072; the functional (arithmetic) path is
exercised by the test suite and the accuracy experiments.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro import obs
from repro.bench.workloads import make_workload
from repro.core.plans import PlanConfig, plan_by_name
from repro.exec import (
    ExecutionEngine,
    get_default_engine,
    local_workspace,
    uncached,
    workspace_stats,
)
from repro.nbody.flops import FLOPS_PER_INTERACTION_RSQRT
from repro.perfmodel.metrics import gflops_rate

__all__ = [
    "SweepRow",
    "run_sweep",
    "run_plan_point",
    "bench_summary",
    "write_bench_summary",
    "force_pass_bench",
]

#: Steps per run in the paper's tables ("100 步").
PAPER_N_STEPS = 100


@dataclass
class SweepRow:
    """One (plan, N) point of a sweep, scaled to ``n_steps`` steps."""

    plan: str
    n_bodies: int
    n_steps: int
    kernel_seconds: float
    host_seconds: float
    transfer_seconds: float
    total_seconds: float
    interactions: int
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def kernel_gflops(self) -> float:
        """Device-kernel GFLOPS (20-flop convention)."""
        return gflops_rate(self.interactions, self.kernel_seconds)

    @property
    def kernel_gflops_rsqrt(self) -> float:
        """Device-kernel GFLOPS (38-flop convention)."""
        return gflops_rate(
            self.interactions, self.kernel_seconds, FLOPS_PER_INTERACTION_RSQRT
        )

    @property
    def effective_gflops(self) -> float:
        """GFLOPS over the total (host + transfer inclusive) time."""
        return gflops_rate(self.interactions, self.total_seconds)


def run_plan_point(
    plan_name: str,
    n: int,
    *,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
    seed: int = 0,
    **plan_kwargs: Any,
) -> SweepRow:
    """Time one plan at one N (scaled to ``n_steps`` steps)."""
    with obs.span("bench.point", plan=plan_name, n=n, workload=workload) as sp:
        particles = make_workload(workload, n, seed=seed)
        plan = plan_by_name(plan_name, config)
        for key, value in plan_kwargs.items():
            if not hasattr(plan, key):
                raise AttributeError(f"plan '{plan_name}' has no option '{key}'")
            setattr(plan, key, value)
        step = plan.step_breakdown(particles.positions, particles.masses)
        if obs.enabled:
            t0 = obs.sim_now()
            obs.sim_span(
                "kernel", t0, t0 + step.kernel_seconds, track="device", plan=plan_name, n=n
            )
            obs.sim_span(
                "host", t0, t0 + step.host_seconds, track="host", plan=plan_name, n=n
            )
            obs.sim_span(
                "transfer", t0, t0 + step.transfer_seconds, track="pcie",
                plan=plan_name, n=n,
            )
            obs.advance_sim(step.total_seconds)
            obs.inc("interactions_total", step.interactions)
            obs.observe("step_seconds", step.total_seconds)
            obs.set_gauge("gflops", step.kernel_gflops())
            sp.set(
                kernel_seconds=step.kernel_seconds,
                total_seconds=step.total_seconds,
                interactions=step.interactions,
            )
    return SweepRow(
        plan=plan_name,
        n_bodies=n,
        n_steps=n_steps,
        kernel_seconds=n_steps * step.kernel_seconds,
        host_seconds=n_steps * step.host_seconds,
        transfer_seconds=n_steps * step.transfer_seconds,
        total_seconds=n_steps * step.total_seconds,
        interactions=n_steps * step.interactions,
        meta=dict(step.meta),
    )


def run_sweep(
    plan_names: Sequence[str],
    n_values: Iterable[int],
    *,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
    seed: int = 0,
) -> list[SweepRow]:
    """Sweep several plans over several N; rows ordered (N, plan)."""
    rows: list[SweepRow] = []
    with obs.span(
        "bench.sweep",
        plans=",".join(plan_names),
        n_values=",".join(str(n) for n in n_values),
        workload=workload,
    ):
        for n in n_values:
            for name in plan_names:
                rows.append(
                    run_plan_point(
                        name,
                        n,
                        workload=workload,
                        config=config,
                        n_steps=n_steps,
                        seed=seed,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Machine-readable benchmark summaries (the cross-PR perf trajectory)
# ---------------------------------------------------------------------------

def bench_summary(
    rows: Sequence[SweepRow],
    *,
    experiment: str,
    wall_seconds: float | None = None,
) -> dict[str, Any]:
    """A JSON-serialisable summary of a sweep: the perf-trajectory record.

    Captures per-(plan, N) simulated GFLOPS and seconds so future PRs can
    diff performance against this one (see ``BENCH_PR1.json`` at the repo
    root).  Also records the execution-engine configuration and
    workspace-pool allocation stats the sweep ran under.
    """
    engine = get_default_engine()
    return {
        "schema": 2,
        "experiment": experiment,
        "n_values": sorted({r.n_bodies for r in rows}),
        "plans": sorted({r.plan for r in rows}),
        "n_steps": rows[0].n_steps if rows else 0,
        "wall_seconds": wall_seconds,
        "exec": engine.describe(),
        "workspaces": workspace_stats(),
        "points": [
            {
                "plan": r.plan,
                "n_bodies": r.n_bodies,
                "kernel_seconds": r.kernel_seconds,
                "host_seconds": r.host_seconds,
                "transfer_seconds": r.transfer_seconds,
                "total_seconds": r.total_seconds,
                "interactions": r.interactions,
                "kernel_gflops": r.kernel_gflops,
                "effective_gflops": r.effective_gflops,
            }
            for r in rows
        ],
    }


def force_pass_bench(
    plan_name: str,
    n: int,
    *,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    workers: int = 2,
    backend: str = "thread",
    repeats: int = 3,
    seed: int = 0,
) -> dict[str, Any]:
    """Measured wall-clock of one *functional* force pass, three ways.

    1. ``uncached_seconds`` — workspace pooling off (the pre-``repro.exec``
       allocate-every-pass behaviour);
    2. ``serial_seconds`` — workspace-cached, serial engine;
    3. ``parallel_seconds`` — workspace-cached, ``workers`` workers on
       ``backend``, with the parallel result checked bit-identical to
       serial.

    Each timing is best-of-``repeats`` after a warm-up pass.  This is the
    record the BENCH artifacts commit: wall-clock speedup with the
    workspace pool and with ``workers > 1``, plus allocation accounting
    showing the pool does not grow across passes.
    """
    particles = make_workload(workload, n, seed=seed)
    plan = plan_by_name(plan_name, config)

    def best(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    pos, mass = particles.positions, particles.masses
    ref = plan.accelerations(pos, mass)  # warm the workspace pool
    ws = local_workspace()
    alloc_before = ws.allocations
    serial_seconds = best(lambda: plan.accelerations(pos, mass))
    steady_state_allocations = ws.allocations - alloc_before
    with uncached():
        uncached_seconds = best(lambda: plan.accelerations(pos, mass))

    with ExecutionEngine(backend=backend, workers=workers) as engine:
        par_plan = plan_by_name(plan_name, config, engine=engine)
        acc_parallel = par_plan.accelerations(pos, mass)  # warm worker pools
        parallel_seconds = best(lambda: par_plan.accelerations(pos, mass))
    from repro.check import compare_arrays

    bit_identical = compare_arrays(ref, acc_parallel).bit_identical

    return {
        "plan": plan_name,
        "n_bodies": n,
        "workload": workload,
        "repeats": repeats,
        "uncached_seconds": uncached_seconds,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "workers": workers,
        "backend": backend,
        "bit_identical": bit_identical,
        "speedup_workspace": uncached_seconds / serial_seconds,
        "speedup_parallel": serial_seconds / parallel_seconds,
        "speedup_total": uncached_seconds / parallel_seconds,
        "steady_state_allocations": steady_state_allocations,
        "workspace": ws.stats(),
    }


def write_bench_summary(
    path: str | Path,
    plan_names: Sequence[str],
    n_values: Iterable[int],
    *,
    experiment: str,
    workload: str = "plummer",
    n_steps: int = PAPER_N_STEPS,
) -> Path:
    """Run a sweep, time it, and write its :func:`bench_summary` to ``path``."""
    t0 = time.perf_counter()
    rows = run_sweep(plan_names, n_values, workload=workload, n_steps=n_steps)
    wall = time.perf_counter() - t0
    path = Path(path)
    summary = bench_summary(rows, experiment=experiment, wall_seconds=wall)
    path.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return path

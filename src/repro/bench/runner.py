"""Parameter-sweep runner producing the rows the experiments format.

Sweeps run the *timing* path of each plan (work enumeration + simulated
device timing), which is exact with respect to the interaction lists and
cheap enough to sweep to N = 131072; the functional (arithmetic) path is
exercised by the test suite and the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.bench.workloads import make_workload
from repro.core.plans import PlanConfig, plan_by_name
from repro.nbody.flops import FLOPS_PER_INTERACTION_RSQRT
from repro.perfmodel.metrics import gflops_rate

__all__ = ["SweepRow", "run_sweep", "run_plan_point"]

#: Steps per run in the paper's tables ("100 步").
PAPER_N_STEPS = 100


@dataclass
class SweepRow:
    """One (plan, N) point of a sweep, scaled to ``n_steps`` steps."""

    plan: str
    n_bodies: int
    n_steps: int
    kernel_seconds: float
    host_seconds: float
    transfer_seconds: float
    total_seconds: float
    interactions: int
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def kernel_gflops(self) -> float:
        """Device-kernel GFLOPS (20-flop convention)."""
        return gflops_rate(self.interactions, self.kernel_seconds)

    @property
    def kernel_gflops_rsqrt(self) -> float:
        """Device-kernel GFLOPS (38-flop convention)."""
        return gflops_rate(
            self.interactions, self.kernel_seconds, FLOPS_PER_INTERACTION_RSQRT
        )

    @property
    def effective_gflops(self) -> float:
        """GFLOPS over the total (host + transfer inclusive) time."""
        return gflops_rate(self.interactions, self.total_seconds)


def run_plan_point(
    plan_name: str,
    n: int,
    *,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
    seed: int = 0,
    **plan_kwargs: Any,
) -> SweepRow:
    """Time one plan at one N (scaled to ``n_steps`` steps)."""
    particles = make_workload(workload, n, seed=seed)
    plan = plan_by_name(plan_name, config)
    for key, value in plan_kwargs.items():
        if not hasattr(plan, key):
            raise AttributeError(f"plan '{plan_name}' has no option '{key}'")
        setattr(plan, key, value)
    step = plan.step_breakdown(particles.positions, particles.masses)
    return SweepRow(
        plan=plan_name,
        n_bodies=n,
        n_steps=n_steps,
        kernel_seconds=n_steps * step.kernel_seconds,
        host_seconds=n_steps * step.host_seconds,
        transfer_seconds=n_steps * step.transfer_seconds,
        total_seconds=n_steps * step.total_seconds,
        interactions=n_steps * step.interactions,
        meta=dict(step.meta),
    )


def run_sweep(
    plan_names: Sequence[str],
    n_values: Iterable[int],
    *,
    workload: str = "plummer",
    config: PlanConfig | None = None,
    n_steps: int = PAPER_N_STEPS,
    seed: int = 0,
) -> list[SweepRow]:
    """Sweep several plans over several N; rows ordered (N, plan)."""
    rows: list[SweepRow] = []
    for n in n_values:
        for name in plan_names:
            rows.append(
                run_plan_point(
                    name,
                    n,
                    workload=workload,
                    config=config,
                    n_steps=n_steps,
                    seed=seed,
                )
            )
    return rows

"""Paper-style ASCII table and number formatting."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "fmt_seconds", "fmt_gflops", "fmt_ratio", "fmt_int"]


def fmt_seconds(seconds: float) -> str:
    """Human-scaled time: us / ms / s."""
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def fmt_gflops(gflops: float) -> str:
    """GFLOPS with one decimal."""
    return f"{gflops:.1f}"


def fmt_ratio(ratio: float) -> str:
    """Speedup ratio, e.g. '2.3x'."""
    return f"{ratio:.2f}x" if ratio < 100 else f"{ratio:.0f}x"


def fmt_int(value: int | float) -> str:
    """Integer with thousands separators."""
    return f"{int(value):,}"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    *,
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned ASCII table with a title and optional footnotes."""
    if not headers:
        raise ValueError("headers must be non-empty")
    for r in rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row width {len(r)} does not match header width {len(headers)}"
            )
    cells = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * max(len(title), len(sep))]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)

"""Cross-validation harness: every plan against the oracle, every workload.

The reproduction's correctness story in one sweep: for each (plan,
workload) cell, forces from the simulated device kernels are compared
against float64 direct summation and classified against the method's
expected tolerance (float32 round-off for PP plans, Barnes-Hut truncation
for tree plans).  Exposed as the ``val-accuracy`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.tables import format_table
from repro.bench.workloads import make_workload
from repro.core.plans import PlanConfig, plan_by_name
from repro.nbody.forces import direct_forces
from repro.tree.bh_force import rms_relative_error

__all__ = ["ValidationCell", "accuracy_matrix", "render_accuracy_matrix"]

#: Expected RMS tolerance per method.
TOLERANCES = {"pp": 1e-4, "bh": 2e-2}


@dataclass(frozen=True)
class ValidationCell:
    """One (plan, workload) validation outcome."""

    plan: str
    workload: str
    n_bodies: int
    rms_error: float
    tolerance: float

    @property
    def passed(self) -> bool:
        """Whether the measured error is within the method's tolerance."""
        return self.rms_error <= self.tolerance


def accuracy_matrix(
    *,
    plans: Sequence[str] = ("i", "j", "w", "jw"),
    workloads: Sequence[str] = ("plummer", "uniform", "two_clusters", "disc"),
    n: int = 1024,
    config: PlanConfig | None = None,
    seed: int = 0,
) -> list[ValidationCell]:
    """Run the full plan x workload accuracy sweep (functional kernels)."""
    config = config or PlanConfig()
    cells: list[ValidationCell] = []
    for wl in workloads:
        particles = make_workload(wl, n, seed=seed)
        ref = direct_forces(
            particles.positions,
            particles.masses,
            softening=config.softening,
            include_self=False,
        )
        for name in plans:
            plan = plan_by_name(name, config)
            acc = plan.accelerations(particles.positions, particles.masses)
            cells.append(
                ValidationCell(
                    plan=name,
                    workload=wl,
                    n_bodies=n,
                    rms_error=rms_relative_error(acc, ref),
                    tolerance=TOLERANCES[plan.method],
                )
            )
    return cells


def render_accuracy_matrix(cells: Sequence[ValidationCell]) -> str:
    """Format the validation sweep as a plan x workload table."""
    plans = sorted({c.plan for c in cells})
    workloads = sorted({c.workload for c in cells})
    by_key = {(c.plan, c.workload): c for c in cells}
    rows = []
    for p in plans:
        row = [p]
        for w in workloads:
            c = by_key[(p, w)]
            mark = "ok" if c.passed else "FAIL"
            row.append(f"{c.rms_error:.1e} {mark}")
        rows.append(row)
    n = cells[0].n_bodies if cells else 0
    return format_table(
        f"Validation — RMS force error vs float64 direct summation (N={n:,})",
        ["plan"] + list(workloads),
        rows,
        notes=[
            "pp plans: float32 round-off tolerance 1e-4; "
            "bh plans: truncation tolerance 2e-2",
        ],
    )

"""Named workloads and the paper's particle-count sweeps."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.nbody.ic import cold_disc, plummer, two_clusters, uniform_sphere
from repro.nbody.particles import ParticleSet

__all__ = ["WORKLOADS", "make_workload", "PAPER_N_SWEEP", "QUICK_N_SWEEP"]

#: The N values swept in the evaluation (powers of two from 1K to 128K, the
#: range the paper's figures cover: performance saturates within it).
PAPER_N_SWEEP: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)

#: A short sweep for smoke runs and CI.
QUICK_N_SWEEP: tuple[int, ...] = (1024, 4096, 16384)

WORKLOADS: dict[str, Callable[..., ParticleSet]] = {
    "plummer": plummer,
    "uniform": uniform_sphere,
    "two_clusters": two_clusters,
    "disc": cold_disc,
}


def make_workload(name: str, n: int, *, seed: int = 0) -> ParticleSet:
    """Instantiate a named workload with ``n`` bodies."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload '{name}'; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(n, seed=seed)

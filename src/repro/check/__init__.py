"""repro.check — differential & invariant verification.

The paper's four plans are four *schedules* of one physics; the exec
engine's backends are schedules of those schedules.  This package is the
machine-checkable definition of "same answer" the rest of the library
builds on:

* :mod:`repro.check.oracle` — the differential oracle: per-body force
  error, max-ulp deviation and bit-identity between any reference and
  candidate plan/backend, with documented tolerances per comparison axis
  (:func:`assert_bit_identical` / :func:`assert_within` replace the
  ad-hoc ``np.array_equal`` gates of earlier PRs);
* :mod:`repro.check.invariants` — physical invariants (energy drift,
  linear/angular momentum, finite-state sentinels, net-force balance,
  pairwise-antisymmetry spot checks) under pluggable per-plan
  :class:`TolerancePolicy` tolerances;
* :mod:`repro.check.guards` — :class:`RunGuard`, the opt-in runtime
  watchdog :class:`repro.RunSession` and the serve scheduler evaluate at
  every checkpoint/slice, failing a run with
  :class:`~repro.errors.VerificationError` instead of serving bad
  physics;
* :mod:`repro.check.golden` — golden-snapshot store with an explicit
  ``--bless`` regeneration workflow;
* :mod:`repro.check.settings` — ``repro.configure(verify=...)`` and
  ``REPRO_CHECK_*`` environment resolution.

CLI: ``repro-nbody check`` runs the plan x backend matrix, the invariant
runs and (optionally) the golden comparisons, with a ``--json`` report.
"""

from repro.check.golden import GoldenStore, state_digest
from repro.check.guards import RunGuard
from repro.check.invariants import (
    PP_POLICY,
    STRICT_POLICY,
    TREE_POLICY,
    InvariantBaseline,
    InvariantEngine,
    InvariantReport,
    InvariantResult,
    TolerancePolicy,
    policy_for,
)
from repro.check.oracle import (
    BIT_IDENTICAL,
    COMPILED_F32,
    COMPILED_F64,
    KERNEL_SHAPES,
    PP_CROSS_PLAN,
    PP_VS_DIRECT,
    TREE_CROSS_PLAN,
    TREE_VS_DIRECT,
    Deviation,
    DifferentialOracle,
    ForceComparison,
    ForceTolerance,
    assert_bit_identical,
    assert_within,
    compare_arrays,
    compiled_tolerance,
    kernel_matrix,
    ulp_distance,
)
from repro.check.settings import clear_overrides, default_guard, set_verify_override

__all__ = [
    "BIT_IDENTICAL",
    "COMPILED_F32",
    "COMPILED_F64",
    "KERNEL_SHAPES",
    "PP_CROSS_PLAN",
    "PP_VS_DIRECT",
    "TREE_CROSS_PLAN",
    "TREE_VS_DIRECT",
    "PP_POLICY",
    "STRICT_POLICY",
    "TREE_POLICY",
    "Deviation",
    "DifferentialOracle",
    "ForceComparison",
    "ForceTolerance",
    "GoldenStore",
    "InvariantBaseline",
    "InvariantEngine",
    "InvariantReport",
    "InvariantResult",
    "RunGuard",
    "TolerancePolicy",
    "assert_bit_identical",
    "assert_within",
    "compare_arrays",
    "compiled_tolerance",
    "kernel_matrix",
    "clear_overrides",
    "default_guard",
    "policy_for",
    "set_verify_override",
    "state_digest",
    "ulp_distance",
]

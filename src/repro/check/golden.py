"""Golden-snapshot store: explicit blessing, exact replay verification.

The differential oracle checks that schedules agree with each other
*today*; the golden store checks that today agrees with the last state a
human explicitly approved.  A golden entry records the sha256 digest of
a run's final state (positions, velocities, masses, time) plus enough
metadata to reproduce it; verification reruns the case and compares
digests — simulations here are deterministic end to end, so "equal
digest" is exactly "bit-identical final state".

Regeneration is never implicit: a mismatching or missing entry fails
verification until ``repro-nbody check --golden DIR --bless`` (or
:meth:`GoldenStore.bless`) is run deliberately, which is the reviewable
"the physics changed and we accept it" event.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, VerificationError
from repro.nbody.particles import ParticleSet

__all__ = ["GoldenStore", "state_digest"]


def state_digest(particles: ParticleSet, time: float = 0.0) -> str:
    """sha256 over the exact bytes of the final state.

    Array bytes are hashed in C order as float64 — the dtype the
    integrator holds state in — so the digest changes iff any bit of the
    physical state changes.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<qd", particles.n, time))
    for arr in (particles.positions, particles.velocities, particles.masses):
        h.update(arr.astype("<f8", copy=False).tobytes(order="C"))
    return h.hexdigest()


class GoldenStore:
    """Directory of blessed case digests (one JSON file per case).

    Case ids are filesystem-safe slugs derived from the physics fields
    (``plummer-n256-s0-jw-dt0.001-steps20``), so a repo can review the
    golden directory diff case by case.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    @staticmethod
    def case_id(
        *, workload: str, n: int, seed: int, plan: str, dt: float, steps: int
    ) -> str:
        slug = f"{workload}-n{n}-s{seed}-{plan}-dt{dt!r}-steps{steps}"
        if "/" in slug or "\\" in slug:
            raise ConfigurationError(f"unusable golden case id: {slug!r}")
        return slug

    def _path(self, case_id: str) -> Path:
        return self.directory / f"{case_id}.json"

    def cases(self) -> list[str]:
        """Sorted ids of every blessed case."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def load(self, case_id: str) -> dict[str, Any] | None:
        """The blessed entry for a case, or ``None``."""
        path = self._path(case_id)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise VerificationError(
                f"golden entry {path} is unreadable: {exc}"
            ) from exc
        if "digest" not in entry:
            raise VerificationError(f"golden entry {path} has no digest")
        return entry

    # ------------------------------------------------------------------
    def bless(
        self, case_id: str, digest: str, *, meta: dict[str, Any] | None = None
    ) -> Path:
        """Record (or replace) the approved digest for a case."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(case_id)
        entry = {"case": case_id, "digest": digest, **(meta or {})}
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    def verify(self, case_id: str, digest: str) -> dict[str, Any]:
        """Compare a fresh digest against the blessed one.

        Returns ``{"case", "status", "digest", ...}`` with status
        ``"match"``, ``"mismatch"`` or ``"missing"`` — the caller decides
        whether missing is an error (check mode) or an invitation
        (bless mode).
        """
        entry = self.load(case_id)
        if entry is None:
            return {"case": case_id, "status": "missing", "digest": digest}
        status = "match" if entry["digest"] == digest else "mismatch"
        return {
            "case": case_id,
            "status": status,
            "digest": digest,
            "blessed_digest": entry["digest"],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GoldenStore({str(self.directory)!r}, cases={len(self.cases())})"

"""Runtime guards: invariant evaluation wired into live runs.

A :class:`RunGuard` turns the invariant engine into something a
:class:`~repro.runtime.RunSession` or the serve scheduler can carry
along: primed once against the run's initial state, then re-evaluated at
every checkpoint (and, under the serve layer, after every scheduler
slice).  A violation raises :class:`~repro.errors.VerificationError` —
the session stops *before* persisting the bad state as a checkpoint, and
a served job fails its handle instead of silently returning bad physics.

Every evaluation runs inside a ``check.invariants`` obs span and bumps
``check.evaluations_total``; failures bump ``check.failures_total``.

Guards are opt-in per session/job, or on by default via
``repro.configure(verify=True)`` / ``REPRO_CHECK_ENABLED=1`` (see
:mod:`repro.check.settings`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.check.invariants import (
    InvariantBaseline,
    InvariantEngine,
    InvariantReport,
    TolerancePolicy,
    policy_for,
)
from repro.errors import ConfigurationError, StateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simulation import Simulation

__all__ = ["RunGuard"]


class RunGuard:
    """Invariant watchdog for one run.

    Parameters
    ----------
    policy:
        Tolerances; ``None`` picks the plan's default
        (:func:`~repro.check.invariants.policy_for`) when primed.
    every:
        Extra step cadence between evaluations, *on top of* the
        checkpoint-time evaluations a session always performs for a
        guarded run.  ``0`` evaluates only at checkpoints/slices.

    One guard belongs to one run: priming captures the baseline the
    drift checks compare against, so reusing a guard across runs would
    measure drift from the wrong origin.  :meth:`prime` is idempotent
    for the *same* simulation (the resume path re-primes only if the
    baseline is missing).
    """

    def __init__(
        self,
        *,
        policy: TolerancePolicy | None = None,
        every: int = 0,
    ) -> None:
        if every < 0:
            raise ConfigurationError(f"every must be >= 0, got {every}")
        self.policy = policy
        self.every = every
        self._engine: InvariantEngine | None = None
        self.baseline: InvariantBaseline | None = None
        #: evaluations performed / failed (observability)
        self.evaluations = 0
        self.failures = 0
        self.last_report: InvariantReport | None = None
        self._last_checked_step = -1

    # ------------------------------------------------------------------
    @property
    def primed(self) -> bool:
        return self.baseline is not None

    def prime(self, sim: "Simulation") -> InvariantBaseline:
        """Capture the baseline; resolves the plan-default policy."""
        if self.policy is None:
            self.policy = policy_for(sim.plan.name)
        self._engine = InvariantEngine(
            self.policy,
            softening=sim.plan.config.softening,
            G=sim.plan.config.G,
        )
        self.baseline = self._engine.baseline(
            sim.particles, step=sim.record.steps
        )
        obs.instant(
            "check.baseline",
            step=sim.record.steps,
            plan=sim.plan.name,
            policy=self.policy.name,
        )
        return self.baseline

    # ------------------------------------------------------------------
    def check(self, sim: "Simulation", *, where: str = "checkpoint") -> InvariantReport:
        """Evaluate every invariant now; raise on violation.

        ``where`` labels the evaluation site in spans and error messages
        (``"checkpoint"``, ``"slice"``, ``"final"``...).
        """
        if self._engine is None or self.baseline is None:
            raise StateError("guard.check() before prime(): no baseline yet")
        step = sim.record.steps
        with obs.span(
            "check.invariants",
            step=step,
            where=where,
            plan=sim.plan.name,
            policy=self.policy.name if self.policy else "?",
        ):
            blockstep = bool(getattr(sim, "blockstep", False))
            report = self._engine.evaluate(
                sim.particles,
                self.baseline,
                step=step,
                accelerations=sim.last_acceleration,
                syncs=sim.sync_intervals if blockstep else None,
                rungs=sim.rungs if blockstep else None,
                synchronized=getattr(sim, "synchronized", True),
            )
        self.evaluations += 1
        self.last_report = report
        self._last_checked_step = step
        obs.inc("check.evaluations_total")
        if not report.ok:
            self.failures += 1
            obs.inc("check.failures_total")
            obs.instant(
                "check.violation",
                step=step,
                where=where,
                failures=[r.name for r in report.failures],
            )
        report.raise_if_failed(context=f"{where}, plan {sim.plan.name}")
        return report

    def maybe_check(self, sim: "Simulation", *, where: str = "step") -> InvariantReport | None:
        """Evaluate if the ``every`` cadence is due at the current step."""
        if self.every <= 0:
            return None
        step = sim.record.steps
        if step % self.every != 0 or step == self._last_checked_step:
            return None
        return self.check(sim, where=where)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        policy = self.policy.name if self.policy is not None else None
        return (
            f"RunGuard(policy={policy!r}, every={self.every}, "
            f"evaluations={self.evaluations}, failures={self.failures})"
        )

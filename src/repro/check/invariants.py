"""Physical invariants with pluggable, per-plan tolerance policies.

An N-body integrator can be fast and *wrong* in ways no unit test of a
single force pass catches: energy drifting because a kernel dropped
interactions, momentum growing because pairwise forces lost their
antisymmetry, NaNs silently propagating after an overflow.  This module
evaluates those invariants against a baseline captured when a run
starts:

* relative **energy drift** ``|E - E0| / |E0|``;
* **linear momentum** drift, scaled by the baseline momentum magnitude
  ``sum(m |v|)`` (total momentum is ~0 for the standard workloads, so an
  absolute drift would be meaningless);
* **angular momentum** drift, scaled the same way;
* **finite-state sentinel**: every position/velocity component must be
  finite (NaN/inf from an overflow or a poisoned force pass);
* **net-force balance**: Newton's third law aggregated —
  ``|sum m_i a_i|`` must vanish relative to ``sum m_i |a_i|``;
* **pairwise antisymmetry** spot check: for sampled body pairs,
  ``f_ij == -f_ji`` through the reference pairwise kernel.

Tolerances are a :class:`TolerancePolicy`; the defaults differ by plan
method — all-pairs (pp) kernels conserve momentum to float32 rounding
(measured ~1e-10 over tens of steps) while Barnes-Hut (bh) plans trade
exact pairwise symmetry for O(N log N) work (measured ~1e-5), so
:func:`policy_for` picks :data:`PP_POLICY` or :data:`TREE_POLICY` by the
plan's registered method.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, VerificationError
from repro.nbody.energy import angular_momentum, momentum, total_energy
from repro.nbody.forces import pairwise_force
from repro.nbody.particles import ParticleSet

__all__ = [
    "TolerancePolicy",
    "PP_POLICY",
    "TREE_POLICY",
    "STRICT_POLICY",
    "BLOCK_PP_POLICY",
    "BLOCK_TREE_POLICY",
    "policy_for",
    "InvariantBaseline",
    "InvariantResult",
    "InvariantReport",
    "InvariantEngine",
]


@dataclass(frozen=True)
class TolerancePolicy:
    """Thresholds for the invariant checks; ``None`` disables a check.

    Drift thresholds are *per evaluation from the run's baseline*, not
    per step — pick them for the run lengths you guard (the defaults
    hold comfortably for the paper's 100-step convention).

    ``energy_drift_per_sync`` is the block-timestep budget: when set, the
    energy threshold scales with the number of completed *sync intervals*
    (``energy_drift_per_sync * max(1, syncs)``), overriding the flat
    ``energy_drift`` bound — a rung-resolved run is allowed to drift
    linearly with how many full block cycles it has integrated.
    """

    name: str = "custom"
    energy_drift: float | None = 5e-4
    momentum_drift: float | None = 1e-6
    angular_momentum_drift: float | None = 1e-6
    net_force: float | None = 1e-6
    pair_antisymmetry: float | None = 1e-12
    require_finite: bool = True
    #: body pairs sampled for the antisymmetry spot check
    symmetry_samples: int = 8
    #: per-sync-interval energy budget (block-timestep plans); None = flat
    energy_drift_per_sync: float | None = None

    def __post_init__(self) -> None:
        for fname in (
            "energy_drift",
            "momentum_drift",
            "angular_momentum_drift",
            "net_force",
            "pair_antisymmetry",
            "energy_drift_per_sync",
        ):
            v = getattr(self, fname)
            if v is not None and v <= 0.0:
                raise ConfigurationError(
                    f"{fname} must be positive or None, got {v}"
                )
        if self.symmetry_samples < 0:
            raise ConfigurationError(
                f"symmetry_samples must be >= 0, got {self.symmetry_samples}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "energy_drift": self.energy_drift,
            "momentum_drift": self.momentum_drift,
            "angular_momentum_drift": self.angular_momentum_drift,
            "net_force": self.net_force,
            "pair_antisymmetry": self.pair_antisymmetry,
            "require_finite": self.require_finite,
            "symmetry_samples": self.symmetry_samples,
            "energy_drift_per_sync": self.energy_drift_per_sync,
        }


#: All-pairs plans: every pair is summed, so conservation is float-tight.
PP_POLICY = TolerancePolicy(
    name="pp",
    energy_drift=5e-4,
    momentum_drift=1e-6,
    angular_momentum_drift=1e-6,
    net_force=1e-6,
)

#: Barnes-Hut plans: the multipole approximation breaks exact pairwise
#: symmetry, so conservation holds only to approximation accuracy.
TREE_POLICY = TolerancePolicy(
    name="tree",
    energy_drift=5e-3,
    momentum_drift=1e-3,
    angular_momentum_drift=1e-3,
    net_force=3e-3,
)

#: Finite-state and antisymmetry only — for workloads where drift is
#: expected (large dt, few bodies) but corruption must still be caught.
STRICT_POLICY = replace(
    PP_POLICY,
    name="finite-only",
    energy_drift=None,
    momentum_drift=None,
    angular_momentum_drift=None,
    net_force=None,
)

#: Block-timestep all-pairs plans: energy budgeted per sync interval;
#: momentum conservation is limited by the rung scheme (inactive bodies
#: coast on cached forces), not by the pairwise kernel.
BLOCK_PP_POLICY = TolerancePolicy(
    name="block-pp",
    energy_drift=5e-4,
    energy_drift_per_sync=2e-4,
    momentum_drift=1e-4,
    angular_momentum_drift=1e-4,
    net_force=1e-6,
)

#: Block-timestep Barnes-Hut plans: the multipole and rung errors stack.
BLOCK_TREE_POLICY = TolerancePolicy(
    name="block-tree",
    energy_drift=5e-3,
    energy_drift_per_sync=2e-3,
    momentum_drift=3e-3,
    angular_momentum_drift=3e-3,
    net_force=3e-3,
)


def policy_for(plan_name: str) -> TolerancePolicy:
    """The default policy for a registered plan, chosen by its method."""
    # Resolve through the registry without instantiating a device plan.
    from repro.core.plans.registry import _REGISTRY

    cls = _REGISTRY.get(plan_name)
    if cls is None:
        raise ConfigurationError(f"unknown plan '{plan_name}'")
    method = getattr(cls, "method", "pp")
    if getattr(cls, "blockstep", False):
        return BLOCK_TREE_POLICY if method == "bh" else BLOCK_PP_POLICY
    return TREE_POLICY if method == "bh" else PP_POLICY


@dataclass(frozen=True)
class InvariantBaseline:
    """Conserved quantities captured when a guard is primed."""

    energy: float
    momentum: np.ndarray
    angular_momentum: np.ndarray
    #: characteristic momentum magnitude ``sum(m |v|)`` (drift scale)
    momentum_scale: float
    #: characteristic angular momentum magnitude (drift scale)
    angular_scale: float
    step: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "energy": self.energy,
            "momentum": [float(x) for x in self.momentum],
            "angular_momentum": [float(x) for x in self.angular_momentum],
            "momentum_scale": self.momentum_scale,
            "angular_scale": self.angular_scale,
            "step": self.step,
        }


@dataclass(frozen=True)
class InvariantResult:
    """One invariant's verdict: measured value vs threshold.

    ``rung`` identifies the deepest occupied block-timestep rung when the
    check ran (``None`` for fixed-dt runs) — a per-rung failure names the
    rung in the JSON report and in the raised error.
    """

    name: str
    ok: bool
    value: float
    threshold: float | None
    detail: str = ""
    rung: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "value": self.value,
            "threshold": self.threshold,
            **({"detail": self.detail} if self.detail else {}),
            **({"rung": self.rung} if self.rung is not None else {}),
        }

    def __str__(self) -> str:
        status = "OK " if self.ok else "FAIL"
        bound = "-" if self.threshold is None else f"{self.threshold:.2e}"
        out = f"[{status}] {self.name}: {self.value:.3e} (<= {bound})"
        if self.rung is not None:
            out += f" [rung {self.rung}]"
        return out + (f" — {self.detail}" if self.detail else "")


@dataclass
class InvariantReport:
    """All invariant verdicts from one evaluation."""

    policy: TolerancePolicy
    step: int
    results: list[InvariantResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list[InvariantResult]:
        return [r for r in self.results if not r.ok]

    def raise_if_failed(self, *, context: str = "") -> "InvariantReport":
        if not self.ok:
            where = f" [{context}]" if context else ""
            raise VerificationError(
                f"invariant check failed at step {self.step}{where} "
                f"(policy '{self.policy.name}'): "
                + "; ".join(str(r) for r in self.failures),
                report=self,
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "step": self.step,
            "policy": self.policy.to_dict(),
            "results": [r.to_dict() for r in self.results],
        }


class InvariantEngine:
    """Evaluates the invariant suite for one physical configuration.

    ``softening`` and ``G`` must match the plan that produced the
    trajectory — the potential-energy sum uses the same softened kernel
    as the forces, otherwise "drift" would measure the mismatch.
    """

    def __init__(
        self,
        policy: TolerancePolicy,
        *,
        softening: float = 0.0,
        G: float = 1.0,
    ) -> None:
        self.policy = policy
        self.softening = softening
        self.G = G

    # ------------------------------------------------------------------
    def baseline(self, particles: ParticleSet, *, step: int = 0) -> InvariantBaseline:
        """Capture the conserved quantities the drift checks compare to."""
        p_scale = float(
            np.sum(particles.masses * np.linalg.norm(particles.velocities, axis=1))
        )
        l_scale = float(
            np.sum(
                particles.masses
                * np.linalg.norm(
                    np.cross(particles.positions, particles.velocities), axis=1
                )
            )
        )
        return InvariantBaseline(
            energy=total_energy(particles, softening=self.softening, G=self.G),
            momentum=momentum(particles),
            angular_momentum=angular_momentum(particles),
            momentum_scale=max(p_scale, np.finfo(np.float64).tiny),
            angular_scale=max(l_scale, np.finfo(np.float64).tiny),
            step=step,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        particles: ParticleSet,
        baseline: InvariantBaseline,
        *,
        step: int = 0,
        accelerations: np.ndarray | None = None,
        syncs: int | None = None,
        rungs: np.ndarray | None = None,
        synchronized: bool = True,
    ) -> InvariantReport:
        """Run every enabled check; returns the full report (no raise).

        ``accelerations`` (the integrator's trailing force pass) enables
        the net-force balance check; without it that check is skipped.

        Block-timestep runs pass their rung state: ``syncs`` (completed
        sync intervals) scales the per-sync energy budget, ``rungs``
        labels drift results with the deepest occupied rung, and
        ``synchronized=False`` (mid sync interval — bodies at staggered
        kick phases) restricts the suite to the finite-state and
        antisymmetry checks, since conserved quantities are only well
        defined when every body's step boundary coincides.
        """
        policy = self.policy
        report = InvariantReport(policy=policy, step=step)
        add = report.results.append
        rung = int(np.max(rungs)) if rungs is not None and np.size(rungs) else None

        finite = bool(
            np.isfinite(particles.positions).all()
            and np.isfinite(particles.velocities).all()
        )
        if policy.require_finite:
            bad = 0
            if not finite:
                bad = int(
                    (~np.isfinite(particles.positions)).sum()
                    + (~np.isfinite(particles.velocities)).sum()
                )
            add(
                InvariantResult(
                    name="finite_state",
                    ok=finite,
                    value=float(bad),
                    threshold=0.0,
                    detail="" if finite else f"{bad} non-finite components",
                )
            )
        if not finite:
            # Energy/momentum of a NaN state would only add noise.
            return report
        if not synchronized:
            # Mid sync interval the drift checks would compare a mix of
            # half-kicked states against a synchronised baseline.
            if policy.pair_antisymmetry is not None and policy.symmetry_samples > 0:
                add(self._antisymmetry_check(particles, step))
            return report

        energy_threshold = policy.energy_drift
        if policy.energy_drift_per_sync is not None:
            energy_threshold = policy.energy_drift_per_sync * max(
                1, syncs if syncs is not None else 1
            )
        if energy_threshold is not None:
            energy = total_energy(particles, softening=self.softening, G=self.G)
            scale = max(abs(baseline.energy), np.finfo(np.float64).tiny)
            drift = abs(energy - baseline.energy) / scale
            add(
                InvariantResult(
                    name="energy_drift",
                    ok=drift <= energy_threshold,
                    value=drift,
                    threshold=energy_threshold,
                    detail=f"E0={baseline.energy:.6g} E={energy:.6g}",
                    rung=rung,
                )
            )
        if policy.momentum_drift is not None:
            drift = float(
                np.max(np.abs(momentum(particles) - baseline.momentum))
                / baseline.momentum_scale
            )
            add(
                InvariantResult(
                    name="momentum_drift",
                    ok=drift <= policy.momentum_drift,
                    value=drift,
                    threshold=policy.momentum_drift,
                    rung=rung,
                )
            )
        if policy.angular_momentum_drift is not None:
            drift = float(
                np.max(
                    np.abs(angular_momentum(particles) - baseline.angular_momentum)
                )
                / baseline.angular_scale
            )
            add(
                InvariantResult(
                    name="angular_momentum_drift",
                    ok=drift <= policy.angular_momentum_drift,
                    value=drift,
                    threshold=policy.angular_momentum_drift,
                    rung=rung,
                )
            )
        if policy.net_force is not None and accelerations is not None:
            acc = np.asarray(accelerations, dtype=np.float64)
            total = float(np.max(np.abs(particles.masses @ acc)))
            scale = float(
                np.sum(particles.masses * np.linalg.norm(acc, axis=1))
            )
            value = total / max(scale, np.finfo(np.float64).tiny)
            add(
                InvariantResult(
                    name="net_force",
                    ok=value <= policy.net_force,
                    value=value,
                    threshold=policy.net_force,
                )
            )
        if policy.pair_antisymmetry is not None and policy.symmetry_samples > 0:
            add(self._antisymmetry_check(particles, step))
        return report

    # ------------------------------------------------------------------
    def _antisymmetry_check(
        self, particles: ParticleSet, step: int
    ) -> InvariantResult:
        """Spot-check ``f_ij == -f_ji`` through the reference pairwise kernel.

        Pairs are drawn from a step-seeded deterministic RNG so repeated
        evaluations of the same state sample the same pairs (bit-exact
        reruns stay bit-exact).
        """
        n = particles.n
        policy = self.policy
        if n < 2:
            return InvariantResult(
                name="pair_antisymmetry", ok=True, value=0.0,
                threshold=policy.pair_antisymmetry, detail="fewer than 2 bodies",
            )
        rng = np.random.default_rng(0xC0FFEE ^ step)
        worst = 0.0
        k = min(policy.symmetry_samples, n * (n - 1) // 2)
        for _ in range(k):
            i, j = rng.choice(n, size=2, replace=False)
            f_ij = pairwise_force(
                particles.positions[i], particles.positions[j],
                float(particles.masses[i]), float(particles.masses[j]),
                softening=self.softening, G=self.G,
            )
            f_ji = pairwise_force(
                particles.positions[j], particles.positions[i],
                float(particles.masses[j]), float(particles.masses[i]),
                softening=self.softening, G=self.G,
            )
            scale = max(float(np.linalg.norm(f_ij)), np.finfo(np.float64).tiny)
            worst = max(worst, float(np.linalg.norm(f_ij + f_ji)) / scale)
        return InvariantResult(
            name="pair_antisymmetry",
            ok=worst <= policy.pair_antisymmetry,
            value=worst,
            threshold=policy.pair_antisymmetry,
            detail=f"{k} sampled pairs",
        )

"""Differential oracle: one physics, many schedules, one verdict.

The paper's four plans (i/j/w/jw) are *schedules* of the same force
computation, and the execution engine's backends (serial/thread/process)
are schedules of the same schedule — so their outputs must agree, and
"agree" must be machine-checkable rather than re-derived ad hoc at every
call site.  This module is the single place that turns two acceleration
arrays into a verdict:

* :func:`compare_arrays` measures the deviation between a reference and a
  candidate array — per-body absolute/relative force error, RMS relative
  error, max ulp distance, and bit-identity;
* :class:`ForceTolerance` states what a comparison is *allowed* to show
  (``BIT_IDENTICAL`` for backend changes, documented RMS bounds for
  cross-plan and plan-vs-direct comparisons);
* :class:`DifferentialOracle` runs a workload through a reference plan
  and any candidate plan/backend combination and produces
  :class:`ForceComparison` verdicts, including the full plan x backend
  matrix the ``repro-nbody check`` CLI reports;
* :func:`assert_bit_identical` / :func:`assert_within` are the drop-in
  replacements for the ``np.array_equal`` gates previously copy-pasted
  through tests, benchmarks and CI — they raise
  :class:`~repro.errors.VerificationError` with the measured deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.core.plans.base import Plan
from repro.core.plans.registry import get_plan, resolve_plan
from repro.errors import ConfigurationError, VerificationError
from repro.exec.engine import ExecutionEngine

__all__ = [
    "Deviation",
    "ForceTolerance",
    "ForceComparison",
    "DifferentialOracle",
    "BIT_IDENTICAL",
    "PP_CROSS_PLAN",
    "TREE_CROSS_PLAN",
    "PP_VS_DIRECT",
    "TREE_VS_DIRECT",
    "COMPILED_F64",
    "COMPILED_F32",
    "KERNEL_SHAPES",
    "compiled_tolerance",
    "kernel_matrix",
    "compare_arrays",
    "ulp_distance",
    "assert_bit_identical",
    "assert_within",
]


def _monotonic_bits(a: np.ndarray) -> np.ndarray:
    """Map float64 bit patterns to integers ordered like the floats.

    Standard two's-complement trick: non-negative floats keep their bit
    pattern, negative floats are flipped below zero, so the integer
    difference of two finite floats counts the representable values
    between them (their ulp distance).
    """
    bits = a.view(np.int64)
    return np.where(bits >= 0, bits, np.int64(-(2**63) + 1) - bits - 1)


def ulp_distance(ref: np.ndarray, cand: np.ndarray) -> np.ndarray:
    """Elementwise ulp distance between two float64 arrays.

    Non-finite elements (in either array) count as ``2**62`` — far
    beyond any tolerance — unless bit-identical, which counts 0.
    """
    ref = np.ascontiguousarray(ref, dtype=np.float64)
    cand = np.ascontiguousarray(cand, dtype=np.float64)
    if ref.shape != cand.shape:
        raise ConfigurationError(
            f"cannot compare shapes {ref.shape} and {cand.shape}"
        )
    dist = np.abs(_monotonic_bits(ref) - _monotonic_bits(cand))
    bad = ~(np.isfinite(ref) & np.isfinite(cand))
    if bad.any():
        same_bits = ref.view(np.int64) == cand.view(np.int64)
        dist = np.where(bad, np.where(same_bits, 0, np.int64(2**62)), dist)
    return dist


@dataclass(frozen=True)
class Deviation:
    """Measured disagreement between a reference and a candidate array."""

    n: int
    bit_identical: bool
    max_abs_error: float
    max_rel_error: float
    rms_rel_error: float
    max_ulps: int
    #: body index with the largest relative error (-1 when bit-identical)
    worst_body: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "bit_identical": self.bit_identical,
            "max_abs_error": self.max_abs_error,
            "max_rel_error": self.max_rel_error,
            "rms_rel_error": self.rms_rel_error,
            "max_ulps": self.max_ulps,
            "worst_body": self.worst_body,
        }

    def __str__(self) -> str:
        if self.bit_identical:
            return f"bit-identical over {self.n} bodies"
        return (
            f"max_rel={self.max_rel_error:.3e} rms_rel={self.rms_rel_error:.3e} "
            f"max_ulps={self.max_ulps} worst_body={self.worst_body}"
        )


def compare_arrays(ref: np.ndarray, cand: np.ndarray) -> Deviation:
    """Measure how a candidate ``(n, 3)`` array deviates from a reference.

    Relative error is per *body*: ``|a_cand - a_ref| / |a_ref|`` in the
    euclidean norm, with a floor of the largest reference magnitude times
    float64 epsilon so a zero-vector reference row cannot divide by zero.
    """
    ref = np.ascontiguousarray(ref, dtype=np.float64)
    cand = np.ascontiguousarray(cand, dtype=np.float64)
    if ref.shape != cand.shape:
        raise ConfigurationError(
            f"cannot compare shapes {ref.shape} and {cand.shape}"
        )
    if ref.ndim == 1:
        ref = ref[:, np.newaxis]
        cand = cand[:, np.newaxis]
    n = ref.shape[0]
    if ref.tobytes() == cand.tobytes():
        return Deviation(
            n=n,
            bit_identical=True,
            max_abs_error=0.0,
            max_rel_error=0.0,
            rms_rel_error=0.0,
            max_ulps=0,
            worst_body=-1,
        )
    diff = np.linalg.norm(cand - ref, axis=-1)
    mag = np.linalg.norm(ref, axis=-1)
    floor = max(float(mag.max(initial=0.0)), 1.0) * np.finfo(np.float64).eps
    rel = diff / np.maximum(mag, floor)
    with np.errstate(invalid="ignore"):
        finite = np.isfinite(cand).all() and np.isfinite(ref).all()
    return Deviation(
        n=n,
        bit_identical=False,
        max_abs_error=float(diff.max()) if finite else float("inf"),
        max_rel_error=float(rel.max()) if finite else float("inf"),
        rms_rel_error=float(np.sqrt(np.mean(rel**2))) if finite else float("inf"),
        max_ulps=int(ulp_distance(ref, cand).max()),
        worst_body=int(np.argmax(rel)),
    )


@dataclass(frozen=True)
class ForceTolerance:
    """What a comparison is allowed to show before it fails.

    ``None`` fields are not enforced.  ``bit_identical=True`` demands the
    arrays share every bit (the engine's cross-backend promise);
    otherwise any combination of ulp / relative bounds applies.
    """

    name: str = "custom"
    bit_identical: bool = False
    max_ulps: int | None = None
    max_rel: float | None = None
    rms_rel: float | None = None

    def violations(self, d: Deviation) -> list[str]:
        """Human-readable list of every bound the deviation exceeds."""
        out = []
        if self.bit_identical and not d.bit_identical:
            out.append(f"expected bit-identical, got {d}")
        if self.max_ulps is not None and d.max_ulps > self.max_ulps:
            out.append(f"max_ulps {d.max_ulps} > {self.max_ulps}")
        if self.max_rel is not None and d.max_rel_error > self.max_rel:
            out.append(f"max_rel {d.max_rel_error:.3e} > {self.max_rel:.3e}")
        if self.rms_rel is not None and d.rms_rel_error > self.rms_rel:
            out.append(f"rms_rel {d.rms_rel_error:.3e} > {self.rms_rel:.3e}")
        return out

    def admits(self, d: Deviation) -> bool:
        return not self.violations(d)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "bit_identical": self.bit_identical,
            "max_ulps": self.max_ulps,
            "max_rel": self.max_rel,
            "rms_rel": self.rms_rel,
        }


#: Backend/engine changes reschedule identical arithmetic: zero slack.
BIT_IDENTICAL = ForceTolerance(name="bit-identical", bit_identical=True)
#: i vs j: same all-pairs sums, different tiling -> float32 ordering only.
PP_CROSS_PLAN = ForceTolerance(name="pp-cross-plan", rms_rel=1e-5, max_rel=1e-3)
#: w vs jw share walks; only kernel-side float32 summation order differs.
TREE_CROSS_PLAN = ForceTolerance(name="tree-cross-plan", rms_rel=1e-4, max_rel=1e-2)
#: all-pairs float32 kernels vs the float64 direct reference.
PP_VS_DIRECT = ForceTolerance(name="pp-vs-direct", rms_rel=1e-4, max_rel=1e-2)
#: Barnes-Hut (theta=0.6 class) vs the float64 direct reference.
TREE_VS_DIRECT = ForceTolerance(name="tree-vs-direct", rms_rel=1e-2, max_rel=1.0)
#: Compiled kernel backends vs the NumPy reference, float64 arithmetic.
#: Vectorised/fused summation reassociates the same float64 sum; measured
#: worst-case deviation is ~1e-14 at n=16k, bounded here with margin.
COMPILED_F64 = ForceTolerance(name="compiled-f64", rms_rel=1e-12, max_rel=1e-10)
#: Compiled kernel backends vs the NumPy reference, float32 arithmetic.
#: Same reassociation budget scaled to float32 epsilon (~6e-8 per op).
COMPILED_F32 = ForceTolerance(name="compiled-f32", rms_rel=1e-5, max_rel=1e-3)


def compiled_tolerance(dtype: "np.dtype | type") -> ForceTolerance:
    """The documented compiled-vs-reference tolerance for a dtype."""
    return COMPILED_F64 if np.dtype(dtype) == np.float64 else COMPILED_F32


def _plan_traits(plan: "Plan | str") -> tuple[str, str]:
    """(name, method) for a plan instance or registered plan name."""
    if isinstance(plan, str):
        from repro.core.plans.registry import _REGISTRY

        cls = _REGISTRY.get(plan)
        if cls is None:
            raise ConfigurationError(f"unknown plan '{plan}'")
        return plan, getattr(cls, "method", "pp")
    return plan.name, plan.method


def expected_tolerance(
    ref_plan: "Plan | str", cand_plan: "Plan | str"
) -> ForceTolerance:
    """The documented tolerance for a (reference, candidate) plan pair."""
    ref_name, ref_method = _plan_traits(ref_plan)
    cand_name, cand_method = _plan_traits(cand_plan)
    if ref_name == cand_name:
        return BIT_IDENTICAL
    if ref_method == "pp" and cand_method == "pp":
        return PP_CROSS_PLAN
    if ref_method == "bh" and cand_method == "bh":
        return TREE_CROSS_PLAN
    return TREE_VS_DIRECT


@dataclass(frozen=True)
class ForceComparison:
    """One oracle verdict: labels, deviation, tolerance, pass/fail."""

    reference: str
    candidate: str
    deviation: Deviation
    tolerance: ForceTolerance
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.tolerance.admits(self.deviation)

    @property
    def bit_identical(self) -> bool:
        return self.deviation.bit_identical

    def raise_if_failed(self) -> "ForceComparison":
        """Raise :class:`VerificationError` unless within tolerance."""
        violations = self.tolerance.violations(self.deviation)
        if violations:
            raise VerificationError(
                f"differential check failed ({self.candidate} vs "
                f"{self.reference}, tolerance '{self.tolerance.name}'): "
                + "; ".join(violations),
                report=self,
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "reference": self.reference,
            "candidate": self.candidate,
            "ok": self.ok,
            "deviation": self.deviation.to_dict(),
            "tolerance": self.tolerance.to_dict(),
            **({"meta": self.meta} if self.meta else {}),
        }

    def __str__(self) -> str:
        status = "OK " if self.ok else "FAIL"
        return (
            f"[{status}] {self.candidate} vs {self.reference} "
            f"({self.tolerance.name}): {self.deviation}"
        )


class DifferentialOracle:
    """Runs candidates against a reference plan and issues verdicts.

    ``reference`` is a plan instance or registered name (resolved with
    ``plan_config``).  The reference force pass always executes on the
    serial in-process engine, so every verdict is anchored to one
    schedule-free answer per workload.
    """

    def __init__(self, reference: Plan | str, plan_config=None) -> None:
        self.reference = resolve_plan(reference, plan_config)

    def reference_accelerations(
        self, positions: np.ndarray, masses: np.ndarray
    ) -> np.ndarray:
        with ExecutionEngine(backend="serial", workers=1) as engine:
            ref_plan = get_plan(
                self.reference.name, self.reference.config, engine=engine
            )
            return ref_plan.accelerations(positions, masses)

    def compare(
        self,
        candidate: Plan | str,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        engine: ExecutionEngine | None = None,
        tolerance: ForceTolerance | None = None,
        plan_config=None,
    ) -> ForceComparison:
        """Differential verdict for one candidate plan/backend.

        ``engine`` rewires the candidate's force execution (the backend
        axis); ``tolerance`` overrides the documented default for the
        plan pair (:func:`expected_tolerance`).
        """
        if isinstance(candidate, Plan):
            cand_plan = candidate
            if engine is not None:
                cand_plan = get_plan(cand_plan.name, cand_plan.config, engine=engine)
        else:
            cand_plan = get_plan(
                candidate,
                plan_config if plan_config is not None else self.reference.config,
                engine=engine,
            )
        tol = tolerance or expected_tolerance(self.reference, cand_plan)
        backend = engine.backend if engine is not None else "serial"
        with obs.span(
            "check.oracle",
            reference=self.reference.name,
            candidate=cand_plan.name,
            backend=backend,
            n=len(masses),
        ):
            ref = self.reference_accelerations(positions, masses)
            acc = cand_plan.accelerations(positions, masses)
            deviation = compare_arrays(ref, acc)
        comparison = ForceComparison(
            reference=f"{self.reference.name}/serial",
            candidate=f"{cand_plan.name}/{backend}",
            deviation=deviation,
            tolerance=tol,
            meta={"n": len(masses)},
        )
        obs.inc("check.comparisons_total")
        if not comparison.ok:
            obs.inc("check.failures_total")
        return comparison

    def matrix(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        plans: Sequence[str] = ("i", "j", "w", "jw"),
        backends: Sequence[str] = ("serial", "thread", "process"),
        workers: int = 2,
        plan_config=None,
    ) -> list[ForceComparison]:
        """The full plan x backend verdict matrix for one workload.

        For every plan, the serial run is the anchor and each parallel
        backend must reproduce it bit-for-bit; each plan's serial answer
        is additionally compared against this oracle's reference plan
        under the documented cross-plan tolerance.
        """
        config = plan_config if plan_config is not None else self.reference.config
        ref = self.reference_accelerations(positions, masses)
        results: list[ForceComparison] = []
        for plan_name in plans:
            serial_acc = None
            for backend in backends:
                n_workers = 1 if backend == "serial" else workers
                with ExecutionEngine(backend=backend, workers=n_workers) as eng:
                    plan = get_plan(plan_name, config, engine=eng)
                    acc = plan.accelerations(positions, masses)
                if serial_acc is None:
                    serial_acc = acc
                    tol = expected_tolerance(self.reference, plan)
                    results.append(
                        ForceComparison(
                            reference=f"{self.reference.name}/serial",
                            candidate=f"{plan_name}/serial",
                            deviation=compare_arrays(ref, acc),
                            tolerance=tol,
                            meta={"axis": "plan", "n": len(masses)},
                        )
                    )
                else:
                    results.append(
                        ForceComparison(
                            reference=f"{plan_name}/serial",
                            candidate=f"{plan_name}/{backend}",
                            deviation=compare_arrays(serial_acc, acc),
                            tolerance=BIT_IDENTICAL,
                            meta={"axis": "backend", "n": len(masses)},
                        )
                    )
        obs.inc("check.comparisons_total", len(results))
        failed = sum(not r.ok for r in results)
        if failed:
            obs.inc("check.failures_total", failed)
        return results

    def kernel_matrix(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        kernel_backends: Sequence[str],
        shapes: Sequence[str] | None = None,
        dtypes: Sequence["np.dtype | type"] = (np.float64, np.float32),
    ) -> list[ForceComparison]:
        """Compiled-backend x kernel-shape x dtype verdicts.

        Convenience wrapper over the module-level :func:`kernel_matrix`,
        taking softening/G from this oracle's reference plan config.
        """
        cfg = self.reference.config
        return kernel_matrix(
            positions,
            masses,
            kernel_backends=kernel_backends,
            shapes=KERNEL_SHAPES if shapes is None else shapes,
            dtypes=dtypes,
            softening=cfg.softening,
            G=cfg.G,
        )


#: Kernel shapes the kernel matrix exercises: the diagonal-excluded
#: self-interaction, the tiled targets x sources rectangle, and the
#: Barnes-Hut leaf/walk evaluation.
KERNEL_SHAPES = ("direct", "blocked", "bh-leaf")


def _kernel_shape_eval(
    shape: str,
    backend: str,
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float,
    G: float,
    dtype: "np.dtype | type",
) -> np.ndarray:
    """One kernel shape evaluated end to end on one kernel backend."""
    if shape == "direct":
        from repro.nbody.forces import direct_forces

        return direct_forces(
            positions, masses, softening=softening, G=G,
            include_self=False, dtype=dtype, backend=backend,
        )
    if shape == "blocked":
        from repro.gpu.kernel import tile_loop_forces

        return tile_loop_forces(
            positions, positions, masses, wg_size=64,
            softening=softening, G=G, dtype=dtype, backend=backend,
        )
    if shape == "bh-leaf":
        from repro.tree.bh_force import accelerations_from_walks
        from repro.tree.octree import build_octree
        from repro.tree.walks import generate_walks

        tree = build_octree(positions, masses, leaf_size=16)
        walks = generate_walks(tree, theta=0.6, group_size=32)
        return accelerations_from_walks(
            walks, softening=softening, G=G, dtype=dtype, backend=backend,
        )
    raise ConfigurationError(
        f"unknown kernel shape '{shape}'; known: {', '.join(KERNEL_SHAPES)}"
    )


def kernel_matrix(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    kernel_backends: Sequence[str],
    shapes: Sequence[str] = KERNEL_SHAPES,
    dtypes: Sequence["np.dtype | type"] = (np.float64, np.float32),
    softening: float = 1e-2,
    G: float = 1.0,
) -> list[ForceComparison]:
    """Compiled-backend verdicts: backend x kernel shape x dtype.

    Every requested backend is run through each kernel shape
    (:data:`KERNEL_SHAPES`) in each dtype and compared against the NumPy
    reference of the *same* shape and dtype, under the documented
    ``compiled-f64`` / ``compiled-f32`` tolerances.  Backends are resolved
    strictly — asking for an unavailable one raises
    :class:`~repro.errors.ConfigurationError` (callers that want a clean
    skip filter on availability first, as ``repro-nbody check`` does).
    """
    from repro.nbody.kernels import resolve_backend

    results: list[ForceComparison] = []
    for backend in kernel_backends:
        kb = resolve_backend(backend, strict=True)
        for shape in shapes:
            for dtype in dtypes:
                dt = np.dtype(dtype)
                with obs.span(
                    "check.kernel_oracle",
                    backend=kb.name,
                    shape=shape,
                    dtype=dt.name,
                    n=len(masses),
                ):
                    ref = _kernel_shape_eval(
                        shape, "numpy", positions, masses,
                        softening=softening, G=G, dtype=dtype,
                    )
                    cand = _kernel_shape_eval(
                        shape, kb.name, positions, masses,
                        softening=softening, G=G, dtype=dtype,
                    )
                    deviation = compare_arrays(ref, cand)
                results.append(
                    ForceComparison(
                        reference=f"kernel:{shape}/numpy/{dt.name}",
                        candidate=f"kernel:{shape}/{kb.name}/{dt.name}",
                        deviation=deviation,
                        tolerance=compiled_tolerance(dtype),
                        meta={"axis": "kernel", "n": len(masses)},
                    )
                )
    obs.inc("check.comparisons_total", len(results))
    failed = sum(not r.ok for r in results)
    if failed:
        obs.inc("check.failures_total", failed)
    return results


def assert_bit_identical(
    ref: np.ndarray, cand: np.ndarray, *, context: str = ""
) -> Deviation:
    """Require two arrays to share every bit; the old ``np.array_equal`` gate.

    Returns the (trivial) deviation on success so callers can log it;
    raises :class:`VerificationError` with the measured deviation —
    including how *far* apart the arrays are in ulps — on failure.
    """
    return assert_within(ref, cand, BIT_IDENTICAL, context=context)


def assert_within(
    ref: np.ndarray,
    cand: np.ndarray,
    tolerance: ForceTolerance,
    *,
    context: str = "",
) -> Deviation:
    """Require a candidate array to sit within ``tolerance`` of a reference."""
    deviation = compare_arrays(ref, cand)
    violations = tolerance.violations(deviation)
    if violations:
        where = f" [{context}]" if context else ""
        raise VerificationError(
            f"differential check failed{where} (tolerance "
            f"'{tolerance.name}'): " + "; ".join(violations),
            report=deviation,
        )
    return deviation

"""The ``repro-nbody check`` driver: matrix + invariants + golden, one report.

:func:`run_check` composes the three pillars of :mod:`repro.check` over
one workload and returns a JSON-able report dict; :func:`render_report`
turns it into the console table the CLI prints.  The CLI exits non-zero
when ``report["ok"]`` is false, which makes ``repro-nbody check --json``
a complete CI gate:

* **matrix** — the differential oracle's plan x backend verdicts:
  every parallel backend must reproduce its plan's serial answer
  bit-for-bit, and every plan must sit within its documented tolerance
  of the reference plan;
* **kernels** — each requested kernel backend (``auto`` = every
  available compiled backend) is compared against the NumPy reference
  across the direct / blocked / BH-leaf kernel shapes in float32 and
  float64, under the documented ``compiled-*`` tolerances; named
  backends that are unavailable on this host are reported as *skipped*,
  not failed, so one config runs on every CI matrix leg;
* **invariants** — each plan runs ``steps`` leapfrog steps under a
  :class:`~repro.check.RunGuard` with its plan-default policy and must
  finish with every invariant green;
* **golden** (optional) — the final state digests are compared against
  the blessed snapshots in ``--golden DIR``; ``--bless`` records the
  current digests instead (the explicit regeneration event).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.check.golden import GoldenStore, state_digest
from repro.check.guards import RunGuard
from repro.check.oracle import DifferentialOracle
from repro.core.plans.base import PlanConfig
from repro.core.plans.registry import get_plan
from repro.core.simulation import Simulation
from repro.errors import VerificationError

__all__ = ["run_check", "render_report"]

#: Softening used by the check workloads (matches the test suite).
CHECK_SOFTENING = 1e-2


def _invariant_run(
    plan_name: str,
    *,
    workload: str,
    n: int,
    seed: int,
    dt: float,
    steps: int,
    config: PlanConfig,
) -> tuple[dict[str, Any], Simulation]:
    """Run one guarded simulation; never raises on violation.

    Returns the JSON row (with the guard's final report embedded) and
    the finished simulation (reused for golden digests).
    """
    from repro.bench.workloads import make_workload

    sim = Simulation(
        make_workload(workload, n, seed=seed), get_plan(plan_name, config), dt=dt
    )
    guard = RunGuard()
    guard.prime(sim)
    row: dict[str, Any] = {"plan": plan_name, "steps": steps}
    try:
        sim.run(steps)
        report = guard.check(sim, where="final")
        row.update(ok=True, report=report.to_dict())
    except VerificationError as exc:
        report = guard.last_report
        row.update(
            ok=False,
            error=str(exc),
            report=report.to_dict() if report is not None else None,
        )
    return row, sim


def run_check(
    *,
    workload: str = "plummer",
    n: int = 256,
    seed: int = 0,
    dt: float = 1e-3,
    steps: int = 12,
    plans: Sequence[str] = ("i", "j", "w", "jw"),
    backends: Sequence[str] = ("serial", "thread", "process"),
    workers: int = 2,
    reference: str = "i",
    golden_dir: str | None = None,
    bless: bool = False,
    kernel_backends: Sequence[str] | str | None = "auto",
) -> dict[str, Any]:
    """Run the full verification battery; returns the report dict.

    ``kernel_backends`` selects the compiled-kernel leg: ``"auto"`` (the
    default) verifies every available compiled backend, an explicit list
    verifies those — skipping cleanly (with the reason) any that are
    unavailable on this host — and ``None`` / an empty list disables the
    leg.
    """
    from repro.bench.workloads import make_workload
    from repro.nbody.kernels import compiled_backends, get_backend

    config = PlanConfig(softening=CHECK_SOFTENING)
    particles = make_workload(workload, n, seed=seed)

    if kernel_backends == "auto":
        requested = list(compiled_backends())
    elif kernel_backends is None:
        requested = []
    else:
        requested = [b for b in kernel_backends if b]

    with obs.span(
        "check.run", workload=workload, n=n, plans=",".join(plans),
        backends=",".join(backends),
    ):
        oracle = DifferentialOracle(reference, config)
        matrix = oracle.matrix(
            particles.positions,
            particles.masses,
            plans=plans,
            backends=backends,
            workers=workers,
        )

        kernels: list[dict[str, Any]] = []
        kernels_skipped: list[dict[str, Any]] = []
        for name in requested:
            backend = get_backend(name)  # unknown names are a config error
            if backend.kind == "reference":
                continue  # comparing numpy against itself proves nothing
            if not backend.available:
                kernels_skipped.append(
                    {"backend": name, "reason": backend.unavailable_reason}
                )
                continue
            kernels.extend(
                c.to_dict()
                for c in oracle.kernel_matrix(
                    particles.positions,
                    particles.masses,
                    kernel_backends=[name],
                )
            )

        invariants: list[dict[str, Any]] = []
        finished: dict[str, Simulation] = {}
        for plan_name in plans:
            row, sim = _invariant_run(
                plan_name,
                workload=workload,
                n=n,
                seed=seed,
                dt=dt,
                steps=steps,
                config=config,
            )
            invariants.append(row)
            finished[plan_name] = sim

        golden: list[dict[str, Any]] = []
        if golden_dir is not None:
            store = GoldenStore(golden_dir)
            for plan_name in plans:
                sim = finished[plan_name]
                digest = state_digest(sim.particles, sim.time)
                case = store.case_id(
                    workload=workload, n=n, seed=seed, plan=plan_name,
                    dt=dt, steps=steps,
                )
                if bless:
                    store.bless(
                        case,
                        digest,
                        meta={
                            "workload": workload, "n": n, "seed": seed,
                            "plan": plan_name, "dt": dt, "steps": steps,
                        },
                    )
                    golden.append(
                        {"case": case, "status": "blessed", "digest": digest}
                    )
                else:
                    golden.append(store.verify(case, digest))

    matrix_ok = all(c.ok for c in matrix)
    kernels_ok = all(row["ok"] for row in kernels)
    invariants_ok = all(r["ok"] for r in invariants)
    golden_ok = all(g["status"] in ("match", "blessed") for g in golden)
    return {
        "workload": workload,
        "n": n,
        "seed": seed,
        "dt": dt,
        "steps": steps,
        "plans": list(plans),
        "backends": list(backends),
        "workers": workers,
        "reference": reference,
        "matrix": [c.to_dict() for c in matrix],
        "matrix_ok": matrix_ok,
        "kernel_backends": requested,
        "kernels": kernels,
        "kernels_skipped": kernels_skipped,
        "kernels_ok": kernels_ok,
        "invariants": invariants,
        "invariants_ok": invariants_ok,
        "golden": golden,
        "golden_ok": golden_ok,
        "ok": matrix_ok and kernels_ok and invariants_ok and golden_ok,
    }


def _fmt_dev(dev: dict[str, Any]) -> str:
    if dev["bit_identical"]:
        return "bit-identical"
    return (
        f"rms={dev['rms_rel_error']:.2e} max={dev['max_rel_error']:.2e} "
        f"ulps={dev['max_ulps']}"
    )


def render_report(report: dict[str, Any]) -> str:
    """Console rendering of a :func:`run_check` report."""
    lines = [
        f"check: {report['workload']} n={report['n']} seed={report['seed']} "
        f"dt={report['dt']} steps={report['steps']}",
        "",
        "differential matrix "
        f"(reference {report['reference']}/serial; backends must be "
        "bit-identical, plans within documented tolerance):",
    ]
    width = max(
        (len(f"{c['candidate']} vs {c['reference']}") for c in report["matrix"]),
        default=20,
    )
    for c in report["matrix"]:
        pair = f"{c['candidate']} vs {c['reference']}"
        status = "ok  " if c["ok"] else "FAIL"
        lines.append(
            f"  {status} {pair:{width}}  [{c['tolerance']['name']}] "
            f"{_fmt_dev(c['deviation'])}"
        )
    kernels = report.get("kernels", [])
    kernels_skipped = report.get("kernels_skipped", [])
    if kernels or kernels_skipped:
        lines += [
            "",
            "kernel backends (vs the numpy reference, compiled-* tolerances):",
        ]
        kwidth = max(
            (len(f"{c['candidate']} vs {c['reference']}") for c in kernels),
            default=20,
        )
        for c in kernels:
            pair = f"{c['candidate']} vs {c['reference']}"
            status = "ok  " if c["ok"] else "FAIL"
            lines.append(
                f"  {status} {pair:{kwidth}}  [{c['tolerance']['name']}] "
                f"{_fmt_dev(c['deviation'])}"
            )
        for s in kernels_skipped:
            lines.append(f"  skip {s['backend']}: {s['reason']}")
    lines += ["", "invariants (plan-default policies):"]
    for row in report["invariants"]:
        status = "ok  " if row["ok"] else "FAIL"
        if row.get("report"):
            worst = max(
                (
                    (r["value"] / r["threshold"], r["name"])
                    for r in row["report"]["results"]
                    if r["threshold"]
                ),
                default=(0.0, "-"),
            )
            detail = f"worst {worst[1]} at {worst[0]:.1%} of budget"
        else:
            detail = row.get("error", "")
        lines.append(
            f"  {status} plan {row['plan']:3} ({row['steps']} steps)  {detail}"
        )
    if report["golden"]:
        lines += ["", "golden snapshots:"]
        for g in report["golden"]:
            status = "ok  " if g["status"] in ("match", "blessed") else "FAIL"
            lines.append(
                f"  {status} {g['case']}  {g['status']} ({g['digest'][:12]})"
            )
    lines += [
        "",
        f"verdict: {'PASS' if report['ok'] else 'FAIL'} "
        f"(matrix={'ok' if report['matrix_ok'] else 'FAIL'}, "
        + (
            f"kernels={'ok' if report['kernels_ok'] else 'FAIL'}, "
            if report.get("kernels") or report.get("kernels_skipped")
            else ""
        )
        + f"invariants={'ok' if report['invariants_ok'] else 'FAIL'}"
        + (
            f", golden={'ok' if report['golden_ok'] else 'FAIL'})"
            if report["golden"]
            else ")"
        ),
    ]
    return "\n".join(lines)

"""Check-layer settings: defaults, ``REPRO_CHECK_*`` env, overrides.

Whether fresh :class:`~repro.runtime.RunSession` objects carry a
:class:`~repro.check.RunGuard` by default is resolved with the library's
usual precedence chain (first hit wins):

1. the explicit ``guard=`` argument to :class:`RunSession` (a guard, or
   ``False`` to opt out of an enabled default);
2. values set through :func:`repro.configure` (``verify=``);
3. the ``REPRO_CHECK_ENABLED`` / ``REPRO_CHECK_EVERY`` /
   ``REPRO_CHECK_ENERGY_TOL`` environment variables;
4. the built-in default: no guard.

Environment variables are read when a guard is resolved (session
construction), not at import, so tests and subprocesses can adjust them
freely.  ``REPRO_CHECK_ENERGY_TOL`` overrides only the energy-drift
threshold of the plan's default policy; full policy control goes through
``repro.configure(verify=TolerancePolicy(...))``.
"""

from __future__ import annotations

import dataclasses
import os

from repro.check.guards import RunGuard
from repro.check.invariants import TolerancePolicy
from repro.errors import ConfigurationError

__all__ = [
    "default_guard",
    "set_verify_override",
    "clear_overrides",
]

ENV_ENABLED = "REPRO_CHECK_ENABLED"
ENV_EVERY = "REPRO_CHECK_EVERY"
ENV_ENERGY_TOL = "REPRO_CHECK_ENERGY_TOL"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}

#: ``repro.configure(verify=...)`` value (precedence level 2); ``None``
#: means "not configured, fall through to the environment".
_verify_override: bool | TolerancePolicy | None = None


def set_verify_override(verify: bool | TolerancePolicy | None) -> None:
    """Install the ``repro.configure``-level verify default."""
    global _verify_override
    if verify is not None and not isinstance(verify, (bool, TolerancePolicy)):
        raise ConfigurationError(
            f"verify must be a bool or TolerancePolicy, got {type(verify).__name__}"
        )
    _verify_override = verify


def clear_overrides() -> None:
    """Drop the configure-level verify default (tests)."""
    global _verify_override
    _verify_override = None


def _env_bool(name: str) -> bool | None:
    raw = os.environ.get(name)
    if raw is None:
        return None
    val = raw.strip().lower()
    if val in _TRUTHY:
        return True
    if val in _FALSY:
        return False
    raise ConfigurationError(f"{name} must be a boolean flag, got {raw!r}")


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a float, got {raw!r}") from None
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def default_guard() -> RunGuard | None:
    """The guard a fresh session gets when none was passed explicitly.

    Returns ``None`` when verification is not enabled anywhere along the
    precedence chain.  A :class:`TolerancePolicy` given to
    ``repro.configure(verify=...)`` is used as the guard's policy;
    ``verify=True`` leaves policy selection to the plan default at
    prime time.
    """
    verify = _verify_override
    if verify is None:
        verify = _env_bool(ENV_ENABLED)
    if verify is None or verify is False:
        return None
    policy = verify if isinstance(verify, TolerancePolicy) else None
    energy_tol = _env_float(ENV_ENERGY_TOL)
    if energy_tol is not None and policy is not None:
        policy = dataclasses.replace(policy, energy_drift=energy_tol)
    elif energy_tol is not None:
        # Plan-default policy, adjusted at prime time is not possible —
        # build an env-derived policy from the stricter pp defaults.
        from repro.check.invariants import PP_POLICY

        policy = dataclasses.replace(
            PP_POLICY, name="env", energy_drift=energy_tol
        )
    return RunGuard(policy=policy, every=_env_int(ENV_EVERY) or 0)

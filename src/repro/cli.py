"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    python -m repro fig5
    python -m repro table2 --quick
    python -m repro all --workload uniform
    repro-nbody table1 --steps 100
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP, WORKLOADS

__all__ = ["main", "build_parser"]

#: Experiments that accept sweep-style options.
_SWEEP_EXPERIMENTS = {"fig4", "fig5", "table1", "table2", "table3"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-nbody",
        description=(
            "Reproduce the evaluation of 'Parallel Time-Space Processing "
            "Model Based Fast N-body Simulation on GPUs'"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="experiment id (table/figure of the paper), 'all', or "
        "'report' (write every experiment to a markdown file)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output path for the 'report' command (default: repro_report.md)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"use the short N sweep {QUICK_N_SWEEP} instead of {PAPER_N_SWEEP}",
    )
    parser.add_argument(
        "--workload",
        default="plummer",
        choices=sorted(WORKLOADS),
        help="initial-condition generator (default: plummer)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="steps per run for the timed tables (default: 100, as in the paper)",
    )
    return parser


def _experiment_kwargs(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if exp_id in _SWEEP_EXPERIMENTS:
        kwargs["workload"] = args.workload
        if args.quick:
            kwargs["n_values"] = QUICK_N_SWEEP
        if args.steps is not None and exp_id in ("table1", "table2", "table3"):
            kwargs["n_steps"] = args.steps
    return kwargs


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        from repro.bench.report import DEFAULT_REPORT_PATH, generate_report

        out = generate_report(
            args.output or DEFAULT_REPORT_PATH,
            quick=args.quick,
            workload=args.workload,
        )
        print(f"report written to {out}")
        return 0
    exp_ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in exp_ids:
        result = run_experiment(exp_id, **_experiment_kwargs(exp_id, args))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

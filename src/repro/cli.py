"""Command-line interface: experiments, profiling, and resumable runs.

Subcommands::

    repro-nbody bench <experiment> [...]   # the paper's tables/figures
    repro-nbody profile <experiment> [...] # one experiment with tracing on
    repro-nbody run [...]                  # a checkpointed simulation run
    repro-nbody resume <rundir>            # continue an interrupted run
    repro-nbody serve batch --jobs FILE    # batch of jobs over one pool
    repro-nbody serve submit [...]         # one cached job (spec flags)
    repro-nbody serve coordinator [...]    # distributed-tier coordinator
    repro-nbody serve worker [...]         # worker shard pulling jobs
    repro-nbody serve gateway [...]        # async multi-tenant HTTP gateway
    repro-nbody serve merge-shards [...]   # combine shard ledgers
    repro-nbody serve shutdown [...]       # stop a running coordinator
    repro-nbody check [...]                # differential + invariant battery
    repro-nbody top [...]                  # live run table from the ledger
    repro-nbody report [...]               # markdown/HTML ledger report

Examples::

    repro-nbody bench fig5
    repro-nbody bench table2 --quick --trace
    repro-nbody profile table2 --quick --trace-out t.json --metrics-out m.json
    repro-nbody run --n 4096 --plan jw --steps 200 --checkpoint-every 25 \\
        --out runs/demo
    repro-nbody resume runs/demo
    repro-nbody serve batch --jobs jobs.json --max-concurrent 4 \\
        --cache-dir cache --ledger-dir ledger
    repro-nbody serve submit --n 2048 --plan jw --steps 100 --cache-dir cache
    repro-nbody serve coordinator --addr 127.0.0.1:7464 --cache-dir cache
    repro-nbody serve worker --addr 127.0.0.1:7464 --shard shard-a \\
        --cache-dir cache --ledger-dir ledger/a
    repro-nbody serve submit --addr 127.0.0.1:7464 --n 2048 --steps 100
    repro-nbody serve gateway --addr 127.0.0.1:8080 --backend 127.0.0.1:7464
    repro-nbody serve merge-shards ledger/a ledger/b --out ledger/all
    repro-nbody serve shutdown --addr 127.0.0.1:7464
    repro-nbody check --n 256 --json check.json
    repro-nbody check --golden tests/golden --bless
    repro-nbody top --ledger-dir ledger --once
    repro-nbody report --ledger-dir ledger --out runlog.md

The pre-subcommand flat form (``repro-nbody table2 --quick``) keeps
working: an unrecognised leading token is routed through a hidden
compatibility path that prefixes ``bench``.  The flat ``report`` form
(``repro-nbody report --output rep.md``) still reaches the bench report
— bench-style flags (``--output``/``--quick``/``--workload``/``--steps``)
disambiguate it from the ledger ``report`` subcommand.  The pre-PR-8
serve spellings also keep working: ``repro-nbody serve --jobs ...``
rewrites to ``serve batch`` and flat ``repro-nbody submit ...`` rewrites
to ``serve submit`` — unless batch-only flags (``--jobs`` /
``--summary-out``) are mixed into a flat ``submit``, which is ambiguous
and rejected with exit code 2.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro import obs
from repro._version import __version__
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP, WORKLOADS
from repro.config import configure
from repro.exec.engine import BACKENDS

__all__ = ["main", "build_parser"]

#: Experiments that accept sweep-style options (``--quick``).
_SWEEP_EXPERIMENTS = {"fig4", "fig5", "table1", "table2", "table3"}

#: Experiments that accept ``--steps`` (the paper's timed tables).
_STEPS_EXPERIMENTS = {"table1", "table2", "table3"}

#: Experiments that accept a ``workload`` keyword.
_WORKLOAD_EXPERIMENTS = _SWEEP_EXPERIMENTS | {
    "abl-tile",
    "abl-theta",
    "abl-queue",
    "abl-overlap",
    "abl-quad",
    "ext-multigpu",
}

#: Default trace path for ``--trace`` without an explicit ``--trace-out``.
DEFAULT_TRACE_PATH = "trace.json"

#: The CLI's subcommands (used by the flat-form compatibility shim).
SUBCOMMANDS = (
    "run", "profile", "bench", "resume", "serve", "submit", "check",
    "top", "report",
)

#: ``serve``'s own subcommands (used by the serve compat rewrites).
SERVE_SUBCOMMANDS = (
    "batch", "submit", "coordinator", "worker", "gateway", "merge-shards",
    "shutdown",
)

#: Flags that belong only to ``serve batch``; mixing them into the flat
#: ``submit`` form is ambiguous and rejected (same policy as the flat
#: ``report`` disambiguation).
_BATCH_ONLY_FLAGS = frozenset({"--jobs", "--summary-out"})

#: Flags that mark a flat ``report`` invocation as the *bench* report.
_BENCH_REPORT_FLAGS = frozenset({"--output", "--quick", "--workload", "--steps"})

#: Flags specific to the ledger ``report`` subcommand; mixing them with
#: bench-report flags in the flat form is ambiguous and rejected.
_LEDGER_REPORT_FLAGS = frozenset({"--out", "--format"})


def _run_plans() -> tuple[str, ...]:
    """Plans accepted by ``run``/``submit`` — whatever is registered."""
    from repro.core.plans import available_plans

    return available_plans()


def _common_parser() -> argparse.ArgumentParser:
    """Flags shared by every subcommand (execution, fault handling, tracing)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="CPU workers for functional force passes (default: 1, or the "
        "REPRO_WORKERS environment variable); results are bit-identical "
        "to serial for any worker count",
    )
    common.add_argument(
        "--exec-backend",
        default=None,
        choices=sorted(BACKENDS),
        help="parallel map backend for --workers (default: thread)",
    )
    common.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failed force task up to N times (default: 0; "
        "a dead worker pool additionally degrades process->thread->serial)",
    )
    common.add_argument(
        "--trace",
        action="store_true",
        help="record a repro.obs trace of the run and write it to "
        f"{DEFAULT_TRACE_PATH} (Chrome trace-event JSON; open in Perfetto)",
    )
    common.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the Chrome trace JSON to PATH (implies --trace)",
    )
    common.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics snapshot JSON to PATH (implies --trace)",
    )
    common.add_argument(
        "--prometheus-out",
        default=None,
        metavar="PATH",
        help="write the metrics in Prometheus text exposition format to "
        "PATH (implies --trace)",
    )
    common.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="append run accounting to the durable SQLite ledger in DIR "
        "(default: the REPRO_LEDGER_DIR environment variable, else off); "
        "read it back with 'repro-nbody top' / 'repro-nbody report'",
    )
    common.add_argument(
        "--kernel-backend",
        default=None,
        metavar="NAME",
        help="force-kernel backend for the functional force paths "
        "(numpy, numba, cext, ...; default: the REPRO_KERNEL_BACKEND "
        "environment variable, else numpy); an unavailable backend "
        "warns once and falls back to numpy",
    )
    return common


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"use the short N sweep {QUICK_N_SWEEP} instead of {PAPER_N_SWEEP}",
    )
    parser.add_argument(
        "--workload",
        default=None,
        choices=sorted(WORKLOADS),
        help="initial-condition generator (default: plummer)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="steps per run for the timed tables (default: 100, as in the paper)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-nbody",
        description=(
            "Reproduce the evaluation of 'Parallel Time-Space Processing "
            "Model Based Fast N-body Simulation on GPUs'"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    common = _common_parser()
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    bench = sub.add_parser(
        "bench",
        parents=[common],
        help="regenerate the paper's tables and figures",
    )
    bench.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="experiment id (table/figure of the paper), 'all', or "
        "'report' (write every experiment to a markdown file)",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="output path for the 'report' experiment (default: repro_report.md)",
    )
    _add_sweep_flags(bench)

    profile = sub.add_parser(
        "profile",
        parents=[common],
        help="run one experiment with tracing on and print a span summary",
    )
    profile.add_argument(
        "target",
        choices=sorted(EXPERIMENTS),
        help="experiment to profile",
    )
    _add_sweep_flags(profile)

    run = sub.add_parser(
        "run",
        parents=[common],
        help="run a checkpointed simulation (resumable after interruption)",
    )
    run.add_argument(
        "--n", type=int, default=4096, metavar="N", help="number of bodies"
    )
    run.add_argument(
        "--plan",
        default="jw",
        choices=_run_plans(),
        help="PTPM plan, by registered name (default: jw)",
    )
    run.add_argument(
        "--workload",
        default="plummer",
        choices=sorted(WORKLOADS),
        help="initial-condition generator (default: plummer)",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed (default: 0)"
    )
    run.add_argument(
        "--dt", type=float, default=1e-3, help="leapfrog time step (default: 1e-3)"
    )
    run.add_argument(
        "--steps",
        type=int,
        default=None,
        help="total leapfrog steps to reach (default: 100; with --resume, "
        "the manifest's recorded target)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="checkpoint every K steps (default: 0 = final state only)",
    )
    run.add_argument(
        "--out",
        default="run_out",
        metavar="DIR",
        help="run directory for manifest + checkpoints (default: run_out)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume the run in DIR instead of starting fresh "
        "(workload/plan flags are then taken from its manifest)",
    )

    resume = sub.add_parser(
        "resume",
        parents=[common],
        help="continue an interrupted run from its last checkpoint",
    )
    resume.add_argument("rundir", help="run directory holding manifest.json")
    resume.add_argument(
        "--steps",
        type=int,
        default=None,
        help="new total step target (default: the manifest's target)",
    )

    serve = sub.add_parser(
        "serve",
        help="batched job serving: local batches and the distributed tier",
    )
    serve_sub = serve.add_subparsers(
        dest="serve_command", required=True, metavar="SERVE_COMMAND"
    )

    batch = serve_sub.add_parser(
        "batch",
        parents=[common],
        help="execute a batch of jobs over one shared worker pool",
    )
    batch.add_argument(
        "--jobs",
        required=True,
        metavar="FILE",
        help="JSON file: a list of job-spec objects (workload/n/seed/plan/"
        "dt/steps[/plan_config/checkpoint_every/priority])",
    )
    _add_serve_flags(batch)
    _add_addr_flag(batch)
    _add_submit_option_flags(batch)
    batch.add_argument(
        "--summary-out",
        default=None,
        metavar="PATH",
        help="write a JSON summary of per-job outcomes to PATH",
    )

    submit = serve_sub.add_parser(
        "submit",
        parents=[common],
        help="run one job spec through the cached job service "
        "(in-process, or against a coordinator via --addr)",
    )
    submit.add_argument("--n", type=int, default=4096, metavar="N")
    submit.add_argument("--plan", default="jw", choices=_run_plans())
    submit.add_argument("--workload", default="plummer", choices=sorted(WORKLOADS))
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--dt", type=float, default=1e-3)
    submit.add_argument("--steps", type=int, default=100)
    submit.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="checkpoint cadence inside the cached run directory",
    )
    _add_serve_flags(submit)
    _add_addr_flag(submit)
    _add_submit_option_flags(submit)

    coordinator = serve_sub.add_parser(
        "coordinator",
        parents=[common],
        help="run the distributed-tier coordinator (serves clients and "
        "worker shards until 'serve shutdown' or Ctrl-C)",
    )
    coordinator.add_argument(
        "--addr", default="127.0.0.1:7464", metavar="HOST:PORT",
        help="address to listen on; port 0 picks a free port "
        "(default: 127.0.0.1:7464)",
    )
    coordinator.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result-cache root every worker and client must "
        "also use (default: .repro_cache)",
    )
    coordinator.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="queued-but-unassigned jobs before submissions are rejected",
    )
    _add_token_flag(coordinator)
    _add_tenants_flag(coordinator)

    workerp = serve_sub.add_parser(
        "worker",
        parents=[common],
        help="run one worker shard pulling jobs from a coordinator",
    )
    workerp.add_argument(
        "--addr", required=True, metavar="HOST:PORT",
        help="the coordinator's address",
    )
    workerp.add_argument(
        "--shard", default=None, metavar="NAME",
        help="this shard's name, stamped on its ledger rows "
        "(default: <hostname>-<pid>)",
    )
    _add_serve_flags(workerp)
    workerp.add_argument(
        "--max-idle-s", type=float, default=None, metavar="S",
        help="exit after S seconds with no work claimed or offered "
        "(default: stay until the coordinator goes away)",
    )
    _add_token_flag(workerp)

    gateway = serve_sub.add_parser(
        "gateway",
        parents=[common],
        help="run the async multi-tenant HTTP gateway "
        "(submit/status/result/cancel + SSE slice streaming)",
    )
    gateway.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="address to listen on; port 0 picks a free port "
        "(default: repro.configure(gateway_addr=...), then "
        "REPRO_GATEWAY_ADDR, else 127.0.0.1:0)",
    )
    gateway.add_argument(
        "--backend", default=None, metavar="HOST:PORT",
        help="front the coordinator at HOST:PORT; omitted = an "
        "in-process job service configured by the serve flags below",
    )
    _add_serve_flags(gateway)
    _add_token_flag(gateway)
    _add_tenants_flag(gateway)

    merge = serve_sub.add_parser(
        "merge-shards",
        parents=[common],
        help="combine per-shard run ledgers into one experiment database",
    )
    merge.add_argument(
        "shards", nargs="+", metavar="LEDGER",
        help="shard ledger paths (directories holding repro_ledger.sqlite, "
        "or the .sqlite files themselves)",
    )
    merge.add_argument(
        "--out", required=True, metavar="DIR",
        help="destination ledger the shard databases are folded into "
        "(run ids are remapped; shard provenance is preserved)",
    )

    shutdown = serve_sub.add_parser(
        "shutdown",
        parents=[common],
        help="ask a running coordinator to stop",
    )
    shutdown.add_argument(
        "--addr", required=True, metavar="HOST:PORT",
        help="the coordinator's address",
    )
    _add_token_flag(shutdown)

    check = sub.add_parser(
        "check",
        parents=[common],
        help="run the differential plan x backend matrix and invariant battery",
    )
    check.add_argument(
        "--plans",
        default="i,j,w,jw",
        metavar="CSV",
        help="comma-separated plan names to verify (default: i,j,w,jw)",
    )
    check.add_argument(
        "--backends",
        default="serial,thread,process",
        metavar="CSV",
        help="comma-separated parallel backends each plan must reproduce "
        "bit-identically (default: serial,thread,process)",
    )
    check.add_argument(
        "--reference",
        default="i",
        help="reference plan for the cross-plan comparisons (default: i)",
    )
    check.add_argument("--n", type=int, default=256, metavar="N")
    check.add_argument(
        "--workload", default="plummer", choices=sorted(WORKLOADS)
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--dt", type=float, default=1e-3)
    check.add_argument(
        "--steps",
        type=int,
        default=12,
        help="leapfrog steps for the guarded invariant runs (default: 12)",
    )
    check.add_argument(
        "--kernel-backends",
        default=None,
        metavar="CSV",
        help="comma-separated kernel backends to validate against the "
        "numpy reference across the direct/blocked/BH-leaf x "
        "float32/float64 matrix; 'auto' selects every available "
        "compiled backend, unavailable named ones are reported as "
        "skipped (default: auto)",
    )
    check.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="write the full machine-readable report to PATH",
    )
    check.add_argument(
        "--golden",
        default=None,
        metavar="DIR",
        help="verify final-state digests against the golden snapshots in DIR",
    )
    check.add_argument(
        "--bless",
        action="store_true",
        help="record the current digests in --golden DIR instead of "
        "verifying (the explicit snapshot-regeneration step)",
    )

    top = sub.add_parser(
        "top",
        parents=[common],
        help="live per-run table polled from the durable run ledger",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (default: refresh until Ctrl-C)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between refreshes (default: 2.0)",
    )
    top.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="show only the newest N runs (default: 20)",
    )

    report = sub.add_parser(
        "report",
        parents=[common],
        help="render the run ledger as a markdown/HTML research-log report",
    )
    report.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report to PATH (default: print to stdout)",
    )
    report.add_argument(
        "--format",
        default=None,
        choices=("md", "html"),
        help="report format (default: inferred from --out suffix, else md)",
    )
    return parser


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """Serve-layer knobs shared by ``serve`` and ``submit``.

    Defaults are ``None`` so unset flags fall through the documented
    precedence chain: ``repro.configure`` values, then ``REPRO_SERVE_*``
    environment variables, then the built-in defaults.
    """
    parser.add_argument(
        "--max-concurrent", type=int, default=None, metavar="J",
        help="sessions the scheduler keeps live at once",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="pending jobs before submissions are rejected",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache root (default: .repro_cache)",
    )
    parser.add_argument(
        "--pool-backend", default="thread", choices=sorted(BACKENDS),
        help="shared worker-pool backend (default: thread)",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=2, metavar="N",
        help="workers in the shared pool (default: 2)",
    )
    parser.add_argument(
        "--steps-per-slice", type=int, default=8, metavar="K",
        help="steps a live session advances per scheduler slice (default: 8)",
    )


def _add_addr_flag(parser: argparse.ArgumentParser) -> None:
    """The transport switch shared by ``serve batch`` / ``serve submit``."""
    parser.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="submit to the coordinator at HOST:PORT instead of an "
        "in-process service; the literal value 'local' forces in-process "
        "(default: repro.configure(serve_addr=...), then the "
        "REPRO_SERVE_ADDR environment variable, else in-process)",
    )


def _add_token_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--token", default=None, metavar="SECRET",
        help="serve-tier shared secret (default: "
        "repro.configure(serve_token=...), then REPRO_SERVE_TOKEN, "
        "else auth disabled)",
    )


def _add_tenants_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tenants", default=None, metavar="JSON",
        help="tenant policies as inline JSON or @file, e.g. "
        '\'{"interactive": {"weight": 4, "max_queued": 32}, '
        '"bulk": {"weight": 1}}\'',
    )


def _add_submit_option_flags(parser: argparse.ArgumentParser) -> None:
    """Per-submission SubmitOptions knobs shared by batch/submit."""
    parser.add_argument(
        "--priority", type=int, default=0, metavar="P",
        help="scheduling priority (higher pops first within a tenant; "
        "default: 0)",
    )
    parser.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="tenant label for fair scheduling and quotas (default: "
        "repro.configure(tenant=...), then REPRO_TENANT, else 'default')",
    )
    _add_token_flag(parser)


def _parse_tenants_arg(
    parser: argparse.ArgumentParser, raw: "str | None"
) -> "dict | None":
    """``--tenants`` as inline JSON or ``@file`` -> policy mapping."""
    if raw is None:
        return None
    import json

    try:
        if raw.startswith("@"):
            raw = open(raw[1:]).read()
        tenants = json.loads(raw)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"--tenants: {exc}")
    if not isinstance(tenants, dict):
        parser.error("--tenants must be a JSON object of tenant -> policy")
    return tenants


def _compat_argv(
    argv: Sequence[str], parser: argparse.ArgumentParser | None = None
) -> list[str]:
    """Route the pre-subcommand flat form through ``bench``.

    ``repro-nbody table2 --quick`` becomes ``repro-nbody bench table2
    --quick``; the old flat ``profile <target>`` shape coincides with the
    ``profile`` subcommand and passes through untouched, as do help and
    version flags.

    The pre-PR-8 serve spellings rewrite the same way:
    ``repro-nbody serve --jobs ...`` (flags straight after ``serve``)
    becomes ``serve batch ...``, and flat ``repro-nbody submit ...``
    becomes ``serve submit ...``.

    A flat ``report`` carrying *both* bench-report flags and ledger-report
    flags belongs to neither command; it is rejected outright (exit 2)
    rather than routed somewhere that would die on an unrecognised flag —
    or worse, silently accept a subset.  A flat ``submit`` mixing in
    batch-only flags (``--jobs`` / ``--summary-out``) is rejected the
    same way.
    """
    argv = list(argv)
    if argv and not argv[0].startswith("-") and argv[0] not in SUBCOMMANDS:
        return ["bench", *argv]
    if argv and argv[0] == "serve":
        rest = argv[1:]
        if rest and rest[0] not in SERVE_SUBCOMMANDS and rest[0].startswith("-"):
            # Old flat serve: flags straight after `serve` mean `batch`.
            return ["serve", "batch", *rest]
    if argv and argv[0] == "submit":
        batch_hits = _BATCH_ONLY_FLAGS.intersection(argv[1:])
        if batch_hits:
            message = (
                "ambiguous flat 'submit': "
                f"{'/'.join(sorted(batch_hits))} belongs to 'serve batch', "
                "not 'serve submit'; spell out 'repro-nbody serve batch' "
                "or drop the batch flags"
            )
            if parser is not None:
                parser.error(message)  # exits 2
            print(f"error: {message}", file=sys.stderr)
            raise SystemExit(2)
        return ["serve", "submit", *argv[1:]]
    if argv and argv[0] == "report":
        bench_hits = _BENCH_REPORT_FLAGS.intersection(argv[1:])
        ledger_hits = _LEDGER_REPORT_FLAGS.intersection(argv[1:])
        if bench_hits and ledger_hits:
            message = (
                "ambiguous flat 'report': "
                f"{'/'.join(sorted(bench_hits))} belongs to 'bench report' "
                f"but {'/'.join(sorted(ledger_hits))} belongs to the ledger "
                "report; spell out 'repro-nbody bench report' or drop the "
                "conflicting flags"
            )
            if parser is not None:
                parser.error(message)  # exits 2
            print(f"error: {message}", file=sys.stderr)
            raise SystemExit(2)
        if bench_hits:
            # Flat bench-report form: its flags don't exist on the ledger
            # report subcommand, so they identify the old shape.
            return ["bench", *argv]
    return argv


def _validate_bench_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> list[str]:
    """Reject or warn on flags that do not apply to the chosen experiment.

    Returns the list of experiment ids that will actually run.  Hard errors
    (``parser.error``, exit code 2) for flags that would otherwise be
    silently dropped; warnings on stderr for soft mismatches.
    """
    if args.experiment == "report":
        exp_ids: list[str] = []
    elif args.experiment == "all":
        exp_ids = sorted(EXPERIMENTS)
    else:
        exp_ids = [args.experiment]

    if args.output is not None and args.experiment != "report":
        parser.error(
            f"--output only applies to the 'report' command, "
            f"not '{args.experiment}'"
        )
    if args.steps is not None and args.experiment != "report":
        if not any(e in _STEPS_EXPERIMENTS for e in exp_ids):
            parser.error(
                f"--steps does not apply to '{exp_ids[0] if exp_ids else args.experiment}' "
                f"(only to {sorted(_STEPS_EXPERIMENTS)})"
            )
    if args.quick and args.experiment not in ("all", "report"):
        if not any(e in _SWEEP_EXPERIMENTS for e in exp_ids):
            print(
                f"warning: --quick has no effect on '{exp_ids[0]}'",
                file=sys.stderr,
            )
    if args.workload is not None and args.experiment not in ("all", "report"):
        if not any(e in _WORKLOAD_EXPERIMENTS for e in exp_ids):
            print(
                f"warning: --workload has no effect on '{exp_ids[0]}'",
                file=sys.stderr,
            )
    return exp_ids


def _experiment_kwargs(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    workload = args.workload or "plummer"
    if exp_id in _WORKLOAD_EXPERIMENTS:
        kwargs["workload"] = workload
    if exp_id in _SWEEP_EXPERIMENTS and args.quick:
        kwargs["n_values"] = QUICK_N_SWEEP
    if args.steps is not None and exp_id in _STEPS_EXPERIMENTS:
        kwargs["n_steps"] = args.steps
    return kwargs


def _write_trace_outputs(args: argparse.Namespace) -> None:
    trace_path = args.trace_out or DEFAULT_TRACE_PATH
    out = obs.export.write_chrome_trace(trace_path, obs.tracer(), obs.metrics())
    print(f"trace written to {out} ({len(obs.tracer())} spans)")
    if args.metrics_out:
        mout = obs.export.write_metrics_json(args.metrics_out, obs.metrics())
        print(f"metrics written to {mout}")
    if args.prometheus_out:
        pout = obs.export.write_prometheus(args.prometheus_out, obs.metrics())
        print(f"prometheus metrics written to {pout}")


# ---------------------------------------------------------------------------
# Subcommand handlers
# ---------------------------------------------------------------------------

def _cmd_bench(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    exp_ids = _validate_bench_args(parser, args)
    if args.experiment == "report":
        from repro.bench.report import DEFAULT_REPORT_PATH, generate_report

        out = generate_report(
            args.output or DEFAULT_REPORT_PATH,
            quick=args.quick,
            workload=args.workload or "plummer",
        )
        print(f"report written to {out}")
        return
    for exp_id in exp_ids:
        result = run_experiment(exp_id, **_experiment_kwargs(exp_id, args))
        print(result.render())
        print()


def _cmd_profile(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if args.steps is not None and args.target not in _STEPS_EXPERIMENTS:
        parser.error(
            f"--steps does not apply to '{args.target}' "
            f"(only to {sorted(_STEPS_EXPERIMENTS)})"
        )
    if args.quick and args.target not in _SWEEP_EXPERIMENTS:
        print(f"warning: --quick has no effect on '{args.target}'", file=sys.stderr)
    t0 = time.perf_counter()
    result = run_experiment(args.target, **_experiment_kwargs(args.target, args))
    print(result.render())
    print()
    wall = time.perf_counter() - t0
    print(obs.export.summary_markdown(obs.tracer(), obs.metrics()))
    print()
    print(f"profiled '{args.target}' in {wall:.2f} s wall-clock")


def _print_run_summary(session) -> None:
    record = session.simulation.record
    sim = session.simulation
    print(
        f"run {'complete' if session.complete else 'stopped'}: "
        f"plan={sim.plan.name} n={len(sim.particles)} "
        f"steps={record.steps} force_passes={record.force_passes} "
        f"simulated={record.simulated_seconds:.6g}s "
        f"checkpoints={len(session.manifest.checkpoints)}"
    )
    print(f"run directory: {session.directory}")


def _cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    from repro.bench.workloads import make_workload
    from repro.core.plans import plan_by_name
    from repro.core.simulation import Simulation
    from repro.runtime import RunSession

    if args.resume is not None:
        session = RunSession.resume(args.resume)
        session.run(args.steps)
    else:
        particles = make_workload(args.workload, args.n, seed=args.seed)
        sim = Simulation(particles, plan_by_name(args.plan), dt=args.dt)
        session = RunSession(
            sim, args.out, checkpoint_every=args.checkpoint_every
        )
        session.run(args.steps if args.steps is not None else 100)
    _print_run_summary(session)


def _cmd_resume(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    from repro.runtime import RunSession

    session = RunSession.resume(args.rundir)
    session.run(args.steps)
    _print_run_summary(session)


def _resolve_cli_addr(args: argparse.Namespace) -> str | None:
    """The coordinator address a serve command should dial, or ``None``.

    ``--addr HOST:PORT`` dials that coordinator, the literal value
    ``local`` forces in-process, and no flag falls through the settings
    chain (``repro.configure(serve_addr=...)`` / ``REPRO_SERVE_ADDR``).
    """
    if args.addr == "local":
        return None
    if args.addr is not None:
        return args.addr
    from repro.serve.settings import current_settings

    return current_settings().addr


def _make_client(args: argparse.Namespace):
    """A :class:`repro.serve.Client` on whichever transport ``args`` picks."""
    from repro.serve import connect

    addr = _resolve_cli_addr(args)
    if addr is not None:
        return connect(addr, token=getattr(args, "token", None))
    return connect(
        None,
        max_concurrent_jobs=args.max_concurrent,
        queue_capacity=args.queue_capacity,
        cache_dir=args.cache_dir,
        pool_backend=args.pool_backend,
        pool_workers=args.pool_workers,
        steps_per_slice=args.steps_per_slice,
    )


def _job_row(handle, wall: float) -> dict:
    row = {
        "spec_hash": handle.spec_hash,
        "workload": handle.spec.workload,
        "n": handle.spec.n,
        "seed": handle.spec.seed,
        "plan": handle.spec.plan,
        "steps": handle.spec.steps,
        "status": handle.status,
        "from_cache": handle.from_cache,
        "wall_s": wall,
    }
    if handle.error is not None:
        row["error"] = f"{type(handle.error).__name__}: {handle.error}"
    return row


def _print_job_rows(rows: list[dict]) -> None:
    header = f"{'hash':12}  {'plan':4} {'n':>7} {'steps':>6}  {'status':8} cached"
    print(header)
    print("-" * len(header))
    for r in rows:
        print(
            f"{r['spec_hash'][:12]}  {r['plan']:4} {r['n']:>7} "
            f"{r['steps']:>6}  {r['status']:8} {'yes' if r['from_cache'] else 'no'}"
        )


def _cmd_serve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Dispatch ``serve`` to its subcommand handler."""
    _SERVE_HANDLERS[args.serve_command](parser, args)


def _cmd_serve_batch(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    import json

    from repro.errors import AdmissionError, ServeError
    from repro.serve import JobSpec, SubmitOptions

    try:
        entries = json.loads(open(args.jobs).read())
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read job file {args.jobs}: {exc}")
    if not isinstance(entries, list) or not entries:
        parser.error(f"{args.jobs} must hold a non-empty JSON list of job specs")
    t0 = time.perf_counter()
    client = _make_client(args)
    handles = []
    try:
        for i, entry in enumerate(entries):
            # Per-entry fields win over the batch-wide flags.
            options = SubmitOptions(
                priority=int(entry.pop("priority", args.priority)),
                tenant=entry.pop("tenant", None) or args.tenant,
            )
            try:
                spec = JobSpec.from_dict(entry)
            except ServeError as exc:
                parser.error(f"job {i} in {args.jobs}: {exc}")
            try:
                handles.append(client.submit(spec, options=options))
            except AdmissionError as exc:
                print(
                    f"job {i} in {args.jobs} rejected: {exc}\n"
                    "(raise --queue-capacity or submit fewer jobs at once)",
                    file=sys.stderr,
                )
                raise SystemExit(3) from None
        for h in handles:
            h.wait()
        described = client.describe()
    finally:
        client.close()
    wall = time.perf_counter() - t0
    rows = [_job_row(h, wall) for h in handles]
    _print_job_rows(rows)
    done = sum(r["status"] == "complete" for r in rows)
    cached = sum(r["from_cache"] for r in rows)
    print(
        f"\n{done}/{len(rows)} jobs complete ({cached} from cache, "
        f"{described.get('deduped', 0)} deduped) in {wall:.2f} s wall-clock"
    )
    if args.summary_out:
        summary = {
            "jobs": rows,
            "wall_s": wall,
            "service": described,
        }
        with open(args.summary_out, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.summary_out}")
    if done != len(rows):
        raise SystemExit(1)


def _cmd_serve_submit(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.serve import JobSpec, SubmitOptions

    spec = JobSpec(
        workload=args.workload,
        n=args.n,
        seed=args.seed,
        plan=args.plan,
        dt=args.dt,
        steps=args.steps,
        checkpoint_every=args.checkpoint_every,
    )
    options = SubmitOptions(priority=args.priority, tenant=args.tenant)
    client = _make_client(args)
    try:
        t0 = time.perf_counter()
        result = client.run(spec, options=options)
        wall = time.perf_counter() - t0
    finally:
        client.close()
    source = "cache" if result.from_cache else "fresh run"
    print(
        f"job {result.spec_hash[:12]} complete from {source}: "
        f"plan={spec.plan} n={spec.n} steps={result.steps} "
        f"simulated={result.record['simulated_seconds']:.6g}s "
        f"in {wall:.2f} s wall-clock"
    )
    print(f"result directory: {result.run_dir}")


def _cmd_serve_coordinator(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.serve import Coordinator

    coord = Coordinator(
        args.addr,
        cache_dir=args.cache_dir,
        queue_capacity=args.queue_capacity,
        token=args.token,
        tenants=_parse_tenants_arg(parser, args.tenants),
    ).start()
    # Flush immediately: launcher scripts read this line for the port.
    print(f"coordinator listening at {coord.addr}", flush=True)
    try:
        coord.join()
    except KeyboardInterrupt:
        pass
    finally:
        coord.stop()
    print(
        f"coordinator stopped: {coord.jobs_submitted} submissions "
        f"({coord.cache_hits} cache hits, {coord.deduped} deduped)"
    )


def _cmd_serve_worker(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    import os
    import socket as socketlib

    from repro.serve import Worker

    shard = args.shard or f"{socketlib.gethostname()}-{os.getpid()}"
    worker = Worker(
        args.addr,
        shard,
        cache_dir=args.cache_dir,
        max_idle_s=args.max_idle_s,
        token=args.token,
        max_concurrent_jobs=args.max_concurrent,
        queue_capacity=args.queue_capacity,
        pool_backend=args.pool_backend,
        pool_workers=args.pool_workers,
        steps_per_slice=args.steps_per_slice,
    )
    print(f"worker {shard} pulling from {args.addr}", flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    print(
        f"worker {shard} done: {worker.jobs_done} jobs completed, "
        f"{worker.jobs_failed} failed"
    )


def _cmd_serve_merge(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.errors import LedgerError
    from repro.obs.ledger import RunLedger

    for path in args.shards:
        if not Path(path).is_file():
            # Opening a missing path would create an empty database and
            # merge zero rows — fail loudly instead.
            parser.error(f"shard database {path} does not exist")
    merged = RunLedger(args.out)
    try:
        total = 0
        for path in args.shards:
            try:
                count = merged.merge(path)
            except (LedgerError, OSError) as exc:
                parser.error(f"cannot merge {path}: {exc}")
            print(f"merged {count} runs from {path}")
            total += count
        counts = merged.counts()
        shard_rows = merged.shard_table()
    finally:
        merged.close()
    print(
        f"\nmerged database {args.out}: {counts['runs']} runs, "
        f"{counts['slices']} slices, {counts['events']} events"
    )
    header = (
        f"{'shard':16} {'runs':>5} {'done':>5} {'fail':>5} {'cached':>6} "
        f"{'retry':>5} {'dedup':>5} {'steps':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in shard_rows:
        print(
            f"{row['shard'] or '-':16} {row['runs']:>5} "
            f"{row['complete'] or 0:>5} {row['failed'] or 0:>5} "
            f"{row['cached'] or 0:>6} {row['retries'] or 0:>5} "
            f"{row['deduped'] or 0:>5} {row['steps'] or 0:>9}"
        )


def _cmd_serve_shutdown(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.serve import RemoteService
    from repro.serve.settings import current_settings

    remote = RemoteService(args.addr, token=current_settings(token=args.token).token)
    try:
        remote.shutdown()
    finally:
        remote.close()
    print(f"coordinator at {args.addr} stopping")


def _cmd_serve_gateway(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.serve import Gateway

    tenants = _parse_tenants_arg(parser, args.tenants)
    if args.backend is not None:
        gw = Gateway(args.addr, backend=args.backend, token=args.token)
        if tenants:
            parser.error(
                "--tenants configures the in-process backend; when "
                "fronting a coordinator, pass it to 'serve coordinator'"
            )
    else:
        gw = Gateway(
            args.addr,
            token=args.token,
            tenants=tenants,
            max_concurrent_jobs=args.max_concurrent,
            queue_capacity=args.queue_capacity,
            cache_dir=args.cache_dir,
            pool_backend=args.pool_backend,
            pool_workers=args.pool_workers,
            steps_per_slice=args.steps_per_slice,
        )
    gw.start()
    # Flush immediately: launcher scripts read this line for the port.
    print(f"gateway listening at http://{gw.addr} "
          f"(backend: {args.backend or 'in-process'})", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        gw.stop()
    print(
        f"gateway stopped: {gw.requests_total} requests "
        f"({gw.shed_total} shed, {gw.auth_failures} auth failures)"
    )


_SERVE_HANDLERS = {
    "batch": _cmd_serve_batch,
    "submit": _cmd_serve_submit,
    "coordinator": _cmd_serve_coordinator,
    "worker": _cmd_serve_worker,
    "gateway": _cmd_serve_gateway,
    "merge-shards": _cmd_serve_merge,
    "shutdown": _cmd_serve_shutdown,
}


def _cmd_check(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    import json

    from repro.check.report import render_report, run_check

    plans = tuple(p.strip() for p in args.plans.split(",") if p.strip())
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    if not plans:
        parser.error("--plans must name at least one plan")
    known = set(_run_plans())
    for name in (*plans, args.reference):
        if name not in known:
            parser.error(f"unknown plan '{name}' (registered: {sorted(known)})")
    for backend in backends:
        if backend not in BACKENDS:
            parser.error(
                f"unknown backend '{backend}' (choose from {sorted(BACKENDS)})"
            )
    if args.bless and args.golden is None:
        parser.error("--bless requires --golden DIR (nowhere to record digests)")

    if args.kernel_backends is None or args.kernel_backends.strip() == "auto":
        kernel_backends = "auto"
    else:
        from repro.nbody.kernels import known_backends

        kernel_backends = tuple(
            b.strip() for b in args.kernel_backends.split(",") if b.strip()
        )
        registered = set(known_backends())
        for name in kernel_backends:
            if name not in registered:
                parser.error(
                    f"unknown kernel backend '{name}' "
                    f"(registered: {sorted(registered)})"
                )

    report = run_check(
        workload=args.workload,
        n=args.n,
        seed=args.seed,
        dt=args.dt,
        steps=args.steps,
        plans=plans,
        backends=backends,
        workers=args.workers or 2,
        reference=args.reference,
        golden_dir=args.golden,
        bless=args.bless,
        kernel_backends=kernel_backends,
    )
    print(render_report(report))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.json_out}")
    if not report["ok"]:
        raise SystemExit(1)


def _resolve_ledger(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """The ledger ``top``/``report`` read, or a parser error when unset."""
    from repro.obs.ledger import RunLedger
    from repro.obs.settings import ledger_dir

    directory = args.ledger_dir or ledger_dir()
    if directory is None:
        parser.error(
            "no ledger to read: pass --ledger-dir DIR or set REPRO_LEDGER_DIR"
        )
    return RunLedger(directory)


def _top_cell(value, *, scale: float = 1.0, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value * scale:.{digits}f}"
    return str(value)


def _render_top(ledger, limit: int) -> str:
    rows = ledger.job_table()
    shown = rows[-limit:] if limit > 0 else rows
    lines = [f"ledger {ledger.path} — {len(rows)} runs (showing {len(shown)})"]
    header = (
        f"{'id':>4}  {'spec':12} {'src':6} {'plan':4} {'n':>7} "
        f"{'steps':>11}  {'status':8} {'wait_s':>7} {'wall_s':>8} "
        f"{'p50_ms':>7} {'p99_ms':>7} {'rt':>3} {'dd':>3}"
    )
    lines += [header, "-" * len(header)]
    for r in shown:
        spec = (r["spec_hash"] or "")[:12] or "-"
        target = r["steps"]
        steps = (
            f"{r['steps_done']}/{target}" if target is not None
            else str(r["steps_done"])
        )
        lines.append(
            f"{r['run_id']:>4}  {spec:12} {r['source']:6} "
            f"{_top_cell(r['plan']):4} {_top_cell(r['n']):>7} {steps:>11}  "
            f"{r['status']:8} {_top_cell(r['queue_wait_s']):>7} "
            f"{_top_cell(r['wall_s']):>8} "
            f"{_top_cell(r['slice_p50_s'], scale=1e3):>7} "
            f"{_top_cell(r['slice_p99_s'], scale=1e3):>7} "
            f"{r['retries']:>3} {r['dedup_count']:>3}"
        )
    return "\n".join(lines)


def _cmd_top(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if args.interval <= 0:
        parser.error(f"--interval must be > 0, got {args.interval}")
    ledger = _resolve_ledger(parser, args)
    try:
        while True:
            print(_render_top(ledger, args.limit))
            if args.once:
                break
            print()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        ledger.close()


def _cmd_report(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    ledger = _resolve_ledger(parser, args)
    fmt = args.format
    if fmt is None:
        suffix = "" if args.out is None else args.out.rsplit(".", 1)[-1].lower()
        fmt = "html" if suffix in ("html", "htm") else "md"
    try:
        if fmt == "html":
            text = obs.export.ledger_report_html(ledger)
        else:
            text = obs.export.ledger_report_markdown(ledger)
    finally:
        ledger.close()
    if args.out is None:
        print(text, end="")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"ledger report written to {args.out}")


_HANDLERS = {
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "run": _cmd_run,
    "resume": _cmd_resume,
    "serve": _cmd_serve,
    "check": _cmd_check,
    "top": _cmd_top,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    full_argv = _compat_argv(argv if argv is not None else sys.argv[1:], parser)
    args = parser.parse_args(full_argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {args.max_retries}")
    if (
        args.workers is not None
        or args.exec_backend is not None
        or args.max_retries is not None
    ):
        configure(
            workers=args.workers,
            exec_backend=args.exec_backend,
            max_retries=args.max_retries,
        )
    if args.ledger_dir is not None and args.command not in ("top", "report"):
        configure(ledger_dir=args.ledger_dir)
    if args.kernel_backend is not None:
        from repro.errors import ConfigurationError

        try:
            configure(kernel_backend=args.kernel_backend)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if args.command in ("run", "resume", "serve") and getattr(
        args, "serve_command", None
    ) not in ("merge-shards", "shutdown"):
        from repro.obs.settings import default_ledger

        ledger = default_ledger()
        if ledger is not None:
            ledger.record_event("command", "repro-nbody " + " ".join(full_argv))
    tracing = (
        args.trace
        or args.trace_out is not None
        or args.metrics_out is not None
        or args.prometheus_out is not None
        or args.command == "profile"
    )
    if tracing:
        obs.enable(reset=True)
    try:
        _HANDLERS[args.command](parser, args)
        if tracing:
            _write_trace_outputs(args)
    finally:
        if tracing:
            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    python -m repro fig5
    python -m repro table2 --quick --trace
    python -m repro all --workload uniform
    repro-nbody table1 --steps 100
    repro-nbody profile table2 --quick --trace-out t.json --metrics-out m.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro import exec as rexec
from repro import obs
from repro._version import __version__
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP, WORKLOADS

__all__ = ["main", "build_parser"]

#: Experiments that accept sweep-style options (``--quick``).
_SWEEP_EXPERIMENTS = {"fig4", "fig5", "table1", "table2", "table3"}

#: Experiments that accept ``--steps`` (the paper's timed tables).
_STEPS_EXPERIMENTS = {"table1", "table2", "table3"}

#: Experiments that accept a ``workload`` keyword.
_WORKLOAD_EXPERIMENTS = _SWEEP_EXPERIMENTS | {
    "abl-tile",
    "abl-theta",
    "abl-queue",
    "abl-overlap",
    "abl-quad",
    "ext-multigpu",
}

#: Default trace path for ``--trace`` without an explicit ``--trace-out``.
DEFAULT_TRACE_PATH = "trace.json"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-nbody",
        description=(
            "Reproduce the evaluation of 'Parallel Time-Space Processing "
            "Model Based Fast N-body Simulation on GPUs'"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report", "profile"],
        help="experiment id (table/figure of the paper), 'all', "
        "'report' (write every experiment to a markdown file), or "
        "'profile <experiment>' (run one experiment with tracing on)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment to profile (only with the 'profile' command)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output path for the 'report' command (default: repro_report.md)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"use the short N sweep {QUICK_N_SWEEP} instead of {PAPER_N_SWEEP}",
    )
    parser.add_argument(
        "--workload",
        default=None,
        choices=sorted(WORKLOADS),
        help="initial-condition generator (default: plummer)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="steps per run for the timed tables (default: 100, as in the paper)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="CPU workers for functional force passes (default: 1, or the "
        "REPRO_WORKERS environment variable); results are bit-identical "
        "to serial for any worker count",
    )
    parser.add_argument(
        "--exec-backend",
        default=None,
        choices=sorted(rexec.BACKENDS),
        help="parallel map backend for --workers (default: thread)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a repro.obs trace of the run and write it to "
        f"{DEFAULT_TRACE_PATH} (Chrome trace-event JSON; open in Perfetto)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the Chrome trace JSON to PATH (implies --trace)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics snapshot JSON to PATH (implies --trace)",
    )
    return parser


def _validate_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> list[str]:
    """Reject or warn on flags that do not apply to the chosen experiment.

    Returns the list of experiment ids that will actually run.  Hard errors
    (``parser.error``, exit code 2) for flags that would otherwise be
    silently dropped; warnings on stderr for soft mismatches.
    """
    if args.experiment == "profile":
        if args.target is None:
            parser.error("'profile' requires a target experiment, e.g. "
                         "'repro-nbody profile table2'")
        if args.target not in EXPERIMENTS:
            parser.error(
                f"unknown profile target '{args.target}'; "
                f"choose from {sorted(EXPERIMENTS)}"
            )
        exp_ids = [args.target]
    elif args.target is not None:
        parser.error(
            f"unexpected argument '{args.target}' "
            f"(a target is only valid with the 'profile' command)"
        )
    elif args.experiment == "report":
        exp_ids = []
    elif args.experiment == "all":
        exp_ids = sorted(EXPERIMENTS)
    else:
        exp_ids = [args.experiment]

    if args.output is not None and args.experiment != "report":
        parser.error(
            f"--output only applies to the 'report' command, "
            f"not '{args.experiment}'"
        )
    if args.steps is not None and args.experiment != "report":
        if not any(e in _STEPS_EXPERIMENTS for e in exp_ids):
            parser.error(
                f"--steps does not apply to '{exp_ids[0] if exp_ids else args.experiment}' "
                f"(only to {sorted(_STEPS_EXPERIMENTS)})"
            )
    if args.quick and args.experiment not in ("all", "report"):
        if not any(e in _SWEEP_EXPERIMENTS for e in exp_ids):
            print(
                f"warning: --quick has no effect on '{exp_ids[0]}'",
                file=sys.stderr,
            )
    if args.workload is not None and args.experiment not in ("all", "report"):
        if not any(e in _WORKLOAD_EXPERIMENTS for e in exp_ids):
            print(
                f"warning: --workload has no effect on '{exp_ids[0]}'",
                file=sys.stderr,
            )
    return exp_ids


def _experiment_kwargs(exp_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    workload = args.workload or "plummer"
    if exp_id in _WORKLOAD_EXPERIMENTS:
        kwargs["workload"] = workload
    if exp_id in _SWEEP_EXPERIMENTS and args.quick:
        kwargs["n_values"] = QUICK_N_SWEEP
    if args.steps is not None and exp_id in _STEPS_EXPERIMENTS:
        kwargs["n_steps"] = args.steps
    return kwargs


def _write_trace_outputs(args: argparse.Namespace) -> None:
    trace_path = args.trace_out or DEFAULT_TRACE_PATH
    out = obs.export.write_chrome_trace(trace_path, obs.tracer(), obs.metrics())
    print(f"trace written to {out} ({len(obs.tracer())} spans)")
    if args.metrics_out:
        mout = obs.export.write_metrics_json(args.metrics_out, obs.metrics())
        print(f"metrics written to {mout}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    exp_ids = _validate_args(parser, args)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.workers is not None or args.exec_backend is not None:
        rexec.configure(
            workers=args.workers or 1, backend=args.exec_backend
        )
    tracing = (
        args.trace
        or args.trace_out is not None
        or args.metrics_out is not None
        or args.experiment == "profile"
    )
    if tracing:
        obs.enable(reset=True)
    try:
        if args.experiment == "report":
            from repro.bench.report import DEFAULT_REPORT_PATH, generate_report

            out = generate_report(
                args.output or DEFAULT_REPORT_PATH,
                quick=args.quick,
                workload=args.workload or "plummer",
            )
            print(f"report written to {out}")
        else:
            t0 = time.perf_counter()
            for exp_id in exp_ids:
                result = run_experiment(exp_id, **_experiment_kwargs(exp_id, args))
                print(result.render())
                print()
            if args.experiment == "profile":
                wall = time.perf_counter() - t0
                print(obs.export.summary_markdown(obs.tracer(), obs.metrics()))
                print()
                print(f"profiled '{exp_ids[0]}' in {wall:.2f} s wall-clock")
        if tracing:
            _write_trace_outputs(args)
    finally:
        if tracing:
            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

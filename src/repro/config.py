"""Unified configuration entry point for the repro library.

One call configures everything the CLI flags configure — execution
parallelism, fault tolerance, and observability::

    import repro

    repro.configure(workers=4, exec_backend="process", max_retries=3,
                    trace=True)

Exec-related keywords rebuild the process-global default
:class:`~repro.exec.ExecutionEngine` (what plans constructed without an
explicit ``engine=`` dispatch through); ``trace`` switches
:mod:`repro.obs` on or off.  Keywords left as ``None`` leave that
subsystem untouched, so ``repro.configure(trace=True)`` does not clobber
a previously configured engine.

This subsumes the older per-module entry points (``repro.exec.configure``
is now a deprecation shim delegating here).
"""

from __future__ import annotations

from repro import obs
from repro.exec.engine import (
    ExecConfig,
    ExecutionEngine,
    get_default_engine,
    set_default_engine,
)
from repro.exec.faults import FaultInjector, RetryPolicy

__all__ = ["configure"]


def configure(
    *,
    workers: int | None = None,
    exec_backend: str | None = None,
    chunk_size: int | None = None,
    max_retries: int | None = None,
    retry_backoff_s: float | None = None,
    deadline_s: float | None = None,
    fault_injector: FaultInjector | None = None,
    trace: bool | None = None,
    max_concurrent_jobs: int | None = None,
    queue_capacity: int | None = None,
    cache_dir: str | None = None,
    serve_addr: str | None = None,
    serve_token: str | None = None,
    tenant: str | None = None,
    gateway_addr: str | None = None,
    verify: "bool | object | None" = None,
    ledger_dir: str | None = None,
    kernel_backend: str | None = None,
) -> ExecutionEngine:
    """Configure the library's global execution and observability state.

    Parameters
    ----------
    workers:
        CPU workers for the default execution engine (1 = serial).
    exec_backend:
        ``"serial"`` / ``"thread"`` / ``"process"``; defaults to
        ``"thread"`` when ``workers > 1``.
    chunk_size:
        Tasks per process-pool submission.
    max_retries, retry_backoff_s, deadline_s:
        Per-task retry policy for the default engine (see
        :class:`~repro.exec.RetryPolicy`).
    fault_injector:
        Deterministic fault source (tests/CI only).
    trace:
        ``True`` enables :mod:`repro.obs` (clearing prior data),
        ``False`` disables it, ``None`` leaves it unchanged.
    max_concurrent_jobs, queue_capacity, cache_dir, serve_addr:
        Defaults for :mod:`repro.serve` services created afterwards.
        ``serve_addr`` is the coordinator address
        :func:`repro.serve.connect` dials when called with no argument
        (``"host:port"``; unset = in-process).  Precedence (first hit
        wins): explicit ``connect()`` / ``JobService`` / ``Client``
        keywords, then these values, then the
        ``REPRO_SERVE_MAX_CONCURRENT_JOBS`` /
        ``REPRO_SERVE_QUEUE_CAPACITY`` / ``REPRO_SERVE_CACHE_DIR`` /
        ``REPRO_SERVE_ADDR`` environment variables, then the built-in
        defaults.
    serve_token:
        Shared secret for the serve wire protocol and the HTTP gateway:
        a coordinator or :class:`~repro.serve.Gateway` constructed with
        a token requires it from every client
        (``connect(addr, token=)`` / ``Authorization: Bearer``).  Env
        fallback ``REPRO_SERVE_TOKEN``.
    tenant:
        Default tenant label stamped on submissions that don't name one
        (fair scheduling and quotas are per tenant; see
        :class:`~repro.serve.TenantPolicy`).  Env fallback
        ``REPRO_TENANT``.
    gateway_addr:
        Default listen address for :class:`~repro.serve.Gateway` /
        ``repro-nbody serve gateway``.  Env fallback
        ``REPRO_GATEWAY_ADDR``.
    verify:
        Default invariant guarding for :class:`~repro.runtime.RunSession`
        objects (and hence served jobs) created afterwards: ``True``
        attaches a :class:`~repro.check.RunGuard` with the plan-default
        :class:`~repro.check.TolerancePolicy`, a policy instance pins
        explicit tolerances, ``False`` disables guarding even when
        ``REPRO_CHECK_ENABLED`` is set, and ``None`` leaves the current
        setting untouched.  Sessions constructed with an explicit
        ``guard=`` argument always win.
    ledger_dir:
        Directory the durable :class:`~repro.obs.ledger.RunLedger` is
        written to; sessions and serve services created afterwards
        append their run accounting there.  Precedence (first hit wins):
        explicit ``ledger=`` arguments, then this value, then the
        ``REPRO_LEDGER_DIR`` environment variable, then off.  ``None``
        leaves the current setting untouched.
    kernel_backend:
        Force-kernel backend for subsequent force passes (the
        ``--kernel-backend`` CLI flag calls this).  Precedence (first hit
        wins): explicit ``backend=`` arguments /
        ``PlanConfig.kernel_backend``, then this value, then the
        ``REPRO_KERNEL_BACKEND`` environment variable, then ``"numpy"``.
        Must be a *registered* name (:func:`repro.nbody.kernels.known_backends`);
        an unavailable one degrades to ``numpy`` at resolve time with a
        one-time warning.  ``None`` leaves the current setting untouched.

    Returns the default :class:`~repro.exec.ExecutionEngine` after any
    reconfiguration, so the call is a drop-in replacement for the old
    ``repro.exec.configure``.
    """
    exec_kwargs = (
        workers,
        exec_backend,
        chunk_size,
        max_retries,
        retry_backoff_s,
        deadline_s,
        fault_injector,
    )
    if any(v is not None for v in exec_kwargs):
        n_workers = 1 if workers is None else workers
        backend = exec_backend or ("thread" if n_workers > 1 else "serial")
        retry = None
        if any(v is not None for v in (max_retries, retry_backoff_s, deadline_s)):
            retry = RetryPolicy(
                max_retries=0 if max_retries is None else max_retries,
                backoff_s=0.0 if retry_backoff_s is None else retry_backoff_s,
                deadline_s=deadline_s,
            )
        set_default_engine(
            ExecutionEngine(
                ExecConfig(
                    backend=backend, workers=n_workers, chunk_size=chunk_size
                ),
                retry=retry,
                fault_injector=fault_injector,
            )
        )
    if any(
        v is not None
        for v in (
            max_concurrent_jobs, queue_capacity, cache_dir, serve_addr,
            serve_token, tenant, gateway_addr,
        )
    ):
        from repro.serve.settings import set_overrides

        set_overrides(
            max_concurrent_jobs=max_concurrent_jobs,
            queue_capacity=queue_capacity,
            cache_dir=cache_dir,
            addr=serve_addr,
            token=serve_token,
            tenant=tenant,
            gateway_addr=gateway_addr,
        )
    if verify is not None:
        from repro.check.settings import set_verify_override

        set_verify_override(verify)
    if ledger_dir is not None:
        from repro.obs.settings import set_ledger_override

        set_ledger_override(ledger_dir)
    if kernel_backend is not None:
        from repro.nbody.kernels import get_backend
        from repro.nbody.kernels.settings import set_kernel_backend_override

        get_backend(kernel_backend)  # unknown name -> ConfigurationError now
        set_kernel_backend_override(kernel_backend)
    if trace is not None:
        if trace:
            obs.enable(reset=True)
        else:
            obs.disable()
    return get_default_engine()

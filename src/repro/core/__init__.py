"""The paper's contribution: PTPM model, plans, pipeline, scheduler, driver."""

from repro.core.hostmodel import PENTIUM_E5300, HostCpuModel
from repro.core.pipeline import (
    PipelineResult,
    overlapped_pipeline,
    serial_pipeline,
    split_batches,
)
from repro.core.scheduler import POLICIES, ScheduleOutcome, schedule_walks
from repro.core.ptpm import (
    PLAN_NAMES,
    Mapping,
    PlanDescriptor,
    comparison_table,
    describe,
)
from repro.core.plans import (
    IParallelPlan,
    JParallelPlan,
    JwParallelPlan,
    MultiDeviceJwPlan,
    Plan,
    PlanConfig,
    RunTiming,
    StepBreakdown,
    TreePlanBase,
    WParallelPlan,
    available_plans,
    get_plan,
    plan_by_name,
    resolve_plan,
)
from repro.core.simulation import Simulation, SimulationRecord

__all__ = [
    "PENTIUM_E5300",
    "HostCpuModel",
    "PipelineResult",
    "overlapped_pipeline",
    "serial_pipeline",
    "split_batches",
    "POLICIES",
    "ScheduleOutcome",
    "schedule_walks",
    "PLAN_NAMES",
    "Mapping",
    "PlanDescriptor",
    "comparison_table",
    "describe",
    "IParallelPlan",
    "JParallelPlan",
    "JwParallelPlan",
    "MultiDeviceJwPlan",
    "Plan",
    "PlanConfig",
    "RunTiming",
    "StepBreakdown",
    "TreePlanBase",
    "WParallelPlan",
    "available_plans",
    "get_plan",
    "plan_by_name",
    "resolve_plan",
    "Simulation",
    "SimulationRecord",
]

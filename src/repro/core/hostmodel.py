"""Host CPU cost model — the paper's Intel Pentium 2.60 GHz testbed.

The paper's host does four things whose time matters to Tables 1-3:

1. the **CPU baseline force computation** (Table 1's CPU column) — a
   scalar O(N^2) / treecode inner loop;
2. **tree construction** each step (w/jw plans);
3. **walk (interaction-list) generation** each step (w/jw plans) — the
   work the jw plan overlaps with GPU execution;
4. **integration** (drift/kick updates).

Rates are calibrated to a ~2008-era dual-core desktop CPU running an
optimised scalar C implementation; see ``repro.perfmodel.calibration`` for
the derivation and knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nbody.flops import DEFAULT_FLOPS_PER_INTERACTION

__all__ = ["HostCpuModel", "PENTIUM_E5300"]


@dataclass(frozen=True)
class HostCpuModel:
    """Throughput model of the host CPU.

    Parameters
    ----------
    effective_force_flops:
        Sustained flops of the scalar body-body inner loop (divide + sqrt
        heavy, non-vectorised: a fraction of clock x 1 flop/cycle).
    tree_ns_per_body:
        Tree construction cost per body (Morton keys + sort + node build,
        amortised).
    walk_ns_per_list_item:
        Walk generation cost per emitted interaction-list entry (the MAC
        tests and list appends of the group traversal).
    walk_ns_per_walk:
        Fixed per-walk overhead (group setup, bounding box).
    integrate_ns_per_body:
        Leapfrog update cost per body per step.
    """

    name: str = "Intel Pentium Dual-Core 2.60 GHz"
    clock_hz: float = 2.6e9
    effective_force_flops: float = 0.45e9
    tree_ns_per_body: float = 50.0
    walk_ns_per_list_item: float = 3.0
    walk_ns_per_walk: float = 1500.0
    integrate_ns_per_body: float = 30.0

    def __post_init__(self) -> None:
        for field_name in (
            "clock_hz",
            "effective_force_flops",
            "tree_ns_per_body",
            "walk_ns_per_list_item",
            "walk_ns_per_walk",
            "integrate_ns_per_body",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # ------------------------------------------------------------------
    def force_seconds(
        self,
        n_interactions: int,
        flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
    ) -> float:
        """CPU time to evaluate ``n_interactions`` body-source interactions."""
        if n_interactions < 0:
            raise ValueError(f"n_interactions must be >= 0, got {n_interactions}")
        return n_interactions * flops_per_interaction / self.effective_force_flops

    def tree_build_seconds(self, n_bodies: int) -> float:
        """CPU time to build the octree over ``n_bodies``."""
        if n_bodies < 0:
            raise ValueError(f"n_bodies must be >= 0, got {n_bodies}")
        return n_bodies * self.tree_ns_per_body * 1e-9

    def walk_generation_seconds(self, n_walks: int, total_list_items: int) -> float:
        """CPU time to generate ``n_walks`` walks with the given total list size."""
        if n_walks < 0 or total_list_items < 0:
            raise ValueError("walk counts must be >= 0")
        return (
            n_walks * self.walk_ns_per_walk + total_list_items * self.walk_ns_per_list_item
        ) * 1e-9

    def integration_seconds(self, n_bodies: int) -> float:
        """CPU time for one leapfrog update of ``n_bodies``."""
        if n_bodies < 0:
            raise ValueError(f"n_bodies must be >= 0, got {n_bodies}")
        return n_bodies * self.integrate_ns_per_body * 1e-9

    @property
    def effective_gflops(self) -> float:
        """Sustained force-loop rate in GFLOPS (for speedup reporting)."""
        return self.effective_force_flops / 1e9


#: The paper's host CPU.
PENTIUM_E5300 = HostCpuModel()

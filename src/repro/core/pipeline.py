"""Host/device pipelining — the *time* axis of the PTPM model.

The jw plan's headline mechanism (section 4.3): while the GPU evaluates
the interaction lists of walk batch ``i``, the CPU generates the lists of
batch ``i+1``.  This module models that as a classic two-stage pipeline:

    host_done[0]   = host[0]
    host_done[i]   = host_done[i-1] + host[i]
    device_done[0] = host_done[0] + device[0]
    device_done[i] = max(host_done[i], device_done[i-1]) + device[i]

The total is ``device_done[-1]``; with many batches it approaches
``startup + max(sum(host), sum(device))`` — the overlap ideal — while the
serial (w-parallel) composition is ``sum(host) + sum(device)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs

__all__ = [
    "PipelineResult",
    "overlapped_pipeline",
    "overlapped_pipeline3",
    "serial_pipeline",
    "split_batches",
]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of composing host and device stage times."""

    total_seconds: float
    host_seconds: float
    device_seconds: float
    overlapped: bool

    @property
    def hidden_seconds(self) -> float:
        """Host+device time hidden by overlap (0 for a serial composition)."""
        return self.host_seconds + self.device_seconds - self.total_seconds

    @property
    def overlap_efficiency(self) -> float:
        """1.0 when the shorter stage is fully hidden, 0.0 when serial."""
        shorter = min(self.host_seconds, self.device_seconds)
        if shorter == 0.0:
            return 1.0
        return self.hidden_seconds / shorter


def overlapped_pipeline(
    host_batches: Sequence[float], device_batches: Sequence[float]
) -> PipelineResult:
    """Two-stage pipeline total for per-batch host and device times.

    ``host_batches[i]`` must be ready before ``device_batches[i]`` can run;
    stages within themselves are serial (one CPU, one GPU queue).
    """
    if len(host_batches) != len(device_batches):
        raise ValueError(
            f"batch count mismatch: {len(host_batches)} host vs "
            f"{len(device_batches)} device"
        )
    if not host_batches:
        return PipelineResult(0.0, 0.0, 0.0, overlapped=True)
    if any(h < 0 for h in host_batches) or any(d < 0 for d in device_batches):
        raise ValueError("batch times must be non-negative")
    host_done = 0.0
    device_done = 0.0
    trace = obs.enabled
    base = obs.sim_now() if trace else 0.0
    for k, (h, d) in enumerate(zip(host_batches, device_batches)):
        host_done += h
        dev_start = max(host_done, device_done)
        device_done = dev_start + d
        if trace:
            obs.sim_span(
                f"host[{k}]", base + host_done - h, base + host_done, track="pipe.host"
            )
            obs.sim_span(
                f"device[{k}]", base + dev_start, base + device_done, track="pipe.device"
            )
    return PipelineResult(
        total_seconds=device_done,
        host_seconds=float(sum(host_batches)),
        device_seconds=float(sum(device_batches)),
        overlapped=True,
    )


def overlapped_pipeline3(
    cpu_batches: Sequence[float],
    pcie_batches: Sequence[float],
    gpu_batches: Sequence[float],
) -> PipelineResult:
    """Three-stage pipeline: CPU walk generation -> PCIe upload -> GPU kernel.

    Models the jw plan's fully-asynchronous feed: batch ``i`` must be
    generated, then uploaded, then executed; each resource (CPU, PCIe DMA,
    GPU) is serial within itself.  With many batches the total approaches
    ``startup + max(sum(cpu), sum(pcie), sum(gpu))``.

    The returned ``host_seconds`` aggregates the two feed stages
    (CPU + PCIe) for reporting; ``device_seconds`` is the GPU stage.
    """
    if not (len(cpu_batches) == len(pcie_batches) == len(gpu_batches)):
        raise ValueError("all three stages need the same batch count")
    if not cpu_batches:
        return PipelineResult(0.0, 0.0, 0.0, overlapped=True)
    for seq in (cpu_batches, pcie_batches, gpu_batches):
        if any(t < 0 for t in seq):
            raise ValueError("batch times must be non-negative")
    cpu_done = 0.0
    pcie_done = 0.0
    gpu_done = 0.0
    trace = obs.enabled
    base = obs.sim_now() if trace else 0.0
    for k, (c, x, g) in enumerate(zip(cpu_batches, pcie_batches, gpu_batches)):
        cpu_done += c
        pcie_start = max(cpu_done, pcie_done)
        pcie_done = pcie_start + x
        gpu_start = max(pcie_done, gpu_done)
        gpu_done = gpu_start + g
        if trace:
            obs.sim_span(
                f"cpu[{k}]", base + cpu_done - c, base + cpu_done, track="pipe.cpu"
            )
            obs.sim_span(
                f"pcie[{k}]", base + pcie_start, base + pcie_done, track="pipe.pcie"
            )
            obs.sim_span(
                f"gpu[{k}]", base + gpu_start, base + gpu_done, track="pipe.gpu"
            )
    return PipelineResult(
        total_seconds=gpu_done,
        host_seconds=float(sum(cpu_batches) + sum(pcie_batches)),
        device_seconds=float(sum(gpu_batches)),
        overlapped=True,
    )


def serial_pipeline(
    host_seconds: float, device_seconds: float
) -> PipelineResult:
    """No overlap: the w-parallel composition (host fully precedes device)."""
    if host_seconds < 0 or device_seconds < 0:
        raise ValueError("stage times must be non-negative")
    return PipelineResult(
        total_seconds=host_seconds + device_seconds,
        host_seconds=host_seconds,
        device_seconds=device_seconds,
        overlapped=False,
    )


def split_batches(total: float, n_batches: int) -> list[float]:
    """Split a stage time into ``n_batches`` equal batch times."""
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    return [total / n_batches] * n_batches

"""The four PTPM plans: i-parallel, j-parallel, w-parallel, jw-parallel.

Plans are addressed by short name through the registry
(:mod:`repro.core.plans.registry`, re-exported at :mod:`repro.plans`):
the CLI, the benchmarks, checkpoint manifests and the job service all
resolve ``"i" / "j" / "w" / "jw"`` via :func:`get_plan` instead of
importing plan classes directly.
"""

from repro.core.plans.base import Plan, PlanConfig, RunTiming, StepBreakdown
from repro.core.plans.registry import (
    available_plans,
    get_plan,
    register,
    resolve_plan,
    unregister,
)
from repro.core.plans.i_parallel import IParallelPlan
from repro.core.plans.j_parallel import JParallelPlan
from repro.core.plans.tree_base import TreePlanBase
from repro.core.plans.w_parallel import WParallelPlan
from repro.core.plans.jw_parallel import DEFAULT_PIPELINE_BATCHES, JwParallelPlan
from repro.core.plans.multi_jw import MultiDeviceJwPlan
from repro.core.plans.blockstep import (
    BlockDirectPlan,
    BlockTimestepPlan,
    BlockTreePlan,
)

__all__ = [
    "Plan",
    "PlanConfig",
    "RunTiming",
    "StepBreakdown",
    "IParallelPlan",
    "JParallelPlan",
    "TreePlanBase",
    "WParallelPlan",
    "JwParallelPlan",
    "MultiDeviceJwPlan",
    "BlockTimestepPlan",
    "BlockDirectPlan",
    "BlockTreePlan",
    "DEFAULT_PIPELINE_BATCHES",
    "available_plans",
    "get_plan",
    "plan_by_name",
    "register",
    "resolve_plan",
    "unregister",
]


def plan_by_name(name: str, config: PlanConfig | None = None, *, engine=None) -> Plan:
    """Instantiate a plan from its short name ("i", "j", "w", "jw").

    Kept as a documented alias of :func:`get_plan` (the registry entry
    point, which additionally accepts config fields as keywords).
    """
    return get_plan(name, config, engine=engine)

"""The four PTPM plans: i-parallel, j-parallel, w-parallel, jw-parallel."""

from repro.core.plans.base import Plan, PlanConfig, RunTiming, StepBreakdown
from repro.core.plans.i_parallel import IParallelPlan
from repro.core.plans.j_parallel import JParallelPlan
from repro.core.plans.tree_base import TreePlanBase
from repro.core.plans.w_parallel import WParallelPlan
from repro.core.plans.jw_parallel import DEFAULT_PIPELINE_BATCHES, JwParallelPlan
from repro.core.plans.multi_jw import MultiDeviceJwPlan

__all__ = [
    "Plan",
    "PlanConfig",
    "RunTiming",
    "StepBreakdown",
    "IParallelPlan",
    "JParallelPlan",
    "TreePlanBase",
    "WParallelPlan",
    "JwParallelPlan",
    "MultiDeviceJwPlan",
    "DEFAULT_PIPELINE_BATCHES",
]


def plan_by_name(name: str, config: PlanConfig | None = None, *, engine=None) -> Plan:
    """Instantiate a plan from its short name ("i", "j", "w", "jw").

    ``engine`` (a :class:`repro.exec.ExecutionEngine`) controls how the
    functional force path fans out; ``None`` uses the process default.
    """
    classes = {
        "i": IParallelPlan,
        "j": JParallelPlan,
        "w": WParallelPlan,
        "jw": JwParallelPlan,
    }
    try:
        cls = classes[name]
    except KeyError:
        raise ValueError(f"unknown plan '{name}'; choose from {sorted(classes)}") from None
    return cls(config, engine=engine)

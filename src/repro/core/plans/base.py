"""Plan interface: configuration, per-step timing breakdown, base class.

A *plan* is one point in the PTPM design space — a complete recipe for
evaluating one force pass on the device: how i-bodies, j-bodies and walks
map to work-groups and threads (space), and how host work is sequenced
against device work (time).  Every plan provides

* :meth:`Plan.accelerations` — *functional* execution: real float32
  arithmetic through the simulated kernels, validated against the CPU
  references in the tests; and
* :meth:`Plan.step_breakdown` — *timing* execution: the simulated cost of
  one force step (kernel + host + transfer), derived from the same work
  enumeration, without performing the O(N^2)/O(N L) arithmetic — this is
  what the benchmark sweeps use at large N.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.exec.engine import ExecutionEngine, get_default_engine
from repro.gpu.device import RADEON_HD_5850, DeviceSpec
from repro.gpu.timing import KernelTiming
from repro.core.hostmodel import PENTIUM_E5300, HostCpuModel
from repro.nbody.flops import DEFAULT_FLOPS_PER_INTERACTION
from repro.nbody.forces import DEFAULT_SOFTENING

__all__ = ["PlanConfig", "StepBreakdown", "RunTiming", "Plan"]


@dataclass(frozen=True)
class PlanConfig:
    """Shared configuration of all plans.

    ``wg_size`` is the paper's ``p`` (threads per block / tile edge);
    ``theta`` and ``leaf_size`` only affect tree-based plans.
    ``kernel_backend`` pins the force-kernel backend for this plan
    (``None`` follows the process-wide selection — see
    :mod:`repro.nbody.kernels`); it must be a *registered* name, while
    availability is resolved per force pass so configs stay portable
    across hosts.  ``n_rungs`` and ``step_eta`` only affect block-timestep
    plans (``None`` means their defaults: 4 rungs, eta 0.025).
    """

    device: DeviceSpec = RADEON_HD_5850
    host: HostCpuModel = PENTIUM_E5300
    wg_size: int = 256
    softening: float = DEFAULT_SOFTENING
    G: float = 1.0
    theta: float = 0.6
    leaf_size: int = 32
    kernel_backend: str | None = None
    n_rungs: int | None = None
    step_eta: float | None = None

    def __post_init__(self) -> None:
        self.device.validate_workgroup(self.wg_size)
        if self.softening < 0.0:
            raise ConfigurationError(f"softening must be >= 0, got {self.softening}")
        if self.theta <= 0.0:
            raise ConfigurationError(f"theta must be positive, got {self.theta}")
        if self.leaf_size < 1:
            raise ConfigurationError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.n_rungs is not None and not (1 <= self.n_rungs <= 16):
            raise ConfigurationError(f"n_rungs must be in [1, 16], got {self.n_rungs}")
        if self.step_eta is not None and self.step_eta <= 0.0:
            raise ConfigurationError(f"step_eta must be positive, got {self.step_eta}")
        if self.kernel_backend is not None:
            from repro.nbody.kernels import get_backend

            get_backend(self.kernel_backend)  # unknown name -> ConfigurationError


@dataclass
class StepBreakdown:
    """Cost of one force step under a plan.

    ``host_seconds`` is the *overlappable* host work (tree build + walk
    generation); ``serial_seconds`` is host work that cannot overlap the
    kernel (integration update); ``transfer_seconds`` is PCIe traffic.
    ``overlapped`` states whether the plan hides host work behind the
    kernel (jw) or serialises it (w); ``total_seconds`` composes
    accordingly.  When ``overlapped``, ``pipeline_total`` (from the batch
    pipeline model) is used instead of the naive max().
    """

    plan: str
    n_bodies: int
    kernel_seconds: float
    host_seconds: float
    transfer_seconds: float
    serial_seconds: float
    overlapped: bool
    interactions: int
    issued_interactions: int
    kernels: list[KernelTiming] = field(default_factory=list)
    pipeline_total: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end time of one force step (the paper's "total time")."""
        if self.overlapped:
            core = (
                self.pipeline_total
                if self.pipeline_total is not None
                else max(self.host_seconds, self.kernel_seconds)
            )
        else:
            core = self.host_seconds + self.kernel_seconds
        return core + self.transfer_seconds + self.serial_seconds

    @property
    def running_seconds(self) -> float:
        """Device kernel time only (the paper's "running time", Table 3)."""
        return self.kernel_seconds

    def kernel_gflops(
        self, flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION
    ) -> float:
        """Sustained GFLOPS of the device kernels (Fig. 4/5's y-axis)."""
        if self.kernel_seconds <= 0.0:
            return 0.0
        return self.interactions * flops_per_interaction / self.kernel_seconds / 1e9

    def effective_gflops(
        self, flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION
    ) -> float:
        """GFLOPS over the *total* step time (includes host + transfers)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.interactions * flops_per_interaction / self.total_seconds / 1e9


@dataclass(frozen=True)
class RunTiming:
    """Timing of a multi-step run (the paper's 100-step convention)."""

    plan: str
    n_bodies: int
    n_steps: int
    step: StepBreakdown

    @property
    def total_seconds(self) -> float:
        """Total wall time for the run."""
        return self.n_steps * self.step.total_seconds

    @property
    def running_seconds(self) -> float:
        """Device kernel time for the run."""
        return self.n_steps * self.step.running_seconds

    @property
    def interactions(self) -> int:
        """Body-source interactions over the whole run."""
        return self.n_steps * self.step.interactions


class Plan(ABC):
    """Base class for the four PTPM plans."""

    #: short identifier used in tables ("i", "j", "w", "jw")
    name: str = "?"
    #: "pp" (all-pairs) or "bh" (treecode)
    method: str = "?"

    def __init__(
        self,
        config: PlanConfig | None = None,
        *,
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.config = config or PlanConfig()
        #: execution engine for the functional force path; ``None`` falls
        #: back to :func:`repro.exec.get_default_engine` at call time.
        self.engine = engine

    def _engine(self) -> ExecutionEngine:
        """The engine the functional path dispatches work through."""
        return self.engine if self.engine is not None else get_default_engine()

    def _kernel_backend(self) -> str:
        """The resolved kernel-backend *name* for this force pass.

        Resolved in the parent process (so unavailable selections warn and
        fall back here, once) and passed to engine workers as a picklable
        string.
        """
        from repro.nbody.kernels import resolve_backend

        return resolve_backend(self.config.kernel_backend).name

    # -- functional ----------------------------------------------------
    @abstractmethod
    def accelerations(self, positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
        """Compute accelerations through the simulated device kernels.

        Returns float64 ``(n, 3)`` in the caller's body order (arithmetic
        performed in float32, matching the device).
        """

    # -- timing ----------------------------------------------------------
    @abstractmethod
    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        """Simulated cost of one force step (no force arithmetic)."""

    def compute_step(
        self, positions: np.ndarray, masses: np.ndarray
    ) -> tuple[np.ndarray, StepBreakdown]:
        """One force step: accelerations plus its timing breakdown.

        Subclasses with expensive shared preparation (tree plans) override
        this to prepare once.
        """
        return self.accelerations(positions, masses), self.step_breakdown(
            positions, masses
        )

    # -- conveniences ----------------------------------------------------
    def accel_fn(self, masses: np.ndarray):
        """An ``accel(positions)`` closure for :func:`repro.nbody.integrate`."""
        def accel(positions: np.ndarray) -> np.ndarray:
            return self.accelerations(positions, masses)
        return accel

    def run_timing(
        self, positions: np.ndarray, masses: np.ndarray, n_steps: int = 100
    ) -> RunTiming:
        """Timing for an ``n_steps`` run, using the current snapshot's cost.

        The paper times 100 steps; per-step cost drifts only marginally as
        the distribution evolves, so one snapshot's breakdown is scaled.
        """
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        step = self.step_breakdown(positions, masses)
        return RunTiming(plan=self.name, n_bodies=step.n_bodies, n_steps=n_steps, step=step)

    def _validate_bodies(
        self, positions: np.ndarray, masses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = np.asarray(positions, dtype=np.float64)
        masses = np.asarray(masses, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ConfigurationError(f"positions must be (n, 3), got {positions.shape}")
        if masses.shape != (positions.shape[0],):
            raise ConfigurationError(
                f"masses must be ({positions.shape[0]},), got {masses.shape}"
            )
        if positions.shape[0] < 1:
            raise ConfigurationError("at least one body required")
        return positions, masses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(wg_size={self.config.wg_size}, device={self.config.device.name!r})"

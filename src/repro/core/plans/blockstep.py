"""Block-timestep plan variants: only active rungs pay force cost.

Hierarchical power-of-two block timesteps (GOTHIC / Aarseth style) wrap an
existing force plan: :class:`~repro.nbody.timestep.BlockTimestepSchedule`
assigns every body a rung stepping at ``dt_max / 2**r``, and each substep
only the bodies whose step *closes* at its boundary — the active set —
receive a fresh force evaluation.  The wrapped plan evaluates the masked
pass:

* ``block-i`` compacts the active bodies into target rows of the same
  tiled rectangle primitive the i-parallel plan uses (targets = active,
  sources = all); per-row accumulation over source tiles depends only on
  the source set and the tile width, so active rows are **bit-identical**
  to the corresponding rows of a full evaluation.
* ``block-jw`` reuses the jw-parallel walk machinery and evaluates only
  the walks containing at least one active body, with the *full*
  evaluation's split counts, so evaluated walks are bit-identical to
  their rows in a full pass.

A full (unmasked) pass — used at sync points and by the generic
:meth:`Plan.accelerations` contract — delegates to the wrapped plan
unchanged.  :class:`repro.core.simulation.Simulation` detects the
``blockstep`` class attribute and drives the rung-resolved KDK loop of
:func:`repro.nbody.integrators.block_substep`.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro import obs
from repro.core.plans.base import Plan, PlanConfig, StepBreakdown
from repro.core.plans.i_parallel import IParallelPlan  # noqa: F401 (inner)
from repro.core.plans.jw_parallel import JwParallelPlan, _jw_walk_task
from repro.core.plans.registry import get_plan, register
from repro.errors import ConfigurationError
from repro.exec.workspace import local_workspace
from repro.gpu.counters import CostCounters
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import (
    packed_tile_loop_work,
    reduction_work,
    tile_loop_forces,
    tile_loop_work,
)
from repro.gpu.launch import KernelLaunch
from repro.gpu.memory import BYTES_PER_ACCEL, BYTES_PER_BODY, TransferLog
from repro.gpu.timing import time_kernel
from repro.nbody.timestep import BlockTimestepSchedule

__all__ = [
    "BlockTimestepPlan",
    "BlockDirectPlan",
    "BlockTreePlan",
    "DEFAULT_N_RUNGS",
    "DEFAULT_STEP_ETA",
]

#: Rung count when ``PlanConfig.n_rungs`` is ``None``.
DEFAULT_N_RUNGS = 4
#: Timestep-criterion accuracy parameter when ``PlanConfig.step_eta`` is ``None``.
DEFAULT_STEP_ETA = 0.025


def _active_workgroup_task(
    rng: tuple[int, int],
    *,
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    wg_size: int,
    softening: float,
    G: float,
    device: DeviceSpec,
    backend: str | None = None,
) -> tuple[np.ndarray, CostCounters]:
    """One work-group of compacted active targets against all sources."""
    i0, i1 = rng
    counters = CostCounters()
    block = tile_loop_forces(
        targets[i0:i1],
        src_pos,
        src_mass,
        wg_size=wg_size,
        softening=softening,
        G=G,
        device=device,
        counters=counters,
        workspace=local_workspace(),
        backend=backend,
    )
    return block, counters


class BlockTimestepPlan(Plan):
    """Base for block-timestep wrappers around a registered force plan.

    Subclasses set ``inner_name`` (the wrapped plan) and implement
    :meth:`_active_step` — the masked force pass.  The ``blockstep``
    class attribute is the discovery hook used by the simulation, the
    invariant policies and the checkpoint layer.
    """

    #: marks this plan as rung-driven for Simulation / policy_for / session
    blockstep = True
    #: registered name of the wrapped full-pass plan
    inner_name: str = "?"

    def __init__(
        self,
        config: PlanConfig | None = None,
        *,
        engine=None,
        **inner_kwargs,
    ) -> None:
        super().__init__(config, engine=engine)
        if self.config.softening <= 0.0:
            raise ConfigurationError(
                "block timesteps use the softened-gravity criterion; "
                f"softening must be positive, got {self.config.softening}"
            )
        self._inner = get_plan(
            self.inner_name, self.config, engine=engine, **inner_kwargs
        )

    @property
    def inner(self) -> Plan:
        """The wrapped plan, kept on this plan's execution engine."""
        self._inner.engine = self.engine
        return self._inner

    # -- schedule ----------------------------------------------------------
    def make_schedule(self, dt_max: float) -> BlockTimestepSchedule:
        """The rung schedule for a run whose coarsest step is ``dt_max``."""
        cfg = self.config
        return BlockTimestepSchedule(
            dt_max=dt_max,
            n_rungs=cfg.n_rungs if cfg.n_rungs is not None else DEFAULT_N_RUNGS,
            eta=cfg.step_eta if cfg.step_eta is not None else DEFAULT_STEP_ETA,
            softening=cfg.softening,
        )

    # -- full pass: delegate -----------------------------------------------
    def accelerations(self, positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
        return self.inner.accelerations(positions, masses)

    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        bd = self.inner.step_breakdown(positions, masses)
        bd.plan = self.name
        return bd

    def compute_step(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        active: np.ndarray | None = None,
    ) -> tuple[np.ndarray, StepBreakdown]:
        """One force pass; ``active`` restricts targets to those body rows.

        ``active=None`` is a full pass (identical to the wrapped plan);
        an index array evaluates forces **on** the active bodies from
        *all* bodies and returns ``(len(active), 3)`` rows bit-identical
        to the corresponding rows of the full pass.  An empty selection
        costs nothing and returns ``((0, 3) zeros, None)`` — no kernel is
        launched, so there is no breakdown to account.
        """
        if active is None:
            acc, bd = self.inner.compute_step(positions, masses)
            bd.plan = self.name
            return acc, bd
        active = np.asarray(active, dtype=np.int64)
        positions, masses = self._validate_bodies(positions, masses)
        if active.size == 0:
            return np.zeros((0, 3), dtype=np.float64), None
        if active.size and (active.min() < 0 or active.max() >= positions.shape[0]):
            raise ConfigurationError("active indices out of range")
        return self._active_step(positions, masses, active)

    def _active_step(
        self, positions: np.ndarray, masses: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, StepBreakdown]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _active_transfers(self, n: int, n_active: int) -> TransferLog:
        """Per-substep traffic: all bodies move (drift), active rows return."""
        log = TransferLog()
        log.host_to_device(n * BYTES_PER_BODY)
        log.device_to_host(n_active * BYTES_PER_ACCEL)
        return log


@register()
class BlockDirectPlan(BlockTimestepPlan):
    """All-pairs block timesteps: compacted active targets x all sources."""

    name = "block-i"
    method = "pp"
    inner_name = "i"

    def _active_step(
        self, positions: np.ndarray, masses: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, StepBreakdown]:
        cfg = self.config
        n = positions.shape[0]
        targets = positions[active]
        nt = targets.shape[0]
        p = cfg.wg_size
        ranges = [(i0, min(i0 + p, nt)) for i0 in range(0, nt, p)]
        wgs = [
            tile_loop_work(
                f"active[{i0}:{i1}]",
                active_threads=i1 - i0,
                n_sources=n,
                wg_size=p,
                wavefront_size=cfg.device.wavefront_size,
            )
            for i0, i1 in ranges
        ]
        launch = KernelLaunch("block_i_forces", p, wgs)
        acc = np.empty((nt, 3), dtype=np.float32)
        counters = CostCounters()
        task = partial(
            _active_workgroup_task,
            targets=targets,
            src_pos=positions,
            src_mass=masses,
            wg_size=p,
            softening=cfg.softening,
            G=cfg.G,
            device=cfg.device,
            backend=self._kernel_backend(),
        )
        with obs.span("force_kernel", plan=self.name, n=n, n_active=nt):
            results = self._engine().map(task, ranges, label="block-i.workgroup")
        for (i0, i1), (block, c) in zip(ranges, results):
            acc[i0:i1] = block
            counters.add(c)
        assert counters.interactions == launch.total_interactions, (
            "functional/timing drift"
        )
        timing = time_kernel(cfg.device, launch)
        bd = StepBreakdown(
            plan=self.name,
            n_bodies=n,
            kernel_seconds=timing.seconds,
            host_seconds=0.0,
            transfer_seconds=self._active_transfers(n, nt).total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(n),
            overlapped=False,
            interactions=launch.total_interactions,
            issued_interactions=launch.total_issued_interactions,
            kernels=[timing],
            meta={"active_bodies": nt, "n_workgroups": launch.n_workgroups},
        )
        return acc.astype(np.float64), bd


@register()
class BlockTreePlan(BlockTimestepPlan):
    """Barnes-Hut block timesteps: evaluate only walks with active bodies.

    The tree is rebuilt every substep (all bodies drift), but only the
    walks containing at least one active body are evaluated — with the
    full pass's split counts, so evaluated rows stay bit-identical to a
    full jw evaluation of the same snapshot.
    """

    name = "block-jw"
    method = "bh"
    inner_name = "jw"

    def _active_step(
        self, positions: np.ndarray, masses: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, StepBreakdown]:
        cfg = self.config
        inner: JwParallelPlan = self.inner
        walks = inner.prepare(positions, masses)
        tree = walks.tree
        n = tree.n_bodies
        # Map the active (original-order) indices into Morton order.
        inv = np.empty(n, dtype=np.int64)
        inv[tree.order] = np.arange(n, dtype=np.int64)
        sorted_active = np.zeros(n, dtype=bool)
        sorted_active[inv[active]] = True
        splits = inner.split_counts(walks)
        selected = [
            w.index for w in walks if bool(sorted_active[w.start : w.end].any())
        ]
        counters = CostCounters()
        acc_sorted = np.zeros((n, 3), dtype=np.float32)
        task = partial(
            _jw_walk_task, walks=walks, config=cfg, backend=self._kernel_backend(),
        )
        items = [(i, splits[i]) for i in selected]
        with obs.span(
            "force_kernel", plan=self.name, n_walks=len(selected), n_active=active.size
        ):
            results = self._engine().map(task, items, label="block-jw.walk")
        for i, (block, c) in zip(selected, results):
            w = walks[i]
            acc_sorted[w.start : w.end] = block
            counters.add(c)
        acc_full = tree.unsort(acc_sorted.astype(np.float64))

        # Timing: the same packed launches jw would build, restricted to
        # the selected walks (split counts from the full pass).
        wgs = []
        needs_reduce = False
        for i in selected:
            w = walks[i]
            s = splits[i]
            for k, (a, b) in enumerate(JwParallelPlan._segments(w.list_length, s)):
                wgs.append(
                    packed_tile_loop_work(
                        f"walk{w.index}.seg{k}",
                        n_targets=w.n_bodies,
                        n_sources=b - a,
                        wg_size=cfg.wg_size,
                        wavefront_size=cfg.device.wavefront_size,
                    )
                )
            if s > 1:
                needs_reduce = True
        force = KernelLaunch("block_jw_forces", cfg.wg_size, wgs)
        assert counters.interactions == force.total_interactions, (
            "functional/timing drift"
        )
        timings = [time_kernel(cfg.device, force, schedule=inner.schedule)]
        if needs_reduce:
            rwgs = [
                reduction_work(
                    f"reduce.walk{walks[i].index}",
                    n_outputs=walks[i].n_bodies,
                    n_partials_per_output=splits[i],
                    wg_size=cfg.wg_size,
                    wavefront_size=cfg.device.wavefront_size,
                )
                for i in selected
                if splits[i] > 1
            ]
            timings.append(time_kernel(cfg.device, KernelLaunch(
                "block_jw_reduce", cfg.wg_size, rwgs)))
        kernel_seconds = sum(t.seconds for t in timings)
        tree_s, walk_s = inner._host_seconds(walks)
        # Masked passes do not overlap: the full walk generation cannot
        # hide behind a reduced kernel, so the conservative serial
        # composition is the honest model here.
        xfer = self._active_transfers(n, int(active.size))
        list_bytes = sum(
            int(walks[i].cell_list.size) * BYTES_PER_BODY
            + int(walks[i].particle_list.size) * 4
            for i in selected
        )
        xfer.host_to_device(list_bytes)
        bd = StepBreakdown(
            plan=self.name,
            n_bodies=n,
            kernel_seconds=kernel_seconds,
            host_seconds=tree_s + walk_s,
            transfer_seconds=xfer.total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(n),
            overlapped=False,
            interactions=force.total_interactions,
            issued_interactions=force.total_issued_interactions,
            kernels=timings,
            meta={
                "active_bodies": int(active.size),
                "n_walks": len(walks),
                "n_walks_active": len(selected),
                "theta": walks.theta,
            },
        )
        return acc_full[active], bd

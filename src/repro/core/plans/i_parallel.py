"""i-parallel plan: Nyland et al.'s GPU Gems 3 all-pairs kernel.

Space mapping (Fig. 3 of the paper): one thread per target body i, one
work-group of ``p`` threads per ``p`` consecutive targets; every work-group
serially walks all N source bodies in ``p``-wide tiles staged through
local memory.  The grid therefore has ``ceil(N/p)`` work-groups — at small
N far fewer than the device's compute units, which is exactly the
occupancy starvation the paper's Fig. 4/5 analysis attributes to this
plan.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro import obs
from repro.core.plans.base import Plan, StepBreakdown
from repro.core.plans.registry import register
from repro.gpu.counters import CostCounters
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import tile_loop_forces, tile_loop_work
from repro.gpu.launch import KernelLaunch
from repro.gpu.memory import BYTES_PER_ACCEL, BYTES_PER_BODY, TransferLog
from repro.gpu.timing import time_kernel

__all__ = ["IParallelPlan"]


def _workgroup_task(
    rng: tuple[int, int],
    *,
    positions: np.ndarray,
    masses: np.ndarray,
    wg_size: int,
    softening: float,
    G: float,
    device: DeviceSpec,
    backend: str | None = None,
) -> tuple[np.ndarray, CostCounters]:
    """Evaluate one work-group's target range (runs on an engine worker)."""
    i0, i1 = rng
    counters = CostCounters()
    block = tile_loop_forces(
        positions[i0:i1],
        positions,
        masses,
        wg_size=wg_size,
        softening=softening,
        G=G,
        device=device,
        counters=counters,
        backend=backend,
    )
    return block, counters


@register()
class IParallelPlan(Plan):
    """All-pairs, thread-per-target-body (GPU Gems 3)."""

    name = "i"
    method = "pp"

    # -- work enumeration (shared by functional and timing paths) --------
    def _workgroup_ranges(self, n: int) -> list[tuple[int, int]]:
        p = self.config.wg_size
        return [(i0, min(i0 + p, n)) for i0 in range(0, n, p)]

    def _launch(self, n: int) -> KernelLaunch:
        p = self.config.wg_size
        dev = self.config.device
        wgs = [
            tile_loop_work(
                f"i[{i0}:{i1}]",
                active_threads=i1 - i0,
                n_sources=n,
                wg_size=p,
                wavefront_size=dev.wavefront_size,
            )
            for i0, i1 in self._workgroup_ranges(n)
        ]
        return KernelLaunch("i_parallel_forces", p, wgs)

    def _transfers(self, n: int) -> TransferLog:
        log = TransferLog()
        log.host_to_device(n * BYTES_PER_BODY)  # positions+masses up
        log.device_to_host(n * BYTES_PER_ACCEL)  # accelerations down
        return log

    # -- functional -------------------------------------------------------
    def accelerations(self, positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
        positions, masses = self._validate_bodies(positions, masses)
        n = positions.shape[0]
        cfg = self.config
        acc = np.empty((n, 3), dtype=np.float32)
        counters = CostCounters()
        task = partial(
            _workgroup_task,
            positions=positions,
            masses=masses,
            wg_size=cfg.wg_size,
            softening=cfg.softening,
            G=cfg.G,
            device=cfg.device,
            backend=self._kernel_backend(),
        )
        ranges = self._workgroup_ranges(n)
        with obs.span("force_kernel", plan=self.name, n=n):
            results = self._engine().map(task, ranges, label="i.workgroup")
        for (i0, i1), (block, c) in zip(ranges, results):
            acc[i0:i1] = block
            counters.add(c)
        expected = self._launch(n).total_interactions
        assert counters.interactions == expected, "functional/timing drift"
        return acc.astype(np.float64)

    # -- timing -------------------------------------------------------------
    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        positions, masses = self._validate_bodies(positions, masses)
        n = positions.shape[0]
        cfg = self.config
        with obs.span("plan.breakdown", plan=self.name, n=n):
            launch = self._launch(n)
            timing = time_kernel(cfg.device, launch)
        return StepBreakdown(
            plan=self.name,
            n_bodies=n,
            kernel_seconds=timing.seconds,
            host_seconds=0.0,
            transfer_seconds=self._transfers(n).total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(n),
            overlapped=False,
            interactions=launch.total_interactions,
            issued_interactions=launch.total_issued_interactions,
            kernels=[timing],
            meta={
                "n_workgroups": launch.n_workgroups,
                "tiles_per_workgroup": math.ceil(n / cfg.wg_size),
                "occupancy_efficiency": timing.occupancy.latency_efficiency,
            },
        )

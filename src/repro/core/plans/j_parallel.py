"""j-parallel plan: Hamada & Iitaka's "chamomile scheme".

Space mapping: the source (j) dimension is split into ``s`` segments, so
the grid has ``ceil(N/p) * s`` work-groups — enough to occupy every
compute unit even when N is small.  Each work-group accumulates *partial*
forces for its ``p`` targets over its source segment; a second,
memory-bound kernel reduces the ``s`` partials per target.

The split factor is chosen adaptively: just enough work-groups to fill
the machine with latency-hiding concurrency, never more (each extra split
adds partial-force traffic and reduction work).
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro import obs
from repro.core.plans.base import Plan, StepBreakdown
from repro.core.plans.registry import register
from repro.gpu.counters import CostCounters
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import reduction_work, tile_loop_forces, tile_loop_work
from repro.gpu.launch import KernelLaunch
from repro.gpu.memory import BYTES_PER_ACCEL, BYTES_PER_BODY, TransferLog
from repro.gpu.occupancy import MAX_WORKGROUPS_PER_CU
from repro.gpu.timing import time_kernel

__all__ = ["JParallelPlan"]

#: Work-groups per compute unit the split targets (fills the resident slots).
_TARGET_WGS_PER_CU = 4


def _iblock_task(
    rng: tuple[int, int],
    *,
    positions: np.ndarray,
    masses: np.ndarray,
    segments: list[tuple[int, int]],
    wg_size: int,
    softening: float,
    G: float,
    device: DeviceSpec,
    backend: str | None = None,
) -> tuple[np.ndarray, CostCounters]:
    """One i-block: partial forces per j-segment, then the fixed-order
    float32 segment reduction (runs on an engine worker).

    Summing over the segment axis per i-block is elementwise identical to
    the whole-array reduction the serial path used to perform, so the
    parallel decomposition cannot change a single bit of the result.
    """
    i0, i1 = rng
    counters = CostCounters()
    partials = np.zeros((len(segments), i1 - i0, 3), dtype=np.float32)
    for k, (j0, j1) in enumerate(segments):
        tile_loop_forces(
            positions[i0:i1],
            positions[j0:j1],
            masses[j0:j1],
            wg_size=wg_size,
            softening=softening,
            G=G,
            device=device,
            counters=counters,
            out=partials[k],
            backend=backend,
        )
    return partials.sum(axis=0, dtype=np.float32), counters


@register()
class JParallelPlan(Plan):
    """All-pairs with source-dimension splitting (chamomile scheme)."""

    name = "j"
    method = "pp"

    def split_factor(self, n: int) -> int:
        """Number of j-segments for an N-body launch.

        Grows the grid to ``_TARGET_WGS_PER_CU`` work-groups per CU when
        the plain i-parallel grid would underfill the device; capped so a
        segment never gets smaller than one tile.
        """
        p = self.config.wg_size
        dev = self.config.device
        i_blocks = math.ceil(n / p)
        target = dev.compute_units * min(_TARGET_WGS_PER_CU, MAX_WORKGROUPS_PER_CU)
        s = max(1, math.ceil(target / i_blocks))
        max_s = max(1, math.ceil(n / p))  # at least one tile per segment
        return min(s, max_s)

    # -- work enumeration -------------------------------------------------
    def _segments(self, n: int, s: int) -> list[tuple[int, int]]:
        seg = math.ceil(n / s)
        return [(j0, min(j0 + seg, n)) for j0 in range(0, n, seg)]

    def _force_launch(self, n: int) -> tuple[KernelLaunch, int]:
        p = self.config.wg_size
        dev = self.config.device
        s = self.split_factor(n)
        wgs = []
        for i0 in range(0, n, p):
            i1 = min(i0 + p, n)
            for j0, j1 in self._segments(n, s):
                wgs.append(
                    tile_loop_work(
                        f"i[{i0}:{i1}]xj[{j0}:{j1}]",
                        active_threads=i1 - i0,
                        n_sources=j1 - j0,
                        wg_size=p,
                        wavefront_size=dev.wavefront_size,
                    )
                )
        return KernelLaunch("j_parallel_forces", p, wgs), s

    def _reduction_launch(self, n: int, s: int) -> KernelLaunch | None:
        if s <= 1:
            return None
        p = self.config.wg_size
        dev = self.config.device
        wgs = [
            reduction_work(
                f"reduce[{i0}:{min(i0 + p, n)}]",
                n_outputs=min(i0 + p, n) - i0,
                n_partials_per_output=s,
                wg_size=p,
                wavefront_size=dev.wavefront_size,
            )
            for i0 in range(0, n, p)
        ]
        return KernelLaunch("j_parallel_reduce", p, wgs)

    def _transfers(self, n: int) -> TransferLog:
        log = TransferLog()
        log.host_to_device(n * BYTES_PER_BODY)
        log.device_to_host(n * BYTES_PER_ACCEL)
        return log

    # -- functional -------------------------------------------------------
    def accelerations(self, positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
        positions, masses = self._validate_bodies(positions, masses)
        n = positions.shape[0]
        cfg = self.config
        s = self.split_factor(n)
        p = cfg.wg_size
        counters = CostCounters()
        # partial forces per (i-block, j-segment), then a float32 reduction,
        # matching the two-kernel structure; i-blocks fan out across the
        # engine, each folding its own segments in fixed order
        ranges = [(i0, min(i0 + p, n)) for i0 in range(0, n, p)]
        task = partial(
            _iblock_task,
            positions=positions,
            masses=masses,
            segments=self._segments(n, s),
            wg_size=p,
            softening=cfg.softening,
            G=cfg.G,
            device=cfg.device,
            backend=self._kernel_backend(),
        )
        with obs.span("force_kernel", plan=self.name, n=n, split_factor=s):
            results = self._engine().map(task, ranges, label="j.iblock")
        acc = np.empty((n, 3), dtype=np.float32)
        for (i0, i1), (block, c) in zip(ranges, results):
            acc[i0:i1] = block
            counters.add(c)
        launch, _ = self._force_launch(n)
        assert counters.interactions == launch.total_interactions, "functional/timing drift"
        return acc.astype(np.float64)

    # -- timing -------------------------------------------------------------
    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        positions, masses = self._validate_bodies(positions, masses)
        n = positions.shape[0]
        cfg = self.config
        with obs.span("plan.breakdown", plan=self.name, n=n):
            force_launch, s = self._force_launch(n)
            timings = [time_kernel(cfg.device, force_launch)]
            reduce_launch = self._reduction_launch(n, s)
            if reduce_launch is not None:
                timings.append(time_kernel(cfg.device, reduce_launch))
        kernel_seconds = sum(t.seconds for t in timings)
        return StepBreakdown(
            plan=self.name,
            n_bodies=n,
            kernel_seconds=kernel_seconds,
            host_seconds=0.0,
            transfer_seconds=self._transfers(n).total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(n),
            overlapped=False,
            interactions=force_launch.total_interactions,
            issued_interactions=force_launch.total_issued_interactions,
            kernels=timings,
            meta={
                "split_factor": s,
                "n_workgroups": force_launch.n_workgroups,
                "occupancy_efficiency": timings[0].occupancy.latency_efficiency,
            },
        )

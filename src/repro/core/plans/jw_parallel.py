"""jw-parallel plan — the paper's contribution (section 4.3).

Combines the j- and w-parallel ideas under the PTPM analysis:

* **Space — walks**: the same tree-cell walks as w-parallel (identical
  interaction lists), so every gain below is attributable to the mapping,
  the queue and the overlap rather than to different physics work.
* **Space — j-split**: each walk's interaction list is additionally split
  into segments assigned to *different* work-groups (the j-parallel idea),
  so even a handful of walks yields enough blocks to occupy every compute
  unit at small N; partial forces are combined by a reduction pass.
  Within a work-group the ``group x segment`` rectangle is flattened
  across all ``p`` threads, keeping lanes full regardless of group size —
  repairing w-parallel's lane-utilisation loss.
* **Scheduling**: persistent work-groups drain (walk, segment) items from
  a dynamic queue (greedy earliest-free-CU scheduling).
* **Time**: walk generation on the CPU is pipelined with kernel execution
  on the GPU, hiding the host cost that dominates w-parallel's total time.
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro import obs
from repro.core.plans.base import PlanConfig, StepBreakdown
from repro.core.plans.tree_base import TreePlanBase
from repro.core.plans.registry import register
from repro.exec.workspace import local_workspace
from repro.core.pipeline import overlapped_pipeline3, split_batches
from repro.gpu.counters import CostCounters
from repro.gpu.kernel import packed_tile_loop_work, reduction_work, tile_loop_forces
from repro.gpu.launch import KernelLaunch
from repro.gpu.timing import time_kernel
from repro.gpu.trace import trace_launch
from repro.tree.bh_force import walk_sources
from repro.tree.octree import Octree
from repro.tree.walks import WalkSet, cell_groups

__all__ = ["JwParallelPlan", "DEFAULT_PIPELINE_BATCHES"]

#: Walk batches the host streams to the device queue per step.
DEFAULT_PIPELINE_BATCHES = 16

#: Queue items per compute unit the j-split targets.
_TARGET_ITEMS_PER_CU = 4


def _jw_walk_task(
    item: tuple[int, int],
    *,
    walks: WalkSet,
    config: PlanConfig,
    backend: str | None = None,
) -> tuple[np.ndarray, CostCounters]:
    """One walk's packed segments, reduced in fixed segment order
    (runs on an engine worker)."""
    index, s = item
    tree = walks.tree
    w = walks[index]
    ws = local_workspace()
    counters = CostCounters()
    src_pos, src_mass = walk_sources(tree, w, workspace=ws)
    targets = tree.positions[w.start : w.end]
    acc = np.zeros((w.n_bodies, 3), dtype=np.float32)
    for a, b in JwParallelPlan._segments(w.list_length, s):
        tile_loop_forces(
            targets,
            src_pos[a:b],
            src_mass[a:b],
            wg_size=config.wg_size,
            softening=config.softening,
            G=config.G,
            device=config.device,
            counters=counters,
            out=acc,
            accumulate=True,
            workspace=ws,
            backend=backend,
        )
    return acc, counters


@register()
class JwParallelPlan(TreePlanBase):
    """Barnes-Hut with packed walks, j-split work items, dynamic queue, overlap."""

    name = "jw"

    def __init__(
        self,
        config=None,
        *,
        pipeline_batches: int = DEFAULT_PIPELINE_BATCHES,
        overlap: bool = True,
        schedule: str = "hardware",
        engine=None,
    ) -> None:
        super().__init__(config, engine=engine)
        if pipeline_batches < 1:
            raise ValueError(f"pipeline_batches must be >= 1, got {pipeline_batches}")
        self.pipeline_batches = pipeline_batches
        self.overlap = overlap
        self.schedule = schedule

    def _make_groups(self, tree: Octree) -> np.ndarray:
        # Same tree-cell walks as w-parallel: the jw plan's gains come from
        # the thread mapping, the dynamic queue and host/device overlap —
        # not from different interaction lists.
        return cell_groups(tree, self.config.wg_size)

    # -- j-split policy ----------------------------------------------------
    def split_counts(self, walks: WalkSet) -> list[int]:
        """Segments per walk: work-proportional splitting.

        The queue should hold at least ``_TARGET_ITEMS_PER_CU`` items per
        compute unit *and* no single item should exceed a fair share of
        the total work (otherwise one heavy walk sets the makespan — the
        tail effect that hurts w-parallel).  Each walk is therefore split
        in proportion to its interaction count, bounded below by one
        wavefront of sources per segment.
        """
        dev = self.config.device
        target = dev.compute_units * _TARGET_ITEMS_PER_CU
        total = walks.total_interactions
        if total == 0:
            return [1] * len(walks)
        fair_share = max(1.0, total / target)
        counts = []
        for w in walks:
            s = max(1, math.ceil(w.interactions / fair_share))
            s_max = max(1, w.list_length // dev.wavefront_size)
            counts.append(min(s, s_max))
        return counts

    @staticmethod
    def _segments(length: int, s: int) -> list[tuple[int, int]]:
        seg = math.ceil(length / s) if length else 0
        if seg == 0:
            return [(0, 0)]
        return [(a, min(a + seg, length)) for a in range(0, length, seg)]

    # -- launches ------------------------------------------------------------
    def _launches(self, walks: WalkSet) -> tuple[KernelLaunch, KernelLaunch | None]:
        cfg = self.config
        splits = self.split_counts(walks)
        wgs = []
        needs_reduce = False
        for w, s in zip(walks, splits):
            for k, (a, b) in enumerate(self._segments(w.list_length, s)):
                wgs.append(
                    packed_tile_loop_work(
                        f"walk{w.index}.seg{k}",
                        n_targets=w.n_bodies,
                        n_sources=b - a,
                        wg_size=cfg.wg_size,
                        wavefront_size=cfg.device.wavefront_size,
                    )
                )
            if s > 1:
                needs_reduce = True
        force = KernelLaunch("jw_parallel_forces", cfg.wg_size, wgs)
        reduce_launch = None
        if needs_reduce:
            rwgs = [
                reduction_work(
                    f"reduce.walk{w.index}",
                    n_outputs=w.n_bodies,
                    n_partials_per_output=s,
                    wg_size=cfg.wg_size,
                    wavefront_size=cfg.device.wavefront_size,
                )
                for w, s in zip(walks, splits)
                if s > 1
            ]
            reduce_launch = KernelLaunch("jw_parallel_reduce", cfg.wg_size, rwgs)
        return force, reduce_launch

    # -- functional -------------------------------------------------------
    def accelerations_from_walks(self, walks: WalkSet) -> np.ndarray:
        cfg = self.config
        tree = walks.tree
        splits = self.split_counts(walks)
        counters = CostCounters()
        acc_sorted = np.empty((tree.n_bodies, 3), dtype=np.float32)
        # (walk, split) items fan out across the engine; inside a task the
        # j-segment partials accumulate in fixed segment order, so the
        # reduction is bit-identical to the serial evaluation.
        task = partial(
            _jw_walk_task, walks=walks, config=cfg,
            backend=self._kernel_backend(),
        )
        with obs.span("force_kernel", plan=self.name, n_walks=len(walks)):
            results = self._engine().map(
                task, list(zip(range(len(walks)), splits)), label="jw.walk"
            )
        for w, (block, c) in zip(walks, results):
            acc_sorted[w.start : w.end] = block
            counters.add(c)
        assert counters.interactions == walks.total_interactions, (
            "functional/timing drift"
        )
        return tree.unsort(acc_sorted.astype(np.float64))

    # -- timing -------------------------------------------------------------
    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        walks = self.prepare(positions, masses)
        return self.breakdown_from_walks(walks)

    def breakdown_from_walks(self, walks: WalkSet) -> StepBreakdown:
        """Timing of one force step given prepared walks."""
        cfg = self.config
        with obs.span("plan.breakdown", plan=self.name, n=walks.tree.n_bodies):
            force, reduce_launch = self._launches(walks)
            timings = [time_kernel(cfg.device, force, schedule=self.schedule)]
            if reduce_launch is not None:
                timings.append(time_kernel(cfg.device, reduce_launch))
        kernel_seconds = sum(t.seconds for t in timings)
        tree_s, walk_s = self._host_seconds(walks)
        list_xfer_s = self._list_transfers(walks).total_time(cfg.device)
        if obs.enabled:
            # Replay the (walk, segment) queue onto compute units so the
            # exported trace shows one lane per CU — the PTPM space axis.
            trace_launch(cfg.device, force, schedule=self.schedule).emit_obs(
                seconds_per_unit=cfg.device.seconds(1.0), kernel=force.name
            )
            obs.inc("queue_items_total", force.n_workgroups)

        if self.overlap:
            # Tree build precedes all walk generation; walk batches then
            # stream through PCIe into the device's work queue
            # (CPU -> DMA -> GPU, three overlapping resources).
            b = min(self.pipeline_batches, len(walks))
            cpu_batches = split_batches(walk_s, b)
            cpu_batches[0] += tree_s
            pcie_batches = split_batches(list_xfer_s, b)
            gpu_batches = split_batches(kernel_seconds, b)
            pipe = overlapped_pipeline3(cpu_batches, pcie_batches, gpu_batches)
            pipeline_total = pipe.total_seconds
        else:
            pipeline_total = tree_s + walk_s + list_xfer_s + kernel_seconds

        meta = self._walk_meta(walks)
        meta["lane_utilization"] = (
            force.total_interactions / force.total_issued_interactions
            if force.total_issued_interactions
            else 1.0
        )
        meta["pipeline_batches"] = self.pipeline_batches
        meta["schedule"] = self.schedule
        meta["n_queue_items"] = force.n_workgroups
        meta["mean_split"] = float(np.mean(self.split_counts(walks)))
        return StepBreakdown(
            plan=self.name,
            n_bodies=walks.tree.n_bodies,
            kernel_seconds=kernel_seconds,
            host_seconds=tree_s + walk_s,
            transfer_seconds=self._body_transfers(walks).total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(walks.tree.n_bodies),
            overlapped=self.overlap,
            interactions=force.total_interactions,
            issued_interactions=force.total_issued_interactions,
            kernels=timings,
            pipeline_total=pipeline_total,
            meta=meta,
        )

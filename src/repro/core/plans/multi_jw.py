"""Multi-device jw-parallel — the paper's natural extension, projected.

The jw plan's dynamic walk queue generalises directly to several GPUs:
one host generates walks, every device drains the same queue.  This plan
models ``n_devices`` identical GPUs sharing the queue:

* force work schedules over ``n_devices x compute_units`` workers;
* each device has its own memory system and PCIe link (aggregate
  bandwidth scales), while the **single host** walk generator does not —
  so scaling saturates when walk generation becomes the critical path,
  the ceiling :func:`repro.perfmodel.analytic.predict_multi_device_scaling`
  writes down analytically.

Functionally the forces are identical to single-device jw (the queue only
changes *where* walks execute), so :meth:`accelerations` is inherited.
"""

from __future__ import annotations

import dataclasses

from repro.core.plans.base import PlanConfig
from repro.core.plans.jw_parallel import JwParallelPlan
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec

__all__ = ["MultiDeviceJwPlan"]


def _aggregate_device(base: DeviceSpec, n_devices: int) -> DeviceSpec:
    """A virtual device equivalent to ``n_devices`` copies of ``base``.

    CU count, global bandwidth and PCIe bandwidth all scale (each physical
    device owns its memory and link); per-CU quantities are unchanged, so
    occupancy and work-group costs behave as on one physical device.
    """
    return dataclasses.replace(
        base,
        name=f"{base.name} x{n_devices}",
        compute_units=base.compute_units * n_devices,
        global_bandwidth_bytes_s=base.global_bandwidth_bytes_s * n_devices,
        pcie_bandwidth_bytes_s=base.pcie_bandwidth_bytes_s * n_devices,
    )


class MultiDeviceJwPlan(JwParallelPlan):
    """jw-parallel across ``n_devices`` GPUs sharing one walk queue."""

    name = "jw-multi"

    def __init__(self, config: PlanConfig | None = None, *, n_devices: int = 2,
                 **kwargs) -> None:
        if n_devices < 1:
            raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
        config = config or PlanConfig()
        self.n_devices = n_devices
        self.base_device = config.device
        timed = dataclasses.replace(
            config, device=_aggregate_device(config.device, n_devices)
        )
        super().__init__(timed, **kwargs)

    def breakdown_from_walks(self, walks):
        b = super().breakdown_from_walks(walks)
        b.plan = self.name
        b.meta["n_devices"] = self.n_devices
        return b

"""Plan registry: resolve PTPM plans by name everywhere.

The four paper plans used to be wired into the CLI, the benchmarks and
the run layer by direct class imports; adding a fifth plan meant touching
every call site.  The registry inverts that: plan classes register
themselves under their short name and every consumer — CLI choices,
benchmark sweeps, checkpoint manifests, job specs — resolves through

* :func:`register` — class decorator used by the plan modules (and by
  downstream extensions: registering a custom :class:`Plan` subclass
  makes it addressable from the CLI and the job service for free);
* :func:`get_plan` — instantiate by name, with either a full
  :class:`PlanConfig` or individual config fields as keywords
  (``get_plan("jw", wg_size=128)``); unknown keywords are forwarded to
  the plan constructor (``get_plan("jw", overlap=False)``);
* :func:`resolve_plan` — accept *a name or an instance* uniformly (what
  :class:`~repro.core.simulation.Simulation` and the serve layer use);
* :func:`available_plans` — the sorted registered names.

``repro.plans`` re-exports this module as the stable public import path.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, TypeVar

from repro.core.plans.base import Plan, PlanConfig
from repro.errors import ConfigurationError

__all__ = [
    "register",
    "unregister",
    "get_plan",
    "resolve_plan",
    "available_plans",
]

P = TypeVar("P", bound=type)

_REGISTRY: dict[str, type[Plan]] = {}

#: PlanConfig field names accepted as keywords by :func:`get_plan`.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(PlanConfig))


def register(name: str | None = None) -> Callable[[P], P]:
    """Class decorator registering a :class:`Plan` subclass by name.

    ``name`` defaults to the class's ``name`` attribute, which must match
    for checkpoint manifests and job-spec hashes to round-trip (a plan is
    persisted by ``plan.name`` and rebuilt through the registry).
    """

    def decorate(cls: P) -> P:
        if not (isinstance(cls, type) and issubclass(cls, Plan)):
            raise ConfigurationError(
                f"only Plan subclasses can be registered, got {cls!r}"
            )
        key = name if name is not None else cls.name
        if not key or key == "?":
            raise ConfigurationError(
                f"plan class {cls.__name__} has no usable name to register"
            )
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"plan name '{key}' is already registered to {existing.__name__}"
            )
        _REGISTRY[key] = cls
        return cls

    return decorate


def unregister(name: str) -> None:
    """Remove a registered plan (primarily for tests of custom plans)."""
    _REGISTRY.pop(name, None)


def available_plans() -> tuple[str, ...]:
    """Sorted names of every registered plan."""
    return tuple(sorted(_REGISTRY))


def get_plan(
    name: str,
    config: PlanConfig | None = None,
    *,
    engine=None,
    **kwargs,
) -> Plan:
    """Instantiate a registered plan by name.

    Keyword arguments naming :class:`PlanConfig` fields build the config
    (mutually exclusive with ``config=``); any other keywords are passed
    through to the plan constructor.  ``engine`` (a
    :class:`repro.exec.ExecutionEngine`) controls how the functional
    force path fans out; ``None`` uses the process default.
    """
    if isinstance(name, Plan):
        raise ConfigurationError(
            "get_plan() takes a plan name; use resolve_plan() to accept "
            "a name or an instance uniformly"
        )
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown plan '{name}'; choose from {list(available_plans())}"
        ) from None
    config_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in _CONFIG_FIELDS}
    if config_kwargs:
        if config is not None:
            raise ConfigurationError(
                "pass either config= or PlanConfig field keywords, not both"
            )
        config = PlanConfig(**config_kwargs)
    return cls(config, engine=engine, **kwargs)


def resolve_plan(
    plan: str | Plan,
    config: PlanConfig | None = None,
    *,
    engine=None,
    **kwargs,
) -> Plan:
    """Accept a plan *name or instance* uniformly; returns an instance.

    An instance passes through untouched — ``config``/keywords only apply
    when resolving by name (supplying them alongside an instance is an
    error rather than a silent no-op).
    """
    if isinstance(plan, Plan):
        if config is not None or kwargs:
            raise ConfigurationError(
                "plan configuration keywords only apply when the plan is "
                "given by name; configure the instance directly instead"
            )
        return plan
    if not isinstance(plan, str):
        raise ConfigurationError(
            f"plan must be a registered name or a Plan instance, got {plan!r}"
        )
    return get_plan(plan, config, engine=engine, **kwargs)

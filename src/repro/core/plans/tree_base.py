"""Shared machinery for the tree-based (w / jw) plans.

Both plans do the same host-side preparation — build the octree, generate
walks — and evaluate the same per-walk interaction lists on the device;
they differ in how walks are *grouped*, how threads map onto a walk's
interaction rectangle, and whether host work overlaps the kernel.  This
base class owns the shared parts so the two plans express only their
differences.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro import obs
from repro.core.plans.base import Plan, PlanConfig
from repro.exec.workspace import local_workspace
from repro.gpu.counters import CostCounters
from repro.gpu.kernel import tile_loop_forces
from repro.gpu.memory import BYTES_PER_ACCEL, BYTES_PER_BODY, TransferLog
from repro.tree.bh_force import walk_sources
from repro.tree.octree import Octree, build_octree
from repro.tree.walks import WalkSet, generate_walks

__all__ = ["TreePlanBase"]


def _tree_walk_task(
    index: int, *, walks: WalkSet, config: PlanConfig, backend: str | None = None
) -> tuple[np.ndarray, CostCounters]:
    """Device-kernel evaluation of one walk (runs on an engine worker)."""
    tree = walks.tree
    w = walks[index]
    ws = local_workspace()
    counters = CostCounters()
    src_pos, src_mass = walk_sources(tree, w, workspace=ws)
    block = tile_loop_forces(
        tree.positions[w.start : w.end],
        src_pos,
        src_mass,
        wg_size=config.wg_size,
        softening=config.softening,
        G=config.G,
        device=config.device,
        counters=counters,
        workspace=ws,
        backend=backend,
    )
    return block, counters


class TreePlanBase(Plan):
    """Common prepare / functional / transfer logic for tree plans."""

    method = "bh"

    # -- hooks the concrete plans override --------------------------------
    def _make_groups(self, tree: Octree) -> np.ndarray:
        """Return the ``(k, 2)`` body groups this plan forms walks from."""
        raise NotImplementedError

    # -- shared preparation -------------------------------------------------
    def prepare(self, positions: np.ndarray, masses: np.ndarray) -> WalkSet:
        """Host-side step: octree build + walk generation."""
        positions, masses = self._validate_bodies(positions, masses)
        with obs.span("tree_build", plan=self.name, n=positions.shape[0]):
            tree = build_octree(positions, masses, leaf_size=self.config.leaf_size)
        with obs.span("walk_gen", plan=self.name, theta=self.config.theta) as sp:
            walks = generate_walks(
                tree, theta=self.config.theta, groups=self._make_groups(tree)
            )
            sp.set(n_walks=len(walks))
        if obs.enabled:
            obs.inc("walks_total", len(walks))
        return walks

    # -- shared functional execution --------------------------------------
    def accelerations(self, positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
        walks = self.prepare(positions, masses)
        return self.accelerations_from_walks(walks)

    def accelerations_from_walks(self, walks: WalkSet) -> np.ndarray:
        """Device-kernel evaluation of prepared walks (float32 tiles).

        Walks fan out across the plan's execution engine; blocks are
        written back in fixed walk order, so every backend and worker
        count produces bit-identical accelerations.
        """
        cfg = self.config
        tree = walks.tree
        counters = CostCounters()
        acc_sorted = np.empty((tree.n_bodies, 3), dtype=np.float32)
        task = partial(
            _tree_walk_task, walks=walks, config=cfg,
            backend=self._kernel_backend(),
        )
        with obs.span("force_kernel", plan=self.name, n_walks=len(walks)):
            results = self._engine().map(task, range(len(walks)), label="w.walk")
        for w, (block, c) in zip(walks, results):
            acc_sorted[w.start : w.end] = block
            counters.add(c)
        assert counters.interactions == walks.total_interactions, (
            "functional/timing drift"
        )
        return tree.unsort(acc_sorted.astype(np.float64))

    def breakdown_from_walks(self, walks: WalkSet):
        """Timing of one force step given prepared walks (plan-specific)."""
        raise NotImplementedError

    def compute_step(self, positions: np.ndarray, masses: np.ndarray):
        """One force step sharing a single tree/walk preparation."""
        walks = self.prepare(positions, masses)
        return self.accelerations_from_walks(walks), self.breakdown_from_walks(walks)

    # -- shared cost pieces -------------------------------------------------
    def _host_seconds(self, walks: WalkSet) -> tuple[float, float]:
        """(tree build, walk generation) CPU seconds for this snapshot."""
        host = self.config.host
        tree_s = host.tree_build_seconds(walks.tree.n_bodies)
        walk_s = host.walk_generation_seconds(
            len(walks), int(walks.list_lengths().sum())
        )
        return tree_s, walk_s

    def _body_transfers(self, walks: WalkSet) -> TransferLog:
        """Per-step body upload + acceleration download."""
        n = walks.tree.n_bodies
        log = TransferLog()
        log.host_to_device(n * BYTES_PER_BODY)
        log.device_to_host(n * BYTES_PER_ACCEL)
        return log

    def _list_transfers(self, walks: WalkSet) -> TransferLog:
        """Interaction-list upload: cell monopoles ship as float4 bodies,
        particle-list entries as 4-byte indices into the body array."""
        cells = sum(int(w.cell_list.size) for w in walks)
        parts = sum(int(w.particle_list.size) for w in walks)
        log = TransferLog()
        log.host_to_device(cells * BYTES_PER_BODY + parts * 4)
        return log

    def _transfers(self, walks: WalkSet) -> TransferLog:
        """All PCIe traffic of one step (bodies, lists, accelerations)."""
        log = self._body_transfers(walks)
        other = self._list_transfers(walks)
        log.h2d_bytes += other.h2d_bytes
        log.n_transfers += other.n_transfers
        return log

    def _walk_meta(self, walks: WalkSet) -> dict:
        """Diagnostic statistics shared by both plans' breakdowns."""
        sizes = walks.group_sizes()
        lists = walks.list_lengths()
        return {
            "n_walks": len(walks),
            "mean_group_size": float(sizes.mean()),
            "mean_list_length": float(lists.mean()),
            "load_imbalance": walks.load_imbalance(),
            "theta": walks.theta,
        }

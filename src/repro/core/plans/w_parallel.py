"""w-parallel plan: Hamada et al.'s multiple-walk treecode.

Space mapping: one work-group per walk, one thread per walk body; walks
are the *tree's own cells* (maximal nodes with at most ``p`` bodies), so
group sizes follow the local density and rarely fill the work-group — the
~1/3 lane-utilisation loss the paper identifies.  Time mapping: the CPU
generates all walks first, then the GPU evaluates them — no overlap, so
Table 2's total time carries the full host cost.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.plans.base import StepBreakdown
from repro.core.plans.tree_base import TreePlanBase
from repro.core.plans.registry import register
from repro.core.pipeline import serial_pipeline
from repro.gpu.kernel import tile_loop_work
from repro.gpu.launch import KernelLaunch
from repro.gpu.timing import time_kernel
from repro.gpu.trace import trace_launch
from repro.tree.octree import Octree
from repro.tree.walks import WalkSet, cell_groups

__all__ = ["WParallelPlan"]


@register()
class WParallelPlan(TreePlanBase):
    """Barnes-Hut, one block per tree-cell walk (multiple-walk method)."""

    name = "w"

    def _make_groups(self, tree: Octree) -> np.ndarray:
        return cell_groups(tree, self.config.wg_size)

    def _launch(self, walks: WalkSet) -> KernelLaunch:
        cfg = self.config
        wgs = [
            tile_loop_work(
                f"walk{w.index}",
                active_threads=w.n_bodies,
                n_sources=w.list_length,
                wg_size=cfg.wg_size,
                wavefront_size=cfg.device.wavefront_size,
            )
            for w in walks
        ]
        return KernelLaunch("w_parallel_forces", cfg.wg_size, wgs)

    def step_breakdown(self, positions: np.ndarray, masses: np.ndarray) -> StepBreakdown:
        walks = self.prepare(positions, masses)
        return self.breakdown_from_walks(walks)

    def breakdown_from_walks(self, walks: WalkSet) -> StepBreakdown:
        """Timing of one force step given prepared walks."""
        cfg = self.config
        with obs.span("plan.breakdown", plan=self.name, n=walks.tree.n_bodies):
            launch = self._launch(walks)
            # Walks are statically pre-assigned to blocks (no work queue) — the
            # load-balancing gap the jw plan's dynamic queue closes.
            timing = time_kernel(cfg.device, launch, schedule="static")
        if obs.enabled:
            trace_launch(cfg.device, launch, schedule="static").emit_obs(
                seconds_per_unit=cfg.device.seconds(1.0), kernel=launch.name
            )
        tree_s, walk_s = self._host_seconds(walks)
        pipe = serial_pipeline(tree_s + walk_s, timing.seconds)
        meta = self._walk_meta(walks)
        meta["lane_utilization"] = (
            launch.total_interactions / launch.total_issued_interactions
            if launch.total_issued_interactions
            else 1.0
        )
        return StepBreakdown(
            plan=self.name,
            n_bodies=walks.tree.n_bodies,
            kernel_seconds=timing.seconds,
            host_seconds=tree_s + walk_s,
            transfer_seconds=self._transfers(walks).total_time(cfg.device),
            serial_seconds=cfg.host.integration_seconds(walks.tree.n_bodies),
            overlapped=False,
            interactions=launch.total_interactions,
            issued_interactions=launch.total_issued_interactions,
            kernels=[timing],
            pipeline_total=pipe.total_seconds,
            meta=meta,
        )

"""PTPM — the Parallel Time-Space Processing Model.

The paper's conceptual contribution: describe any GPU N-body
implementation by *where* each problem dimension is mapped (the space
axis) and *how host and device work are sequenced* (the time axis), then
read the performance failure modes straight off the description:

* i-bodies on threads with nothing else parallel  -> occupancy starvation
  at small N (i-parallel);
* the j-dimension split across blocks              -> full occupancy but
  reduction overhead (j-parallel);
* walks on blocks, bodies on threads               -> lane
  under-utilisation + serial host walk generation (w-parallel);
* walks on a dynamic queue, (i x j) on threads,
  host pipelined with device                       -> jw-parallel.

:class:`PlanDescriptor` encodes the mapping; :func:`describe` returns the
canonical descriptor of each of the four plans; the ``predicts_*``
properties express the qualitative analysis above, which the test suite
checks against the *measured* behaviour of the simulated plans — the
model is falsifiable, not decorative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Mapping", "PlanDescriptor", "describe", "PLAN_NAMES", "comparison_table"]

PLAN_NAMES = ("i", "j", "w", "jw")


class Mapping(enum.Enum):
    """Where a problem dimension is processed."""

    #: across work-groups (grid dimension)
    BLOCK = "block"
    #: across threads of a work-group
    THREAD = "thread"
    #: across both — flattened over all threads of a block
    BLOCK_THREAD = "block+thread"
    #: sequentially inside a thread (a loop)
    SEQUENTIAL = "sequential"
    #: on the host CPU
    HOST = "host"
    #: not applicable for this plan
    NONE = "none"


@dataclass(frozen=True)
class PlanDescriptor:
    """A point in the PTPM design space.

    Space axis: ``i_mapping`` (target bodies), ``j_mapping`` (source
    bodies / interaction-list entries), ``walk_mapping`` (tree walks).
    Time axis: ``walk_generation`` (where lists are built) and
    ``host_device_overlap`` (whether that host work is pipelined with the
    kernel).  ``dynamic_queue`` marks work-stealing walk dispatch.
    """

    name: str
    method: str  # "pp" or "bh"
    i_mapping: Mapping
    j_mapping: Mapping
    walk_mapping: Mapping
    walk_generation: Mapping
    host_device_overlap: bool
    dynamic_queue: bool

    # -- the model's qualitative predictions -----------------------------
    @property
    def predicts_occupancy_starvation_at_small_n(self) -> bool:
        """Too few blocks at small N? (only i-bodies generate blocks)."""
        return (
            self.i_mapping in (Mapping.BLOCK, Mapping.THREAD)
            and self.j_mapping == Mapping.SEQUENTIAL
            and self.walk_mapping == Mapping.NONE
        )

    @property
    def predicts_lane_underutilization(self) -> bool:
        """Idle lanes when walks don't fill the block? (thread = i-body only)."""
        return self.walk_mapping == Mapping.BLOCK and self.i_mapping == Mapping.THREAD

    @property
    def predicts_reduction_overhead(self) -> bool:
        """Partial forces needing a combine pass? (j split across blocks/threads)."""
        return self.j_mapping in (Mapping.BLOCK, Mapping.BLOCK_THREAD)

    @property
    def predicts_serial_host_bottleneck(self) -> bool:
        """Host walk generation on the critical path?"""
        return self.walk_generation == Mapping.HOST and not self.host_device_overlap

    def row(self) -> dict[str, str]:
        """One row of the PTPM comparison table."""
        return {
            "plan": self.name,
            "method": self.method,
            "i": self.i_mapping.value,
            "j": self.j_mapping.value,
            "walk": self.walk_mapping.value,
            "overlap": "yes" if self.host_device_overlap else "no",
            "queue": "dynamic" if self.dynamic_queue else "static",
        }


_DESCRIPTORS: dict[str, PlanDescriptor] = {
    "i": PlanDescriptor(
        name="i",
        method="pp",
        i_mapping=Mapping.THREAD,
        j_mapping=Mapping.SEQUENTIAL,
        walk_mapping=Mapping.NONE,
        walk_generation=Mapping.NONE,
        host_device_overlap=False,
        dynamic_queue=False,
    ),
    "j": PlanDescriptor(
        name="j",
        method="pp",
        i_mapping=Mapping.THREAD,
        j_mapping=Mapping.BLOCK,
        walk_mapping=Mapping.NONE,
        walk_generation=Mapping.NONE,
        host_device_overlap=False,
        dynamic_queue=False,
    ),
    "w": PlanDescriptor(
        name="w",
        method="bh",
        i_mapping=Mapping.THREAD,
        j_mapping=Mapping.SEQUENTIAL,
        walk_mapping=Mapping.BLOCK,
        walk_generation=Mapping.HOST,
        host_device_overlap=False,
        dynamic_queue=False,
    ),
    "jw": PlanDescriptor(
        name="jw",
        method="bh",
        i_mapping=Mapping.BLOCK_THREAD,
        j_mapping=Mapping.BLOCK_THREAD,
        walk_mapping=Mapping.BLOCK,
        walk_generation=Mapping.HOST,
        host_device_overlap=True,
        dynamic_queue=True,
    ),
}


def describe(plan_name: str) -> PlanDescriptor:
    """The canonical PTPM descriptor of one of the four plans."""
    try:
        return _DESCRIPTORS[plan_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown plan '{plan_name}'; choose from {PLAN_NAMES}"
        ) from None


def comparison_table() -> list[dict[str, str]]:
    """The PTPM table of all four plans (Fig. 3 / section 4.2 in rows)."""
    return [describe(name).row() for name in PLAN_NAMES]

"""Walk-to-block scheduling policies — the *space* axis load balancer.

The jw plan replaces the grid's implicit walk->block binding with a
dynamic work queue drained by persistent blocks; this module provides the
queue policies and makespan evaluation the plans and the queue ablation
use.  Policies:

* ``"static"`` — round-robin pre-assignment (no queue; the strawman).
* ``"dynamic"`` — FIFO queue, earliest-free worker (the jw mechanism and
  also how hardware dispatches grid blocks).
* ``"dynamic-lpt"`` — longest-processing-time-first queue ordering, a
  classic refinement the paper's future-work discussion motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.gpu.timing import greedy_schedule, round_robin_schedule

__all__ = ["ScheduleOutcome", "schedule_walks", "POLICIES"]

POLICIES = ("static", "dynamic", "dynamic-lpt")


@dataclass(frozen=True)
class ScheduleOutcome:
    """Makespan and balance statistics of one scheduling decision."""

    policy: str
    makespan: float
    worker_busy: np.ndarray
    n_items: int

    @property
    def total_work(self) -> float:
        """Sum of all item costs."""
        return float(self.worker_busy.sum())

    @property
    def balance_efficiency(self) -> float:
        """Total work over (makespan x workers); 1.0 is a perfect schedule."""
        denom = self.makespan * self.worker_busy.size
        if denom == 0.0:
            return 1.0
        return self.total_work / denom

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-time spent idle before the makespan."""
        return 1.0 - self.balance_efficiency


def schedule_walks(
    costs: np.ndarray, n_workers: int, policy: str = "dynamic"
) -> ScheduleOutcome:
    """Schedule per-walk costs onto ``n_workers`` persistent blocks.

    ``costs`` is any per-item cost measure (cycles, interactions); the
    outcome's makespan is in the same unit.
    """
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown scheduling policy '{policy}'; choose from {POLICIES}"
        )
    costs = np.asarray(costs, dtype=np.float64)
    if np.any(costs < 0):
        raise ConfigurationError("walk costs must be non-negative")
    if policy == "static":
        makespan, busy = round_robin_schedule(costs, n_workers)
    elif policy == "dynamic":
        makespan, busy = greedy_schedule(costs, n_workers)
    else:  # dynamic-lpt
        order = np.argsort(costs)[::-1]
        makespan, busy = greedy_schedule(costs[order], n_workers)
    outcome = ScheduleOutcome(
        policy=policy,
        makespan=float(makespan),
        worker_busy=busy,
        n_items=int(costs.size),
    )
    if obs.enabled:
        obs.set_gauge("balance_efficiency", outcome.balance_efficiency)
        obs.instant(
            "schedule",
            policy=policy,
            n_items=outcome.n_items,
            n_workers=n_workers,
            makespan=outcome.makespan,
            balance_efficiency=outcome.balance_efficiency,
        )
    return outcome

"""High-level simulation driver: plan x device x integrator.

:class:`Simulation` is the library's front door: pick a workload, a plan
and a time step, then :meth:`~Simulation.run`.  Forces are computed through
the plan's simulated device kernels (real float32 arithmetic) while a
*simulated wall clock* accumulates what the run would have cost on the
modelled hardware — so a laptop-scale run reports both physics and the
paper's timing quantities.

When :mod:`repro.obs` tracing is enabled, every step emits a wall-clock
``step`` span (with a ``force_pass`` child) plus ``kernel`` / ``host`` /
``transfer`` intervals on the simulated timeline, and feeds the
``interactions_total`` counter and ``step_seconds`` / ``kernel_seconds``
histograms.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.plans.base import Plan, PlanConfig, StepBreakdown
from repro.core.plans.registry import resolve_plan
from repro.errors import ConfigurationError, StateError
from repro.nbody.integrators import LeapfrogKDK, block_substep
from repro.nbody.particles import ParticleSet

__all__ = ["Simulation", "SimulationRecord"]


@dataclass
class SimulationRecord:
    """Accumulated accounting of a simulation run.

    ``steps`` counts *leapfrog steps*; ``force_passes`` counts force
    evaluations.  The two differ by one: the first step bootstraps the
    kick-drift-kick cache with an extra force pass, every later step
    performs exactly one.  (They used to be conflated — the record
    counted force passes as steps, so ``mean_step_seconds`` was wrong
    for short runs.)
    """

    steps: int = 0
    force_passes: int = 0
    simulated_seconds: float = 0.0
    kernel_seconds: float = 0.0
    host_seconds: float = 0.0
    transfer_seconds: float = 0.0
    interactions: int = 0
    breakdowns: list[StepBreakdown] = field(default_factory=list)

    def add(self, b: StepBreakdown) -> None:
        """Fold one *force pass's* breakdown into the record."""
        self.force_passes += 1
        self.simulated_seconds += b.total_seconds
        self.kernel_seconds += b.kernel_seconds
        self.host_seconds += b.host_seconds
        self.transfer_seconds += b.transfer_seconds
        self.interactions += b.interactions
        self.breakdowns.append(b)

    def add_step(self) -> None:
        """Count one completed leapfrog step."""
        self.steps += 1

    def to_dict(self) -> dict:
        """JSON-friendly totals (checkpoint manifests; drops breakdowns).

        Python's ``json`` round-trips floats bit-exactly (``repr`` based),
        so a record restored via :meth:`from_dict` continues accumulating
        from the exact values it was saved with.
        """
        return {
            "steps": self.steps,
            "force_passes": self.force_passes,
            "simulated_seconds": self.simulated_seconds,
            "kernel_seconds": self.kernel_seconds,
            "host_seconds": self.host_seconds,
            "transfer_seconds": self.transfer_seconds,
            "interactions": self.interactions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Per-pass ``breakdowns`` are in-memory only; a restored record
        starts with an empty list and keeps exact running totals.
        """
        return cls(
            steps=int(data["steps"]),
            force_passes=int(data["force_passes"]),
            simulated_seconds=float(data["simulated_seconds"]),
            kernel_seconds=float(data["kernel_seconds"]),
            host_seconds=float(data["host_seconds"]),
            transfer_seconds=float(data["transfer_seconds"]),
            interactions=int(data["interactions"]),
        )

    @property
    def mean_step_seconds(self) -> float:
        """Average simulated time per leapfrog step.

        Includes the bootstrap force pass in the numerator (it is real
        simulated work) but divides by *steps*, not force passes.
        Raises :class:`~repro.errors.StateError` if no step has been
        recorded yet.
        """
        if self.steps == 0:
            raise StateError("no steps recorded")
        return self.simulated_seconds / self.steps


class Simulation:
    """Advance a :class:`ParticleSet` under a PTPM plan.

    ``plan`` is a :class:`Plan` instance or a registered plan name
    (``"i"``, ``"j"``, ``"w"``, ``"jw"``, or anything added through
    :func:`repro.plans.register`); a name is resolved with
    ``plan_config`` (default :class:`PlanConfig`).  Everything after
    ``plan`` is keyword-only; a positional ``dt`` is accepted for one
    release with a :class:`DeprecationWarning`.

    The integrator is a kick-drift-kick leapfrog; each step performs two
    half-kicks but only one *new* force evaluation (the trailing
    acceleration is cached), matching the paper's one-force-pass-per-step
    accounting.
    """

    def __init__(
        self,
        particles: ParticleSet,
        plan: Plan | str,
        *args,
        dt: float = 1e-3,
        plan_config: PlanConfig | None = None,
    ) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"Simulation() takes at most 3 positional arguments "
                    f"({2 + len(args)} given); pass dt= as a keyword"
                )
            warnings.warn(
                "passing dt positionally is deprecated; use "
                "Simulation(particles, plan, dt=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            dt = args[0]
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.particles = particles
        self.plan = resolve_plan(plan, plan_config)
        self.dt = dt
        self.time = 0.0
        self.record = SimulationRecord()
        self._integrator = LeapfrogKDK()
        self._last_acc: np.ndarray | None = None
        #: block-timestep state (rung-driven plans only)
        self._blockstep = bool(getattr(self.plan, "blockstep", False))
        self._schedule = self.plan.make_schedule(dt) if self._blockstep else None
        self._rungs: np.ndarray | None = None
        self._substep = 0

    def _force(self) -> tuple[np.ndarray, StepBreakdown]:
        with obs.span("force_pass", plan=self.plan.name, n=len(self.particles)):
            return self.plan.compute_step(
                self.particles.positions, self.particles.masses
            )

    def _account(self, b: StepBreakdown) -> None:
        """Fold a breakdown into the record and the observability stream."""
        self.record.add(b)
        if obs.enabled:
            t0 = obs.sim_now()
            obs.sim_span("kernel", t0, t0 + b.kernel_seconds, track="device", plan=b.plan)
            obs.sim_span("host", t0, t0 + b.host_seconds, track="host", plan=b.plan)
            obs.sim_span(
                "transfer", t0, t0 + b.transfer_seconds, track="pcie", plan=b.plan
            )
            obs.advance_sim(b.total_seconds)
            obs.inc("interactions_total", b.interactions)
            obs.inc("issued_interactions_total", b.issued_interactions)
            obs.observe("step_seconds", b.total_seconds)
            obs.observe("kernel_seconds", b.kernel_seconds)
            obs.set_gauge("gflops", b.kernel_gflops())

    @property
    def last_acceleration(self) -> np.ndarray | None:
        """The cached trailing acceleration (``None`` before the first step).

        Together with ``particles``, ``time`` and ``record`` this is the
        complete integrator state — :mod:`repro.runtime` persists it so a
        resumed run replays the exact kick-drift-kick sequence without an
        extra bootstrap force pass.
        """
        return self._last_acc

    def seed_forces(self, acc: np.ndarray) -> None:
        """Restore a previously cached trailing acceleration.

        The inverse of reading :attr:`last_acceleration`; used when
        rebuilding a simulation from a checkpoint.  ``acc`` must match
        the particle array shape.
        """
        acc = np.ascontiguousarray(acc, dtype=np.float64)
        if acc.shape != self.particles.positions.shape:
            raise ConfigurationError(
                f"acceleration shape {acc.shape} does not match particles "
                f"{self.particles.positions.shape}"
            )
        self._last_acc = acc

    def invalidate_forces(self) -> None:
        """Drop the cached trailing acceleration (and any rung state).

        Call after mutating :attr:`particles` externally (positions,
        masses, or the set itself) — the next :meth:`step` then performs a
        fresh bootstrap force pass (block mode: at a sync point, with
        fresh rung assignment) instead of reusing a stale cache.
        """
        self._last_acc = None
        self._rungs = None
        self._substep = 0

    # -- block-timestep state ------------------------------------------------
    @property
    def blockstep(self) -> bool:
        """Whether the plan drives hierarchical block timesteps."""
        return self._blockstep

    @property
    def block_schedule(self):
        """The :class:`~repro.nbody.timestep.BlockTimestepSchedule` (or None)."""
        return self._schedule

    @property
    def rungs(self) -> np.ndarray | None:
        """Current per-body rung assignment (``None`` before bootstrap)."""
        return self._rungs

    @property
    def substep(self) -> int:
        """Position within the current sync interval (0 = synchronised)."""
        return self._substep

    @property
    def synchronized(self) -> bool:
        """Whether every body's step boundary coincides right now.

        Fixed-step runs are always synchronised; a block run is only at
        sync points (``substep == 0``), where global invariants (energy,
        momentum drift) are well defined.
        """
        return (not self._blockstep) or self._substep == 0

    @property
    def sync_intervals(self) -> int:
        """Completed sync intervals (block mode) or steps (fixed dt)."""
        if not self._blockstep:
            return self.record.steps
        return self.record.steps // self._schedule.n_substeps

    def seed_rungs(self, rungs: np.ndarray, substep: int = 0) -> None:
        """Restore block-timestep state (the inverse of :attr:`rungs`).

        Used with :meth:`seed_forces` when rebuilding a block-timestep
        simulation from a checkpoint, so a mid-rung resume replays the
        exact substep sequence without a bootstrap pass.
        """
        if not self._blockstep:
            raise StateError("seed_rungs() requires a block-timestep plan")
        rungs = np.ascontiguousarray(rungs, dtype=np.int64)
        if rungs.shape != (len(self.particles),):
            raise ConfigurationError(
                f"rungs shape {rungs.shape} does not match particle count "
                f"{len(self.particles)}"
            )
        sched = self._schedule
        if rungs.size and (rungs.min() < 0 or rungs.max() >= sched.n_rungs):
            raise ConfigurationError(
                f"rungs must lie in [0, {sched.n_rungs}), got "
                f"[{rungs.min()}, {rungs.max()}]"
            )
        if not 0 <= substep < sched.n_substeps:
            raise ConfigurationError(
                f"substep must be in [0, {sched.n_substeps}), got {substep}"
            )
        self._rungs = rungs
        self._substep = int(substep)

    def _block_step(self) -> StepBreakdown | None:
        """One rung-resolved block advance of ``schedule.dt_min``.

        Bootstraps at a sync point with a full force pass (assigning
        rungs), then only the bodies whose step closes at the substep
        boundary pay for a masked force pass.  Substeps whose active set
        is empty perform no force work and return ``None``.
        """
        p = self.particles
        sched = self._schedule
        if self._last_acc is None or self._rungs is None:
            a0, b0 = self._force()
            self._account(b0)
            self._last_acc = np.ascontiguousarray(a0, dtype=np.float64)
            self._rungs = sched.assign(self._last_acc)
            self._substep = 0

        def force(active: np.ndarray) -> tuple[np.ndarray, StepBreakdown | None]:
            if active.size == 0:
                return np.zeros((0, 3), dtype=np.float64), None
            with obs.span(
                "force_pass", plan=self.plan.name, n=len(p), n_active=active.size
            ):
                acc_rows, bd = self.plan.compute_step(
                    p.positions, p.masses, active=active
                )
            if bd is not None:
                self._account(bd)
            return acc_rows, bd

        self._rungs, self._substep, payload = block_substep(
            p,
            rungs=self._rungs,
            substep=self._substep,
            schedule=sched,
            last_acc=self._last_acc,
            force=force,
        )
        self.time += sched.dt_min
        self.record.add_step()
        return payload

    def step(self) -> StepBreakdown:
        """Advance one leapfrog step; returns the step's timing breakdown.

        The first step performs two force passes (bootstrap + trailing);
        every later step one.  Both are accounted as force passes, but
        ``record.steps`` — and the ``step`` span's ``index`` — count
        leapfrog steps.

        Under a block-timestep plan a "step" is one rung-resolved block
        advance of ``dt / 2**(n_rungs - 1)``: only the rungs whose step
        closes at the substep boundary pay for a (masked) force pass, so
        ``force_passes`` grows by at most one per step and the return
        value is ``None`` for substeps whose active set is empty.
        """
        p = self.particles
        with obs.span(
            "step", plan=self.plan.name, n=len(p), index=self.record.steps
        ):
            if self._blockstep:
                return self._block_step()
            if self._last_acc is None:
                a0, b0 = self._force()
                self._account(b0)
            else:
                a0 = self._last_acc
            p.velocities += 0.5 * self.dt * a0
            p.positions += self.dt * p.velocities
            a1, b1 = self._force()
            self._account(b1)
            p.velocities += 0.5 * self.dt * a1
            self._last_acc = a1
            self.time += self.dt
            self.record.add_step()
        return b1

    def run(
        self,
        n_steps: int,
        *,
        callback: Callable[["Simulation"], None] | None = None,
        callback_every: int = 1,
    ) -> SimulationRecord:
        """Advance ``n_steps`` steps, optionally invoking a callback."""
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        if callback_every < 1:
            raise ConfigurationError(
                f"callback_every must be >= 1, got {callback_every}"
            )
        with obs.span(
            "simulation.run",
            plan=self.plan.name,
            n=len(self.particles),
            n_steps=n_steps,
        ):
            for k in range(1, n_steps + 1):
                self.step()
                if callback is not None and (k % callback_every == 0 or k == n_steps):
                    callback(self)
        return self.record

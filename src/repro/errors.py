"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures without also
catching programming errors (``TypeError`` etc. are still raised where the
caller violates an API contract in a way NumPy would surface anyway).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A device, plan, or simulation was configured inconsistently."""


class StateError(ReproError):
    """An operation was invoked on an object in an invalid state.

    Distinct from :class:`ConfigurationError`: the object was configured
    correctly but has not (yet) reached the state the operation requires —
    e.g. asking a fresh :class:`~repro.core.simulation.SimulationRecord`
    for its mean step time before any step ran.
    """


class LaunchError(ReproError):
    """A kernel launch was specified with an invalid geometry."""


class DeviceError(ReproError):
    """A device specification is invalid or an operation exceeds device limits."""


class TreeError(ReproError):
    """Octree construction or traversal failed an internal invariant."""


class ExecutionError(ReproError):
    """Parallel task execution failed permanently.

    Raised by :class:`~repro.exec.ExecutionEngine` when a dispatch
    exceeds its deadline or a task keeps failing after every configured
    retry and backend fallback.
    """


class CheckpointError(ReproError):
    """A run checkpoint or manifest is missing, corrupt, or unusable.

    Raised by :mod:`repro.runtime` when a session directory cannot be
    created, read back, or resumed from.
    """


class LedgerError(ReproError):
    """The run ledger is missing, corrupt, or schema-incompatible.

    Raised by :mod:`repro.obs.ledger` when a ledger database cannot be
    opened, its ``PRAGMA user_version`` does not match the supported
    schema, or a merge source is unreadable.
    """


class WorkloadError(ReproError):
    """An initial-condition or workload generator was given invalid parameters."""


class ServeError(ReproError):
    """A job-service operation failed (bad spec, closed service, dead job).

    Raised by :mod:`repro.serve` for lifecycle violations — submitting to
    a closed service, waiting on a job whose run raised, or a malformed
    :class:`~repro.serve.JobSpec`.
    """


class VerificationError(ReproError):
    """A differential or invariant check failed.

    Raised by :mod:`repro.check` when a candidate plan/backend deviates
    from its reference beyond the promised tolerance, a golden snapshot
    no longer matches, or a guarded run violates a physical invariant
    (energy drift, momentum conservation, non-finite state).  The
    message carries the failing check's measured value and threshold;
    richer detail is on the attached :attr:`report` when present.
    """

    def __init__(self, message: str, *, report: object | None = None) -> None:
        super().__init__(message)
        #: the failing InvariantReport / ForceComparison, when available
        self.report = report


class AdmissionError(ServeError):
    """The job queue refused a submission.

    Backpressure signal from :class:`~repro.serve.JobQueue`: the queue is
    at ``queue_capacity`` and the service is configured to reject rather
    than block.  Resubmit after draining or raise the capacity via
    ``repro.configure(queue_capacity=...)``.
    """


class QuotaError(AdmissionError):
    """A per-tenant quota refused a submission.

    Subclass of :class:`AdmissionError` so existing backpressure handling
    (CLI exit 3, gateway 429) applies unchanged, but distinguishable when
    the refusal came from a tenant's ``max_queued`` / ``max_inflight``
    budget rather than global queue capacity.  Carries the offending
    tenant on :attr:`tenant`.
    """

    def __init__(self, message: str, *, tenant: str | None = None) -> None:
        super().__init__(message)
        #: tenant whose quota was exceeded, when known
        self.tenant = tenant


class JobCancelledError(ServeError):
    """A job was cancelled before it completed.

    Raised from :meth:`JobHandle.result` / gateway result polls when
    :meth:`~repro.serve.JobService.cancel` stopped the job — either while
    still queued or mid-slice.  Cancellation releases the job's result-
    cache claim so a later identical submission starts fresh.
    """

"""repro.exec — execution engine: workspace pool + parallel map backend.

The paper keeps the *device* saturated by choosing how force work maps
onto compute units; this package does the same for the CPU substrate that
hosts the reproduction:

* :mod:`repro.exec.workspace` — preallocated, dtype-keyed scratch buffers
  threaded through the force hot paths, so steady-state force passes
  allocate nothing;
* :mod:`repro.exec.engine` — a deterministic parallel ``map``
  (serial / thread / process) that fans walk evaluation and blocked
  kernel work across cores with per-worker workspaces, reducing results
  in fixed index order so parallel output is bit-identical to serial.

Typical use::

    from repro import exec as rexec

    engine = rexec.ExecutionEngine(backend="thread", workers=4)
    plan = JwParallelPlan(engine=engine)

or globally (what ``repro-nbody --workers 4`` does)::

    repro.configure(workers=4)

Fault tolerance: the engine retries failed tasks per a
:class:`~repro.exec.faults.RetryPolicy`, degrades
``process -> thread -> serial`` when a worker pool dies, and accepts a
deterministic :class:`~repro.exec.faults.FaultInjector` so those paths
are testable (see :mod:`repro.exec.faults`).
"""

from repro.exec.engine import (
    BACKENDS,
    FALLBACK_CHAIN,
    EnginePool,
    ExecConfig,
    ExecutionEngine,
    configure,
    get_default_engine,
    set_default_engine,
)
from repro.exec.faults import (
    FaultInjector,
    InjectedBackendDeath,
    InjectedFault,
    RetryPolicy,
)
from repro.exec.workspace import (
    Workspace,
    local_workspace,
    reset_local_workspace,
    total_workspace_bytes,
    uncached,
    workspace_stats,
)

__all__ = [
    "BACKENDS",
    "FALLBACK_CHAIN",
    "EnginePool",
    "ExecConfig",
    "ExecutionEngine",
    "FaultInjector",
    "InjectedBackendDeath",
    "InjectedFault",
    "RetryPolicy",
    "configure",
    "get_default_engine",
    "set_default_engine",
    "Workspace",
    "local_workspace",
    "reset_local_workspace",
    "total_workspace_bytes",
    "uncached",
    "workspace_stats",
]

"""Parallel map backend: serial / thread-pool / process-pool execution.

The PTPM plans enumerate independent units of force work — work-group
target ranges (i), i-block × j-segment rectangles (j), walks (w / jw).
:class:`ExecutionEngine` fans those units out across CPU workers the same
way the simulated device fans work-groups across compute units, subject to
one hard rule: **parallel output is bit-identical to serial**.  Tasks are
dispatched and their results reduced in fixed index order, each task's
arithmetic is self-contained (per-worker workspaces, no shared
accumulators), so the only thing a backend changes is wall-clock time.

Backends
--------
``serial``
    Plain in-order loop (the default; also the reference for the
    bit-equality tests).
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    releases the GIL inside its C inner loops, so the blocked force
    kernels overlap on multi-core hosts; per-worker scratch comes for
    free because :func:`repro.exec.workspace.local_workspace` is
    thread-local.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` for GIL-bound
    workloads.  Task functions must be picklable — the plans use
    ``functools.partial`` over module-level functions for exactly this
    reason.

Observability: every ``map`` emits an ``exec.dispatch`` span (backend,
workers, task count), per-task ``exec.worker`` spans (serial and thread
backends; process workers have incomparable clocks), the ``tasks_total``
counter and the ``workspace_bytes`` gauge.

The process-global default engine is serial; configure it with
:func:`configure` (the CLI's ``--workers`` does this) or the
``REPRO_WORKERS`` / ``REPRO_EXEC_BACKEND`` environment variables.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.errors import ConfigurationError
from repro.exec.workspace import total_workspace_bytes

__all__ = [
    "BACKENDS",
    "ExecConfig",
    "ExecutionEngine",
    "get_default_engine",
    "set_default_engine",
    "configure",
]

T = TypeVar("T")
R = TypeVar("R")

#: Recognised parallel map backends.
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecConfig:
    """How force work fans out across CPU workers."""

    backend: str = "serial"
    workers: int = 1
    #: tasks per process-pool submission; ``None`` derives one from the
    #: task count (thread pools always submit per-task).
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend '{self.backend}'; choose from {BACKENDS}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this config can actually run tasks concurrently."""
        return self.backend != "serial" and self.workers > 1


class ExecutionEngine:
    """Deterministic parallel ``map`` over independent force-work units."""

    def __init__(
        self,
        config: ExecConfig | None = None,
        *,
        backend: str | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if config is None:
            config = ExecConfig(
                backend=backend or ("serial" if (workers or 1) <= 1 else "thread"),
                workers=workers or 1,
                chunk_size=chunk_size,
            )
        elif backend is not None or workers is not None or chunk_size is not None:
            raise ConfigurationError(
                "pass either an ExecConfig or keyword overrides, not both"
            )
        self.config = config
        self._pool: Executor | None = None
        self._pool_lock = threading.Lock()
        #: tasks dispatched over this engine's lifetime
        self.tasks_total = 0
        #: map calls dispatched over this engine's lifetime
        self.dispatches = 0

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def backend(self) -> str:
        return self.config.backend

    def describe(self) -> dict[str, Any]:
        """JSON-friendly engine description (recorded in BENCH artifacts)."""
        return {
            "backend": self.config.backend,
            "workers": self.config.workers,
            "tasks_total": self.tasks_total,
            "dispatches": self.dispatches,
        }

    # ------------------------------------------------------------------
    def _executor(self) -> Executor:
        with self._pool_lock:
            if self._pool is None:
                if self.config.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-exec",
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.config.workers
                    )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (a new one forms on next use)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        label: str = "tasks",
    ) -> list[R]:
        """Apply ``fn`` to every item; results in fixed index order.

        The reduction-order guarantee is what makes parallel force passes
        bit-identical to serial: whichever worker finishes first, result
        ``i`` always lands in slot ``i`` and downstream reductions
        consume slots in ascending order.
        """
        work: Sequence[T] = items if isinstance(items, Sequence) else list(items)
        cfg = self.config
        run_parallel = cfg.parallel and len(work) > 1
        self.dispatches += 1
        self.tasks_total += len(work)
        with obs.span(
            "exec.dispatch",
            backend=cfg.backend if run_parallel else "serial",
            workers=cfg.workers if run_parallel else 1,
            tasks=len(work),
            label=label,
        ):
            obs.inc("tasks_total", len(work))
            if not run_parallel:
                results = self._map_serial(fn, work, label)
            elif cfg.backend == "thread":
                results = self._map_threads(fn, work, label)
            else:
                results = self._map_processes(fn, work)
            obs.set_gauge("workspace_bytes", total_workspace_bytes())
        return results

    # -- backends -------------------------------------------------------
    def _map_serial(
        self, fn: Callable[[T], R], work: Sequence[T], label: str
    ) -> list[R]:
        results: list[R] = []
        for i, item in enumerate(work):
            with obs.span("exec.worker", task=i, label=label):
                results.append(fn(item))
        return results

    def _map_threads(
        self, fn: Callable[[T], R], work: Sequence[T], label: str
    ) -> list[R]:
        def timed(pair: tuple[int, T]) -> tuple[R, float, float, str]:
            _, item = pair
            t0 = time.perf_counter()
            result = fn(item)
            return result, t0, time.perf_counter(), threading.current_thread().name

        out = list(self._executor().map(timed, enumerate(work)))
        results: list[R] = []
        # Worker threads must not touch the (single-threaded) tracer, so
        # the spans are emitted here, from the dispatching thread, in task
        # order, with the wall times the workers measured.
        for i, (result, t0, t1, worker) in enumerate(out):
            obs.complete_span(
                "exec.worker", t0, t1, task=i, label=label, worker=worker
            )
            results.append(result)
        return results

    def _map_processes(self, fn: Callable[[T], R], work: Sequence[T]) -> list[R]:
        chunk = self.config.chunk_size or max(
            1, len(work) // (self.config.workers * 4)
        )
        return list(self._executor().map(fn, work, chunksize=chunk))


# ---------------------------------------------------------------------------
# Process-global default engine
# ---------------------------------------------------------------------------

def _engine_from_env() -> ExecutionEngine:
    workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    backend = os.environ.get("REPRO_EXEC_BACKEND") or (
        "thread" if workers > 1 else "serial"
    )
    return ExecutionEngine(ExecConfig(backend=backend, workers=workers))


_default_engine: ExecutionEngine = _engine_from_env()


def get_default_engine() -> ExecutionEngine:
    """The engine plans fall back to when constructed without one."""
    return _default_engine


def set_default_engine(engine: ExecutionEngine | None) -> ExecutionEngine:
    """Replace the default engine (``None`` restores a serial one)."""
    global _default_engine
    _default_engine = engine if engine is not None else ExecutionEngine()
    return _default_engine


def configure(
    *, workers: int = 1, backend: str | None = None, chunk_size: int | None = None
) -> ExecutionEngine:
    """Configure the default engine (what the CLI's ``--workers`` calls)."""
    return set_default_engine(
        ExecutionEngine(
            ExecConfig(
                backend=backend or ("thread" if workers > 1 else "serial"),
                workers=workers,
                chunk_size=chunk_size,
            )
        )
    )

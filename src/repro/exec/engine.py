"""Parallel map backend: serial / thread-pool / process-pool execution.

The PTPM plans enumerate independent units of force work — work-group
target ranges (i), i-block × j-segment rectangles (j), walks (w / jw).
:class:`ExecutionEngine` fans those units out across CPU workers the same
way the simulated device fans work-groups across compute units, subject to
one hard rule: **parallel output is bit-identical to serial**.  Tasks are
dispatched and their results reduced in fixed index order, each task's
arithmetic is self-contained (per-worker workspaces, no shared
accumulators), so the only thing a backend changes is wall-clock time.

Backends
--------
``serial``
    Plain in-order loop (the default; also the reference for the
    bit-equality tests).
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    releases the GIL inside its C inner loops, so the blocked force
    kernels overlap on multi-core hosts; per-worker scratch comes for
    free because :func:`repro.exec.workspace.local_workspace` is
    thread-local.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` for GIL-bound
    workloads.  Task functions must be picklable — the plans use
    ``functools.partial`` over module-level functions for exactly this
    reason.

Failure handling
----------------
Long campaigns survive worker failures instead of losing the run:

* **per-task retry** — a :class:`~repro.exec.faults.RetryPolicy` retries
  failed tasks with exponential backoff, bounded by an optional
  per-dispatch deadline;
* **graceful degradation** — when a backend's pool dies
  (``BrokenProcessPool`` et al.), the engine falls back along
  ``process -> thread -> serial`` and re-dispatches; the degradation is
  sticky for the engine's lifetime (the dead backend is not retried);
* **deterministic fault injection** — a
  :class:`~repro.exec.faults.FaultInjector` plugged into the engine
  exercises both paths reproducibly in tests and CI.

Because every task is a pure function of its inputs (per-worker
workspaces, fixed reduction order), retried and re-dispatched work is
idempotent and the bit-equality guarantee survives every failure path.

Observability: every ``map`` emits an ``exec.dispatch`` span (backend,
workers, task count), per-task ``exec.worker`` spans (serial and thread
backends; process workers have incomparable clocks), ``exec.retry``
spans for recovered tasks, ``exec.fallback`` spans around degraded
re-dispatches, the ``tasks_total`` / ``task_retries_total`` /
``exec_fallbacks_total`` counters and the ``workspace_bytes`` gauge.

The process-global default engine is serial; configure it with
:func:`repro.configure` (the CLI's ``--workers`` does this) or the
``REPRO_WORKERS`` / ``REPRO_EXEC_BACKEND`` environment variables.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.errors import ConfigurationError, ExecutionError
from repro.exec.faults import (
    FaultInjector,
    InjectedBackendDeath,
    RetryPolicy,
)
from repro.exec.workspace import total_workspace_bytes

__all__ = [
    "BACKENDS",
    "FALLBACK_CHAIN",
    "ExecConfig",
    "EnginePool",
    "ExecutionEngine",
    "get_default_engine",
    "set_default_engine",
    "configure",
]

T = TypeVar("T")
R = TypeVar("R")

#: Recognised parallel map backends.
BACKENDS = ("serial", "thread", "process")

#: Degradation chain when a backend's pool dies mid-dispatch.
FALLBACK_CHAIN = {"process": "thread", "thread": "serial"}

#: Backend rank for sticky degradation (never climb back up the chain).
_BACKEND_RANK = {"serial": 0, "thread": 1, "process": 2}


@dataclass(frozen=True)
class ExecConfig:
    """How force work fans out across CPU workers."""

    backend: str = "serial"
    workers: int = 1
    #: tasks per process-pool submission; ``None`` derives one from the
    #: task count (thread pools always submit per-task).
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend '{self.backend}'; choose from {BACKENDS}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this config can actually run tasks concurrently."""
        return self.backend != "serial" and self.workers > 1


# ---------------------------------------------------------------------------
# Retrying task wrappers (module-level so process pools can pickle them)
# ---------------------------------------------------------------------------

def _run_task(
    fn: Callable[[T], R],
    item: T,
    index: int,
    policy: RetryPolicy | None,
    injector: FaultInjector | None,
    deadline: float | None,
) -> tuple[R, int, float, float]:
    """Run one task with retry/backoff.

    Returns ``(result, retries, retry_t0, retry_t1)`` where the last two
    bracket the recovery phase on :func:`time.perf_counter` (both 0.0
    when the first attempt succeeded).  ``deadline`` is an absolute
    :func:`time.monotonic` instant past which no further retry is
    attempted (monotonic clocks are system-wide on the platforms we run
    on, so the instant is meaningful inside pool workers too).
    """
    max_retries = policy.max_retries if policy is not None else 0
    attempt = 0
    retry_t0 = retry_t1 = 0.0
    while True:
        try:
            if injector is not None:
                injector.maybe_fail_task(index, attempt)
            result = fn(item)
            if attempt:
                retry_t1 = time.perf_counter()
            return result, attempt, retry_t0, retry_t1
        except (KeyboardInterrupt, SystemExit, InjectedBackendDeath):
            raise
        except Exception:
            if attempt == 0:
                retry_t0 = time.perf_counter()
            if attempt >= max_retries:
                raise
            if deadline is not None and time.monotonic() >= deadline:
                raise
            delay = policy.backoff_for(attempt) if policy is not None else 0.0
            if delay > 0.0:
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.monotonic()))
                time.sleep(delay)
            attempt += 1


def _process_task(
    fn: Callable[[T], R],
    policy: RetryPolicy | None,
    injector: FaultInjector | None,
    deadline: float | None,
    pair: tuple[int, T],
) -> tuple[R, int]:
    """Process-pool adapter around :func:`_run_task` (drops wall times)."""
    index, item = pair
    result, retries, _, _ = _run_task(fn, item, index, policy, injector, deadline)
    return result, retries


def _init_worker_kernel_backend(name: str) -> None:
    """Process-pool initializer: adopt the parent's kernel-backend choice.

    Runs in the worker before any task; tasks that resolve the backend
    themselves (plan tasks pass an explicit name) are unaffected.
    """
    from repro.nbody.kernels.settings import set_kernel_backend_override

    set_kernel_backend_override(name)


class ExecutionEngine:
    """Deterministic parallel ``map`` over independent force-work units."""

    def __init__(
        self,
        config: ExecConfig | None = None,
        *,
        backend: str | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        shared_pool: Executor | None = None,
    ) -> None:
        if config is None:
            config = ExecConfig(
                backend=backend or ("serial" if (workers or 1) <= 1 else "thread"),
                workers=workers or 1,
                chunk_size=chunk_size,
            )
        elif backend is not None or workers is not None or chunk_size is not None:
            raise ConfigurationError(
                "pass either an ExecConfig or keyword overrides, not both"
            )
        self.config = config
        #: per-task retry policy (``None`` = fail fast, no deadline)
        self.retry = retry
        #: deterministic fault source for tests/CI (``None`` in production)
        self.fault_injector = fault_injector
        self._pool: Executor | None = None
        self._pool_backend: str | None = None
        self._pool_lock = threading.Lock()
        #: externally owned executor for this engine's configured backend
        #: (vended by :class:`EnginePool`); never shut down by this engine
        self._shared_pool = shared_pool
        #: set when a (possibly shared) pool died under this engine — the
        #: engine stops using the shared pool but leaves it running for
        #: its siblings (per-engine fault domain)
        self._shared_detached = False
        #: sticky degraded backend after a pool death (never climbs back)
        self._degraded_backend: str | None = None
        #: tasks dispatched over this engine's lifetime
        self.tasks_total = 0
        #: map calls dispatched over this engine's lifetime
        self.dispatches = 0
        #: task retries performed over this engine's lifetime
        self.retries_total = 0
        #: backend degradations, as ``(from, to)`` pairs in order
        self.fallbacks: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def effective_backend(self) -> str:
        """The backend dispatches actually use (after any degradation)."""
        if self._degraded_backend is None:
            return self.config.backend
        if _BACKEND_RANK[self._degraded_backend] < _BACKEND_RANK[self.config.backend]:
            return self._degraded_backend
        return self.config.backend

    def describe(self) -> dict[str, Any]:
        """JSON-friendly engine description (recorded in BENCH artifacts)."""
        return {
            "backend": self.config.backend,
            "effective_backend": self.effective_backend,
            "workers": self.config.workers,
            "shared_pool": self._shared_pool is not None,
            "tasks_total": self.tasks_total,
            "dispatches": self.dispatches,
            "retries_total": self.retries_total,
            "fallbacks": [list(pair) for pair in self.fallbacks],
        }

    # ------------------------------------------------------------------
    def _executor(self, backend: str) -> Executor:
        if (
            self._shared_pool is not None
            and not self._shared_detached
            and backend == self.config.backend
        ):
            return self._shared_pool
        with self._pool_lock:
            if self._pool is not None and self._pool_backend != backend:
                self._pool.shutdown(wait=False)
                self._pool = None
            if self._pool is None:
                if backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-exec",
                    )
                else:
                    # Carry the parent's kernel-backend selection into
                    # worker processes: in-process configure() overrides
                    # don't survive fork/spawn, only the environment does.
                    from repro.nbody.kernels.settings import kernel_backend_name

                    self._pool = ProcessPoolExecutor(
                        max_workers=self.config.workers,
                        initializer=_init_worker_kernel_backend,
                        initargs=(kernel_backend_name(),),
                    )
                self._pool_backend = backend
            return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on it.

        A shared pool (from an :class:`EnginePool`) is *detached*, not shut
        down: the death may be specific to this engine (an injected fault)
        and sibling engines keep dispatching into the shared executor.
        """
        with self._pool_lock:
            self._shared_detached = True
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
                self._pool_backend = None

    def close(self) -> None:
        """Shut down the engine-owned worker pool (a new one forms on next
        use).  A shared pool belongs to its :class:`EnginePool` and is left
        running."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_backend = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        label: str = "tasks",
    ) -> list[R]:
        """Apply ``fn`` to every item; results in fixed index order.

        The reduction-order guarantee is what makes parallel force passes
        bit-identical to serial: whichever worker finishes first, result
        ``i`` always lands in slot ``i`` and downstream reductions
        consume slots in ascending order.
        """
        work: Sequence[T] = items if isinstance(items, Sequence) else list(items)
        cfg = self.config
        backend = self.effective_backend
        run_parallel = (
            backend != "serial" and cfg.workers > 1 and len(work) > 1
        )
        if not run_parallel:
            backend = "serial"
        self.dispatches += 1
        self.tasks_total += len(work)
        dispatch_index = self.dispatches - 1
        with obs.span(
            "exec.dispatch",
            backend=backend,
            workers=cfg.workers if run_parallel else 1,
            tasks=len(work),
            label=label,
        ):
            obs.inc("tasks_total", len(work))
            results = self._dispatch(fn, work, label, backend, dispatch_index)
            obs.set_gauge("workspace_bytes", total_workspace_bytes())
        return results

    def _dispatch(
        self,
        fn: Callable[[T], R],
        work: Sequence[T],
        label: str,
        backend: str,
        dispatch_index: int,
    ) -> list[R]:
        """Run one map on ``backend``, degrading down the chain on pool death."""
        deadline = None
        if self.retry is not None and self.retry.deadline_s is not None:
            deadline = time.monotonic() + self.retry.deadline_s
        try:
            if backend == "serial":
                return self._map_serial(fn, work, label, deadline)
            if self.fault_injector is not None:
                self.fault_injector.maybe_kill_dispatch(dispatch_index, backend)
            if backend == "thread":
                return self._map_threads(fn, work, label, deadline)
            return self._map_processes(fn, work, deadline)
        except FuturesTimeoutError as exc:
            if deadline is None:
                raise
            raise ExecutionError(
                f"dispatch '{label}' ({len(work)} tasks, backend '{backend}') "
                f"exceeded its {self.retry.deadline_s:.3g}s deadline"
            ) from exc
        except (BrokenExecutor, InjectedBackendDeath) as exc:
            next_backend = FALLBACK_CHAIN[backend]
            self._discard_pool()
            self._degraded_backend = next_backend
            self.fallbacks.append((backend, next_backend))
            obs.inc("exec_fallbacks_total")
            warnings.warn(
                f"exec backend '{backend}' died ({type(exc).__name__}); "
                f"falling back to '{next_backend}' for this engine",
                RuntimeWarning,
                stacklevel=3,
            )
            with obs.span(
                "exec.fallback",
                label=label,
                from_backend=backend,
                to_backend=next_backend,
                reason=type(exc).__name__,
            ):
                return self._dispatch(fn, work, label, next_backend, dispatch_index)

    def _account_retries(
        self, task: int, retries: int, label: str, rt0: float, rt1: float
    ) -> None:
        """Fold one task's recovery into engine stats and the obs stream."""
        if retries <= 0:
            return
        self.retries_total += retries
        obs.inc("task_retries_total", retries)
        if rt1 > rt0 > 0.0:
            obs.complete_span(
                "exec.retry", rt0, rt1, task=task, label=label, retries=retries
            )

    # -- backends -------------------------------------------------------
    def _map_serial(
        self,
        fn: Callable[[T], R],
        work: Sequence[T],
        label: str,
        deadline: float | None,
    ) -> list[R]:
        results: list[R] = []
        for i, item in enumerate(work):
            with obs.span("exec.worker", task=i, label=label):
                result, retries, rt0, rt1 = _run_task(
                    fn, item, i, self.retry, self.fault_injector, deadline
                )
            self._account_retries(i, retries, label, rt0, rt1)
            results.append(result)
        return results

    def _map_threads(
        self,
        fn: Callable[[T], R],
        work: Sequence[T],
        label: str,
        deadline: float | None,
    ) -> list[R]:
        retry, injector = self.retry, self.fault_injector

        def timed(pair: tuple[int, T]) -> tuple[R, int, float, float, float, float, str]:
            i, item = pair
            t0 = time.perf_counter()
            result, retries, rt0, rt1 = _run_task(
                fn, item, i, retry, injector, deadline
            )
            return (
                result,
                retries,
                rt0,
                rt1,
                t0,
                time.perf_counter(),
                threading.current_thread().name,
            )

        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        out = list(
            self._executor("thread").map(timed, enumerate(work), timeout=timeout)
        )
        results: list[R] = []
        # Worker threads must not touch the (single-threaded) tracer, so
        # the spans are emitted here, from the dispatching thread, in task
        # order, with the wall times the workers measured.
        for i, (result, retries, rt0, rt1, t0, t1, worker) in enumerate(out):
            obs.complete_span(
                "exec.worker", t0, t1, task=i, label=label, worker=worker
            )
            self._account_retries(i, retries, label, rt0, rt1)
            results.append(result)
        return results

    def _map_processes(
        self, fn: Callable[[T], R], work: Sequence[T], deadline: float | None
    ) -> list[R]:
        chunk = self.config.chunk_size or max(
            1, len(work) // (self.config.workers * 4)
        )
        task_fn = partial(
            _process_task, fn, self.retry, self.fault_injector, deadline
        )
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        out = list(
            self._executor("process").map(
                task_fn, list(enumerate(work)), chunksize=chunk, timeout=timeout
            )
        )
        results: list[R] = []
        # Process workers have incomparable perf_counter clocks, so only
        # the retry *counts* survive the boundary (no exec.retry spans).
        for i, (result, retries) in enumerate(out):
            self._account_retries(i, retries, "", 0.0, 0.0)
            results.append(result)
        return results


# ---------------------------------------------------------------------------
# Shared worker pools
# ---------------------------------------------------------------------------

class EnginePool:
    """One worker pool shared by many :class:`ExecutionEngine` instances.

    The job service runs several small-N simulations at once; giving each
    its own thread/process pool would oversubscribe the host, while a
    single engine shared across jobs would entangle their failure state.
    ``EnginePool`` splits the difference, mirroring the paper's occupancy
    argument (many independent work streams feeding one set of compute
    units):

    * **pool sharing** — every vended engine dispatches into the same
      executor, so concurrent jobs interleave their force tasks across
      one fixed set of workers;
    * **per-engine fault domains** — retry policy, fault injection and
      backend-degradation state live on each vended engine.  When a
      dispatch dies under one engine it *detaches* from the shared pool
      and degrades down the fallback chain alone; sibling engines keep
      using the pool untouched.

    The ``serial`` backend vends plain serial engines (no pool exists).
    The pool owns the executor: closing a vended engine never shuts it
    down, closing the pool does.
    """

    def __init__(
        self,
        backend: str = "thread",
        workers: int = 2,
        *,
        chunk_size: int | None = None,
    ) -> None:
        # ExecConfig performs the backend/workers/chunk_size validation.
        self.config = ExecConfig(
            backend=backend, workers=workers, chunk_size=chunk_size
        )
        self._executor: Executor | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: engines vended over this pool's lifetime
        self.engines_vended = 0

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def workers(self) -> int:
        return self.config.workers

    def _shared_executor(self) -> Executor | None:
        if self.config.backend == "serial":
            return None
        with self._lock:
            if self._closed:
                raise ExecutionError("EnginePool is closed")
            if self._executor is None:
                if self.config.backend == "thread":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-pool",
                    )
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.config.workers
                    )
            return self._executor

    def engine(
        self,
        *,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> ExecutionEngine:
        """Vend an engine with its own fault domain over the shared pool."""
        engine = ExecutionEngine(
            self.config,
            retry=retry,
            fault_injector=fault_injector,
            shared_pool=self._shared_executor(),
        )
        self.engines_vended += 1
        return engine

    def close(self) -> None:
        """Shut down the shared executor (vended engines must be done)."""
        with self._lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def describe(self) -> dict:
        """Introspection snapshot (backend, workers, vend count, state)."""
        return {
            "backend": self.config.backend,
            "workers": self.config.workers,
            "chunk_size": self.config.chunk_size,
            "engines_vended": self.engines_vended,
            "closed": self._closed,
        }

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnginePool(backend={self.config.backend!r}, "
            f"workers={self.config.workers}, vended={self.engines_vended})"
        )


# ---------------------------------------------------------------------------
# Process-global default engine
# ---------------------------------------------------------------------------

def _engine_from_env() -> ExecutionEngine:
    workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    backend = os.environ.get("REPRO_EXEC_BACKEND") or (
        "thread" if workers > 1 else "serial"
    )
    return ExecutionEngine(ExecConfig(backend=backend, workers=workers))


_default_engine: ExecutionEngine = _engine_from_env()


def get_default_engine() -> ExecutionEngine:
    """The engine plans fall back to when constructed without one."""
    return _default_engine


def set_default_engine(engine: ExecutionEngine | None) -> ExecutionEngine:
    """Replace the default engine (``None`` restores a serial one)."""
    global _default_engine
    _default_engine = engine if engine is not None else ExecutionEngine()
    return _default_engine


def configure(
    *, workers: int = 1, backend: str | None = None, chunk_size: int | None = None
) -> ExecutionEngine:
    """Deprecated: use :func:`repro.configure` instead.

    Thin shim kept for backwards compatibility; delegates to the unified
    top-level entry point with identical behaviour.
    """
    warnings.warn(
        "repro.exec.configure() is deprecated; use "
        "repro.configure(workers=..., exec_backend=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.config import configure as _configure

    return _configure(workers=workers, exec_backend=backend, chunk_size=chunk_size)

"""Retry policy and deterministic fault injection for the execution engine.

Fault tolerance is only trustworthy if its recovery paths are exercised;
production N-body campaigns (Bonsai-style multi-day runs) treat worker
failures as routine, not exceptional.  This module provides the two
pieces the engine needs:

* :class:`RetryPolicy` — how many times a failed task is retried, with
  what backoff, and how long a whole dispatch may take;
* :class:`FaultInjector` — a *deterministic*, picklable fault source the
  tests and CI inject into an :class:`~repro.exec.ExecutionEngine` to
  prove the retry, backend-fallback and checkpoint-resume paths work.

Determinism is the design constraint: every injected decision is a pure
function of ``(seed, task index, attempt)`` or ``(dispatch index,
backend)``, so the same faults fire on every backend, in every worker
process, on every run.  A stateful injector would drift between the
serial reference and a process pool and the bit-equality guarantees
could not be tested.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "RetryPolicy",
    "FaultInjector",
    "InjectedFault",
    "InjectedBackendDeath",
]


class InjectedFault(ReproError):
    """A task failure injected by a :class:`FaultInjector` (retryable)."""


class InjectedBackendDeath(ReproError):
    """An injected backend death (treated like ``BrokenProcessPool``)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry with exponential backoff and a dispatch deadline.

    ``max_retries`` counts *additional* attempts after the first failure;
    ``backoff_s * backoff_factor**attempt`` is slept before retry
    ``attempt + 1``; ``deadline_s`` bounds one whole ``map`` dispatch —
    once exceeded, no further retries are attempted and the engine raises
    :class:`~repro.errors.ExecutionError` if results are still pending.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0.0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before retrying after failed attempt ``attempt``."""
        return self.backoff_s * self.backoff_factor**attempt


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic fault source for engine tests and chaos CI jobs.

    Task faults fire for explicit ``fail_tasks`` indices and/or a seeded
    pseudo-random ``task_failure_rate``; either way a given task fails
    only on its first ``fail_attempts`` attempts, so a retrying engine is
    guaranteed to converge.  Dispatch faults (``die_on_dispatch``)
    emulate a worker-pool death on the engine's n-th ``map`` call and
    only fire for backends listed in ``die_backends`` — the serial
    backend cannot die.

    Instances are immutable and picklable, so the same injector rides
    into process-pool workers unchanged.
    """

    seed: int = 0
    task_failure_rate: float = 0.0
    fail_attempts: int = 1
    fail_tasks: frozenset = field(default_factory=frozenset)
    die_on_dispatch: frozenset = field(default_factory=frozenset)
    die_backends: frozenset = field(
        default_factory=lambda: frozenset({"process", "thread"})
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "fail_tasks", frozenset(self.fail_tasks))
        object.__setattr__(self, "die_on_dispatch", frozenset(self.die_on_dispatch))
        object.__setattr__(self, "die_backends", frozenset(self.die_backends))
        if not 0.0 <= self.task_failure_rate <= 1.0:
            raise ConfigurationError(
                f"task_failure_rate must be in [0, 1], got {self.task_failure_rate}"
            )
        if self.fail_attempts < 0:
            raise ConfigurationError(
                f"fail_attempts must be >= 0, got {self.fail_attempts}"
            )

    # ------------------------------------------------------------------
    def task_fault(self, task: int, attempt: int) -> bool:
        """Whether attempt ``attempt`` of task ``task`` should fail."""
        if attempt >= self.fail_attempts:
            return False
        if task in self.fail_tasks:
            return True
        if self.task_failure_rate > 0.0:
            draw = random.Random(
                self.seed * 1_000_003 + task * 8_191 + attempt
            ).random()
            return draw < self.task_failure_rate
        return False

    def dispatch_fault(self, dispatch: int, backend: str) -> bool:
        """Whether ``map`` call ``dispatch`` on ``backend`` should die."""
        return backend in self.die_backends and dispatch in self.die_on_dispatch

    # ------------------------------------------------------------------
    def maybe_fail_task(self, task: int, attempt: int) -> None:
        """Raise :class:`InjectedFault` when the task fault fires."""
        if self.task_fault(task, attempt):
            raise InjectedFault(
                f"injected fault: task {task}, attempt {attempt}"
            )

    def maybe_kill_dispatch(self, dispatch: int, backend: str) -> None:
        """Raise :class:`InjectedBackendDeath` when the dispatch fault fires."""
        if self.dispatch_fault(dispatch, backend):
            raise InjectedBackendDeath(
                f"injected backend death: dispatch {dispatch} on '{backend}'"
            )

"""Preallocated, dtype-keyed scratch buffers for the force hot paths.

The blocked force kernels need the same family of temporaries on every
pass — the ``(nt, block, 3)`` displacement cube ``d``, the ``(nt, block)``
``r2`` / ``inv_r3`` planes, tile staging arrays, partial-sum accumulators.
Allocating them fresh each pass (the pre-``repro.exec`` behaviour) puts a
page-fault-heavy ``malloc``/``free`` cycle inside the innermost loop; a
:class:`Workspace` instead hands out views into capacity buffers that are
allocated once and reused for the life of the worker, so steady-state
force passes allocate nothing.

Buffers are keyed by ``(name, dtype)``: asking for ``("d", float64)`` and
``("d", float32)`` yields independent storage, and a request larger than
the cached capacity grows the buffer (never shrinks).  A workspace is
**not** thread-safe — it is per-worker state.  :func:`local_workspace`
returns a thread-local instance, which is what the force kernels use when
the caller passes ``workspace=None``; every thread (including the pool
workers of :class:`repro.exec.engine.ExecutionEngine`) therefore gets its
own buffers without any locking on the hot path.

Contract for :meth:`Workspace.take`: the returned view is valid until the
next ``take`` of the *same key* — callers use distinct keys for buffers
that are live simultaneously, and must not return workspace views to
their own callers.
"""

from __future__ import annotations

import math
import threading
import weakref
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

__all__ = [
    "Workspace",
    "local_workspace",
    "reset_local_workspace",
    "total_workspace_bytes",
    "workspace_stats",
    "uncached",
]

#: Live workspaces, for the ``workspace_bytes`` gauge.  Weak so that
#: short-lived workspaces (``uncached`` mode, tests) do not pin memory.
_REGISTRY: "weakref.WeakSet[Workspace]" = weakref.WeakSet()
_REGISTRY_LOCK = threading.Lock()

_tls = threading.local()

#: When true, :func:`local_workspace` returns a fresh unregistered
#: workspace per call — restoring the old allocate-every-pass behaviour
#: for A/B benchmarking and for tests that need pristine buffers.
_uncached = False


class Workspace:
    """A dtype-keyed cache of scratch buffers (one per worker)."""

    def __init__(self, name: str = "ws", *, register: bool = True) -> None:
        self.name = name
        self._buffers: dict[tuple[str, str], np.ndarray] = {}
        #: total ``take`` calls served
        self.requests = 0
        #: requests that had to allocate or grow a capacity buffer
        self.allocations = 0
        if register:
            with _REGISTRY_LOCK:
                _REGISTRY.add(self)

    # ------------------------------------------------------------------
    def take(
        self,
        key: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """An **uninitialised** scratch array of ``shape``, reusing storage.

        The view aliases the capacity buffer registered under
        ``(key, dtype)``; contents are whatever the previous user left.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        size = math.prod(shape)
        bkey = (key, dt.str)
        buf = self._buffers.get(bkey)
        self.requests += 1
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dt)
            self._buffers[bkey] = buf
            self.allocations += 1
        return buf[:size].reshape(shape)

    def zeros(
        self,
        key: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Like :meth:`take` but zero-filled (an accumulator)."""
        out = self.take(key, shape, dtype)
        out[...] = 0
        return out

    def cast(self, key: str, arr: np.ndarray, dtype: np.dtype | type) -> np.ndarray:
        """``arr`` converted to ``dtype`` without a fresh allocation.

        Returns ``arr`` itself when it already has the target dtype,
        otherwise copies it into the workspace buffer ``key``.
        """
        dt = np.dtype(dtype)
        if arr.dtype == dt:
            return arr
        out = self.take(key, arr.shape, dt)
        np.copyto(out, arr, casting="unsafe")
        return out

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes held across all capacity buffers."""
        return sum(b.nbytes for b in self._buffers.values())

    @property
    def n_buffers(self) -> int:
        """Number of distinct ``(key, dtype)`` capacity buffers."""
        return len(self._buffers)

    def stats(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of this workspace's accounting."""
        return {
            "name": self.name,
            "nbytes": self.nbytes,
            "n_buffers": self.n_buffers,
            "requests": self.requests,
            "allocations": self.allocations,
        }

    def clear(self) -> None:
        """Release all capacity buffers (counters are kept)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace({self.name!r}, buffers={self.n_buffers}, "
            f"nbytes={self.nbytes}, allocations={self.allocations})"
        )


# ---------------------------------------------------------------------------
# Thread-local default workspaces
# ---------------------------------------------------------------------------

def local_workspace() -> Workspace:
    """The calling thread's workspace (created on first use)."""
    if _uncached:
        return Workspace(name="uncached", register=False)
    ws = getattr(_tls, "ws", None)
    if ws is None:
        ws = Workspace(name=f"ws/{threading.current_thread().name}")
        _tls.ws = ws
    return ws


def reset_local_workspace() -> None:
    """Drop the calling thread's workspace (a fresh one forms on next use)."""
    _tls.ws = None


@contextmanager
def uncached() -> Iterator[None]:
    """Scope in which :func:`local_workspace` allocates fresh every call.

    Restores the pre-workspace allocation behaviour — the serial baseline
    the BENCH artifacts compare against.
    """
    global _uncached
    prior = _uncached
    _uncached = True
    try:
        yield
    finally:
        _uncached = prior


# ---------------------------------------------------------------------------
# Fleet-wide accounting (the ``workspace_bytes`` gauge)
# ---------------------------------------------------------------------------

def total_workspace_bytes() -> int:
    """Bytes held by every live registered workspace."""
    with _REGISTRY_LOCK:
        return sum(ws.nbytes for ws in _REGISTRY)


def workspace_stats() -> list[dict[str, Any]]:
    """Per-workspace stats for every live registered workspace."""
    with _REGISTRY_LOCK:
        return sorted((ws.stats() for ws in _REGISTRY), key=lambda s: s["name"])

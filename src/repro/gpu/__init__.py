"""Simulated SIMT GPU substrate.

Replaces the paper's AMD Radeon HD 5850 with a parameterised device model:
functional tiled-kernel execution (real float32 arithmetic) plus a
calibrated timing engine (occupancy, divergence, memory, scheduling).
"""

from repro.gpu.device import RADEON_HD_5850, DeviceSpec, scaled_device
from repro.gpu.counters import CostCounters
from repro.gpu.wavefront import active_wavefronts, divergent_cycles, lane_utilization
from repro.gpu.memory import (
    BYTES_PER_ACCEL,
    BYTES_PER_BODY,
    TransferLog,
    body_transfer_time,
    check_lds_fit,
    lds_tile_capacity,
    transfer_time,
)
from repro.gpu.occupancy import OccupancyInfo, kernel_occupancy
from repro.gpu.launch import KernelLaunch, NDRange, WorkGroupWork
from repro.gpu.kernel import (
    packed_tile_loop_work,
    reduction_work,
    tile_loop_forces,
    tile_loop_work,
)
from repro.gpu.events import Command, CommandRecord, EventGraph
from repro.gpu.roofline import RooflinePoint, ridge_intensity, roofline_point
from repro.gpu.trace import ExecutionTrace, Interval, trace_costs, trace_launch
from repro.gpu.timing import (
    BARRIER_CYCLES,
    WG_DISPATCH_CYCLES,
    KernelTiming,
    greedy_schedule,
    round_robin_schedule,
    time_kernel,
    workgroup_cycles,
)

__all__ = [
    "RADEON_HD_5850",
    "DeviceSpec",
    "scaled_device",
    "CostCounters",
    "active_wavefronts",
    "divergent_cycles",
    "lane_utilization",
    "BYTES_PER_ACCEL",
    "BYTES_PER_BODY",
    "TransferLog",
    "body_transfer_time",
    "check_lds_fit",
    "lds_tile_capacity",
    "transfer_time",
    "OccupancyInfo",
    "kernel_occupancy",
    "KernelLaunch",
    "NDRange",
    "WorkGroupWork",
    "packed_tile_loop_work",
    "reduction_work",
    "tile_loop_forces",
    "tile_loop_work",
    "Command",
    "CommandRecord",
    "EventGraph",
    "RooflinePoint",
    "ridge_intensity",
    "roofline_point",
    "ExecutionTrace",
    "Interval",
    "trace_costs",
    "trace_launch",
    "BARRIER_CYCLES",
    "WG_DISPATCH_CYCLES",
    "KernelTiming",
    "greedy_schedule",
    "round_robin_schedule",
    "time_kernel",
    "workgroup_cycles",
]

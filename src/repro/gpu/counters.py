"""Cost counters accumulated by functional kernel execution.

Every simulated kernel records the work it actually performed —
interactions, bytes moved, barriers — into a :class:`CostCounters`.  The
timing engine consumes the same quantities, so the functional and timing
paths cannot silently disagree about how much work a kernel did.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostCounters"]


@dataclass
class CostCounters:
    """Work performed by (part of) a kernel.

    Attributes
    ----------
    interactions:
        Body-body (or body-cell) force evaluations.
    global_bytes:
        Bytes moved between global memory and the compute units.
    lds_bytes:
        Bytes staged through local memory (tiles).
    barriers:
        Work-group barrier synchronisations executed.
    reductions:
        Scalar reduction operations (j-parallel partial-force combines).
    """

    interactions: int = 0
    global_bytes: int = 0
    lds_bytes: int = 0
    barriers: int = 0
    reductions: int = 0

    def add(self, other: "CostCounters") -> "CostCounters":
        """Accumulate ``other`` into ``self`` (returns self for chaining)."""
        self.interactions += other.interactions
        self.global_bytes += other.global_bytes
        self.lds_bytes += other.lds_bytes
        self.barriers += other.barriers
        self.reductions += other.reductions
        return self

    def copy(self) -> "CostCounters":
        """An independent copy."""
        return CostCounters(
            interactions=self.interactions,
            global_bytes=self.global_bytes,
            lds_bytes=self.lds_bytes,
            barriers=self.barriers,
            reductions=self.reductions,
        )

    def flops(self, flops_per_interaction: int = 20) -> float:
        """Arithmetic work under a flops-per-interaction convention."""
        return float(self.interactions) * flops_per_interaction

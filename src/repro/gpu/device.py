"""Device specifications for the simulated GPU.

The paper's testbed GPU is an AMD Radeon HD 5850 ("Cypress Pro"): 18
compute units (SIMD engines) x 16 stream cores x 5 VLIW ALUs = 1440 ALUs
at 725 MHz, i.e. 2.088 TFLOPS single-precision peak (multiply-add), with
32 KiB of local data share (LDS) per compute unit and 64-wide wavefronts.

:class:`DeviceSpec` captures the architectural parameters that the timing
engine (:mod:`repro.gpu.timing`) needs; the N-body-specific throughput
calibration (cycles per body-body interaction per stream core) is
documented in :mod:`repro.perfmodel.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError

__all__ = ["DeviceSpec", "RADEON_HD_5850", "scaled_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a simulated SIMT GPU.

    Parameters
    ----------
    compute_units:
        Number of independent SIMD engines work-groups are scheduled onto.
    stream_cores_per_cu:
        Physical lanes per compute unit (a 64-wide wavefront issues over
        ``wavefront_size / stream_cores_per_cu`` clocks).
    vliw_width:
        ALUs per stream core (5 on Cypress); enters peak-flops accounting.
    wavefront_size:
        Work-items that execute in lock-step (64 on AMD).
    clock_hz:
        Engine clock.
    max_workgroup_size:
        Largest launchable work-group (256 under OpenCL on Evergreen).
    lds_bytes_per_cu:
        Local data share capacity; tiles staged per work-group must fit.
    max_wavefronts_per_cu:
        Resident-wavefront limit, bounding latency-hiding concurrency.
    latency_hiding_wavefronts:
        Resident wavefronts per CU needed to fully hide memory/pipeline
        latency; fewer residents scale throughput down proportionally.
    interaction_cycles:
        Calibrated cycles one stream core spends per body-body interaction
        in the inner force loop (VLIW packing, rsqrt and loop overhead
        folded in).  This single number sets the device's sustained
        N-body rate; see ``perfmodel.calibration``.
    global_bandwidth_bytes_s:
        Off-chip memory bandwidth.
    kernel_launch_overhead_s:
        Fixed host-side cost per kernel dispatch.
    pcie_bandwidth_bytes_s / pcie_latency_s:
        Host <-> device transfer model.
    """

    name: str
    compute_units: int
    stream_cores_per_cu: int
    vliw_width: int
    wavefront_size: int
    clock_hz: float
    max_workgroup_size: int
    lds_bytes_per_cu: int
    max_wavefronts_per_cu: int
    latency_hiding_wavefronts: int
    interaction_cycles: float
    global_bandwidth_bytes_s: float
    kernel_launch_overhead_s: float
    pcie_bandwidth_bytes_s: float
    pcie_latency_s: float

    def __post_init__(self) -> None:
        positive = {
            "compute_units": self.compute_units,
            "stream_cores_per_cu": self.stream_cores_per_cu,
            "vliw_width": self.vliw_width,
            "wavefront_size": self.wavefront_size,
            "clock_hz": self.clock_hz,
            "max_workgroup_size": self.max_workgroup_size,
            "lds_bytes_per_cu": self.lds_bytes_per_cu,
            "max_wavefronts_per_cu": self.max_wavefronts_per_cu,
            "latency_hiding_wavefronts": self.latency_hiding_wavefronts,
            "interaction_cycles": self.interaction_cycles,
            "global_bandwidth_bytes_s": self.global_bandwidth_bytes_s,
            "pcie_bandwidth_bytes_s": self.pcie_bandwidth_bytes_s,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise DeviceError(f"{field_name} must be positive, got {value}")
        if self.kernel_launch_overhead_s < 0 or self.pcie_latency_s < 0:
            raise DeviceError("overheads must be non-negative")
        if self.wavefront_size % self.stream_cores_per_cu != 0:
            raise DeviceError(
                "wavefront_size must be a multiple of stream_cores_per_cu"
            )
        if self.max_workgroup_size % self.wavefront_size != 0:
            raise DeviceError(
                "max_workgroup_size must be a multiple of wavefront_size"
            )

    # ------------------------------------------------------------------
    @property
    def total_alus(self) -> int:
        """Total VLIW ALUs (1440 on the HD 5850)."""
        return self.compute_units * self.stream_cores_per_cu * self.vliw_width

    @property
    def peak_flops(self) -> float:
        """Theoretical peak (one multiply-add = 2 flops per ALU per clock)."""
        return self.total_alus * 2.0 * self.clock_hz

    @property
    def interactions_per_cycle_per_cu(self) -> float:
        """Sustained body-body interactions one CU retires per clock."""
        return self.stream_cores_per_cu / self.interaction_cycles

    @property
    def sustained_interaction_rate(self) -> float:
        """Device-wide interactions/second with all CUs busy and full occupancy."""
        return (
            self.compute_units * self.interactions_per_cycle_per_cu * self.clock_hz
        )

    @property
    def global_bytes_per_cycle_per_cu(self) -> float:
        """Per-CU share of global memory bandwidth, in bytes per clock."""
        return self.global_bandwidth_bytes_s / (self.clock_hz * self.compute_units)

    def seconds(self, cycles: float) -> float:
        """Convert engine cycles to seconds."""
        return cycles / self.clock_hz

    def validate_workgroup(self, size: int) -> None:
        """Raise :class:`DeviceError` if a work-group size is unlaunchable."""
        if size < 1 or size > self.max_workgroup_size:
            raise DeviceError(
                f"work-group size {size} outside [1, {self.max_workgroup_size}]"
                f" on {self.name}"
            )


#: The paper's testbed: AMD Radeon HD 5850 (Cypress Pro), OpenCL 1.0.
#: ``interaction_cycles`` is calibrated so the sustained all-pairs rate is
#: ~15e9 interactions/s = ~300 GFLOPS under the 20-flop convention, the
#: figure the paper reports as its sustained performance.
RADEON_HD_5850 = DeviceSpec(
    name="AMD Radeon HD 5850",
    compute_units=18,
    stream_cores_per_cu=16,
    vliw_width=5,
    wavefront_size=64,
    clock_hz=725e6,
    max_workgroup_size=256,
    lds_bytes_per_cu=32 * 1024,
    max_wavefronts_per_cu=24,
    latency_hiding_wavefronts=7,
    interaction_cycles=14.0,
    global_bandwidth_bytes_s=128e9,
    kernel_launch_overhead_s=8e-6,
    pcie_bandwidth_bytes_s=5e9,
    pcie_latency_s=15e-6,
)


def scaled_device(base: DeviceSpec, *, compute_units: int, name: str | None = None) -> DeviceSpec:
    """A copy of ``base`` with a different CU count (scaling studies)."""
    if compute_units < 1:
        raise DeviceError(f"compute_units must be >= 1, got {compute_units}")
    return replace(
        base,
        compute_units=compute_units,
        name=name or f"{base.name} x{compute_units}CU",
    )

"""Event-graph simulation of host/DMA/device command streams.

This is the formal version of the PTPM *time axis*: commands (host walk
generation, PCIe uploads, kernel launches, downloads) run on named serial
resources and may depend on each other; :meth:`EventGraph.simulate`
computes every command's start/end and the makespan.

The closed-form pipeline recurrences in :mod:`repro.core.pipeline` are the
special case of a three-resource chain — the test suite checks that
equivalence — while the event graph also expresses schedules the
recurrences cannot (multi-device fan-out, downloads racing uploads,
priority inversions), which the what-if examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Command", "CommandRecord", "EventGraph"]


@dataclass(frozen=True)
class Command:
    """One unit of work on a serial resource.

    ``deps`` are command ids that must complete before this one may start
    (in addition to the implicit in-order constraint of its resource).
    """

    resource: str
    duration: float
    label: str = ""
    deps: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {self.duration}")
        if not self.resource:
            raise ConfigurationError("resource name must be non-empty")


@dataclass(frozen=True)
class CommandRecord:
    """Simulated execution window of one command."""

    command: Command
    start: float
    end: float


@dataclass
class EventGraph:
    """A DAG of commands over serial resources, simulated in submission order.

    Commands on the same resource execute in the order they were
    submitted (an in-order queue, as OpenCL 1.0 provides); cross-resource
    ordering comes only from explicit ``deps``.
    """

    commands: list[Command] = field(default_factory=list)

    def submit(
        self,
        resource: str,
        duration: float,
        *,
        label: str = "",
        deps: tuple[int, ...] | list[int] = (),
    ) -> int:
        """Append a command; returns its id for use in later ``deps``."""
        cmd = Command(resource, duration, label, tuple(deps))
        for d in cmd.deps:
            if not 0 <= d < len(self.commands):
                raise ConfigurationError(
                    f"dependency {d} refers to a command not yet submitted"
                )
        self.commands.append(cmd)
        return len(self.commands) - 1

    def simulate(self) -> list[CommandRecord]:
        """Execute the graph; returns per-command records in submission order.

        Because dependencies may only point backwards (enforced at
        submission), a single pass resolves all start times.
        """
        records: list[CommandRecord] = []
        resource_free: dict[str, float] = {}
        for cmd in self.commands:
            ready = resource_free.get(cmd.resource, 0.0)
            for d in cmd.deps:
                ready = max(ready, records[d].end)
            records.append(CommandRecord(cmd, ready, ready + cmd.duration))
            resource_free[cmd.resource] = ready + cmd.duration
        return records

    def makespan(self) -> float:
        """Completion time of the last-finishing command."""
        records = self.simulate()
        return max((r.end for r in records), default=0.0)

    def resource_busy(self) -> dict[str, float]:
        """Total busy time per resource."""
        busy: dict[str, float] = {}
        for r in self.simulate():
            busy[r.command.resource] = busy.get(r.command.resource, 0.0) + (
                r.end - r.start
            )
        return busy

    # ------------------------------------------------------------------
    # canonical schedules
    # ------------------------------------------------------------------
    @classmethod
    def pipelined_step(
        cls,
        host_batches: list[float],
        upload_batches: list[float],
        kernel_batches: list[float],
        *,
        n_devices: int = 1,
    ) -> "EventGraph":
        """The jw step as an event graph: host -> dma -> gpu per batch.

        With ``n_devices > 1``, batches round-robin across per-device DMA
        and compute resources (one host feeds them all).
        """
        if not (len(host_batches) == len(upload_batches) == len(kernel_batches)):
            raise ConfigurationError("all stages need the same batch count")
        if n_devices < 1:
            raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
        g = cls()
        for i, (h, u, k) in enumerate(
            zip(host_batches, upload_batches, kernel_batches)
        ):
            dev = i % n_devices
            hid = g.submit("host", h, label=f"walks{i}")
            uid = g.submit(f"dma{dev}", u, label=f"upload{i}", deps=(hid,))
            g.submit(f"gpu{dev}", k, label=f"kernel{i}", deps=(uid,))
        return g

    @classmethod
    def serial_step(
        cls, host_seconds: float, upload_seconds: float, kernel_seconds: float
    ) -> "EventGraph":
        """The w step: host, then upload, then kernel, no overlap."""
        g = cls()
        hid = g.submit("host", host_seconds, label="walks")
        uid = g.submit("dma0", upload_seconds, label="upload", deps=(hid,))
        g.submit("gpu0", kernel_seconds, label="kernel", deps=(uid,))
        return g

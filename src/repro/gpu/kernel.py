"""Functional work-group execution and matching work accounting.

The simulated kernels are *real*: they evaluate the same arithmetic the
OpenCL kernels in the paper perform, in ``float32``, staging source tiles
through an emulated local memory.  For every functional helper there is a
sibling ``*_work`` helper returning the :class:`WorkGroupWork` record the
timing engine consumes — both derive their counts from the same tile
geometry, so physics and timing describe one computation.

Tile structure (section 4.1 / Fig. 1-2 of the paper): a work-group of
``p`` threads processes the source dimension in tiles of ``p`` bodies;
each tile is loaded cooperatively into local memory behind a barrier, each
thread accumulates ``p`` interactions from the tile, and a second barrier
precedes the next load.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exec.workspace import Workspace, local_workspace
from repro.gpu.counters import CostCounters
from repro.nbody.kernels import KernelBackend, resolve_backend
from repro.gpu.device import DeviceSpec
from repro.gpu.launch import WorkGroupWork
from repro.gpu.memory import BYTES_PER_ACCEL, BYTES_PER_BODY, check_lds_fit
from repro.gpu.wavefront import active_wavefronts

__all__ = [
    "tile_loop_forces",
    "tile_loop_work",
    "packed_tile_loop_work",
    "reduction_work",
]


def tile_loop_forces(
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    *,
    wg_size: int,
    softening: float,
    G: float = 1.0,
    device: DeviceSpec | None = None,
    counters: CostCounters | None = None,
    dtype: np.dtype | type = np.float32,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    workspace: Workspace | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Functionally execute one work-group's tiled force loop.

    ``targets`` are the work-group's i-bodies (one per active thread for
    the i/w plans; the whole walk group for jw).  Sources are staged
    through an emulated LDS tile of ``wg_size`` bodies at a time and the
    partial accelerations accumulate in ``dtype`` precision, reproducing
    device rounding behaviour.

    ``out`` (``(nt, 3)`` of ``dtype``) receives the result — added in
    place when ``accumulate`` is true, overwritten otherwise.  Tile
    temporaries and input casts come from ``workspace`` (the calling
    thread's local workspace by default), so steady-state evaluation
    allocates nothing beyond a missing ``out``.

    ``backend`` selects the kernel backend.  On a compiled backend the
    same interaction rectangle is evaluated in ``dtype`` without staging
    tiles through the emulated LDS (accumulation order differs, covered
    by the ``compiled-*`` oracle tolerances); the tile geometry and the
    work/``counters`` accounting are unchanged, so timing still describes
    the device the plan models.
    """
    if wg_size < 1:
        raise ValueError(f"wg_size must be >= 1, got {wg_size}")
    if device is not None:
        check_lds_fit(device, wg_size * BYTES_PER_BODY)
    ws = workspace if workspace is not None else local_workspace()
    targets = ws.cast("kernel.targets", np.asarray(targets), dtype)
    src_pos = ws.cast("kernel.src_pos", np.asarray(src_pos), dtype)
    src_mass = ws.cast("kernel.src_mass", np.asarray(src_mass), dtype)
    nt = targets.shape[0]
    ns = src_pos.shape[0]
    if out is None:
        acc = np.zeros((nt, 3), dtype=dtype)
    else:
        if out.shape != (nt, 3) or out.dtype != np.dtype(dtype):
            raise ValueError(
                f"out must be ({nt}, 3) of {np.dtype(dtype)}, got "
                f"{out.shape} of {out.dtype}"
            )
        acc = out
        if not accumulate:
            acc[:] = 0.0
    # Squared in float64, rounded to `dtype` once (square-then-cast) — the
    # float32 device kernels share the float64 definition of the softening.
    eps2 = dtype(softening * softening)

    kb = resolve_backend(backend)
    if kb.kind != "reference":
        targets = np.ascontiguousarray(targets)
        src_pos = np.ascontiguousarray(src_pos)
        src_mass = np.ascontiguousarray(src_mass)
        if acc.flags.c_contiguous:
            kb.sources(targets, src_pos, src_mass, eps2=float(eps2), out=acc,
                       accumulate=True)
        else:
            tmp = np.empty((nt, 3), dtype=dtype)
            kb.sources(targets, src_pos, src_mass, eps2=float(eps2), out=tmp,
                       accumulate=False)
            acc += tmp
        n_tiles = math.ceil(ns / wg_size) if ns else 0
    else:
        lds_pos = ws.take("kernel.lds_pos", (wg_size, 3), dtype)
        lds_mass = ws.take("kernel.lds_mass", (wg_size,), dtype)
        tile = min(wg_size, ns)
        d_buf = ws.take("kernel.d", (nt, tile, 3), dtype)
        r2_buf = ws.take("kernel.r2", (nt, tile), dtype)
        acc_buf = ws.take("kernel.acc", (nt, 3), dtype)
        n_tiles = 0
        for t0 in range(0, ns, wg_size):
            t1 = min(t0 + wg_size, ns)
            k = t1 - t0
            # cooperative load into local memory (barrier), then the tile loop
            lds_pos[:k] = src_pos[t0:t1]
            lds_mass[:k] = src_mass[t0:t1]
            d = d_buf[:, :k]
            np.subtract(lds_pos[np.newaxis, :k, :], targets[:, np.newaxis, :], out=d)
            r2 = r2_buf[:, :k]
            np.einsum("ijk,ijk->ij", d, d, out=r2)
            r2 += eps2
            inv_r3 = r2  # in place: r2 is dead after this point
            np.power(r2, dtype(-1.5), out=inv_r3)
            inv_r3 *= lds_mass[np.newaxis, :k]
            np.einsum("ij,ijk->ik", inv_r3, d, out=acc_buf)
            acc += acc_buf
            n_tiles += 1

    if counters is not None:
        counters.interactions += nt * ns
        counters.lds_bytes += n_tiles * wg_size * BYTES_PER_BODY
        counters.global_bytes += (
            n_tiles * wg_size * BYTES_PER_BODY  # tile loads
            + nt * BYTES_PER_BODY  # own-body loads
            + nt * BYTES_PER_ACCEL  # acceleration stores
        )
        counters.barriers += 2 * n_tiles
    if G != 1.0:
        acc *= dtype(G)
    return acc


def tile_loop_work(
    label: str,
    *,
    active_threads: int,
    n_sources: int,
    wg_size: int,
    wavefront_size: int,
) -> WorkGroupWork:
    """Work record for a *thread-per-body* tiled loop (i, j and w plans).

    Each of the ``active_threads`` i-threads serially processes all
    ``n_sources`` tile entries.  Partially-filled wavefronts issue at full
    width, so idle lanes are charged — this is the w-parallel efficiency
    loss the paper identifies.
    """
    if active_threads < 1:
        raise ValueError(f"active_threads must be >= 1, got {active_threads}")
    if n_sources < 0:
        raise ValueError(f"n_sources must be >= 0, got {n_sources}")
    wf = active_wavefronts(active_threads, wavefront_size)
    tiles = math.ceil(n_sources / wg_size) if n_sources else 0
    return WorkGroupWork(
        label=label,
        interactions=active_threads * n_sources,
        issued_interactions=wf * wavefront_size * n_sources,
        active_threads=active_threads,
        tiles=tiles,
        global_bytes=(
            tiles * wg_size * BYTES_PER_BODY
            + active_threads * (BYTES_PER_BODY + BYTES_PER_ACCEL)
        ),
        lds_bytes_peak=wg_size * BYTES_PER_BODY,
        barriers=2 * tiles,
    )


def packed_tile_loop_work(
    label: str,
    *,
    n_targets: int,
    n_sources: int,
    wg_size: int,
    wavefront_size: int,
) -> WorkGroupWork:
    """Work record for the jw plan's *packed* (i x j) thread mapping.

    The ``n_targets * n_sources`` interaction rectangle is flattened
    across all ``wg_size`` threads, so only the final partial wavefront
    carries padding; the j-direction split requires a local-memory
    reduction of ``n_targets * splits`` partial accelerations.
    """
    if n_targets < 1:
        raise ValueError(f"n_targets must be >= 1, got {n_targets}")
    if n_sources < 0:
        raise ValueError(f"n_sources must be >= 0, got {n_sources}")
    total = n_targets * n_sources
    slots = math.ceil(total / wg_size) if total else 0
    issued = active_wavefronts(wg_size, wavefront_size) * wavefront_size * slots
    splits = max(1, wg_size // max(1, n_targets))
    tiles = math.ceil(n_sources / wg_size) if n_sources else 0
    return WorkGroupWork(
        label=label,
        interactions=total,
        issued_interactions=issued,
        active_threads=min(wg_size, max(1, total)),
        tiles=tiles,
        global_bytes=(
            tiles * wg_size * BYTES_PER_BODY
            + n_targets * (BYTES_PER_BODY + BYTES_PER_ACCEL)
        ),
        lds_bytes_peak=wg_size * BYTES_PER_BODY + n_targets * splits * BYTES_PER_ACCEL,
        barriers=2 * tiles + int(math.log2(max(2, splits))),
        reduction_ops=n_targets * splits,
    )


def reduction_work(
    label: str,
    *,
    n_outputs: int,
    n_partials_per_output: int,
    wg_size: int,
    wavefront_size: int,
) -> WorkGroupWork:
    """Work record for a j-parallel partial-force reduction work-group.

    Memory-bound: reads ``n_outputs * n_partials_per_output`` partial
    accelerations from global memory and writes ``n_outputs`` results.
    """
    if n_outputs < 1:
        raise ValueError(f"n_outputs must be >= 1, got {n_outputs}")
    if n_partials_per_output < 1:
        raise ValueError(
            f"n_partials_per_output must be >= 1, got {n_partials_per_output}"
        )
    wf = active_wavefronts(min(n_outputs, wg_size), wavefront_size)
    return WorkGroupWork(
        label=label,
        interactions=0,
        issued_interactions=0,
        active_threads=min(n_outputs, wg_size),
        tiles=0,
        global_bytes=n_outputs * (n_partials_per_output + 1) * BYTES_PER_ACCEL,
        lds_bytes_peak=0,
        barriers=0,
        reduction_ops=n_outputs * n_partials_per_output,
    )

"""Kernel-launch descriptions: NDRange geometry and per-work-group work.

A :class:`KernelLaunch` is the interface between the plans (which know how
to enumerate work) and the timing engine (which knows how long work takes).
Each :class:`WorkGroupWork` records the *actual* work one work-group
performs — derived from the same interaction lists the functional kernels
evaluate, so timing and physics always describe the same computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import LaunchError
from repro.gpu.device import DeviceSpec

__all__ = ["NDRange", "WorkGroupWork", "KernelLaunch"]


@dataclass(frozen=True)
class NDRange:
    """OpenCL-style 1-D launch geometry."""

    global_size: int
    local_size: int

    def __post_init__(self) -> None:
        if self.local_size < 1:
            raise LaunchError(f"local_size must be >= 1, got {self.local_size}")
        if self.global_size < 1:
            raise LaunchError(f"global_size must be >= 1, got {self.global_size}")
        if self.global_size % self.local_size != 0:
            raise LaunchError(
                f"global_size {self.global_size} not a multiple of "
                f"local_size {self.local_size}"
            )

    @property
    def n_workgroups(self) -> int:
        """Number of work-groups in the launch."""
        return self.global_size // self.local_size

    def validate_on(self, device: DeviceSpec) -> None:
        """Check the geometry is launchable on ``device``."""
        device.validate_workgroup(self.local_size)


@dataclass
class WorkGroupWork:
    """Work performed by a single work-group.

    ``interactions`` counts useful body-source evaluations;
    ``issued_interactions`` additionally includes SIMT padding (idle lanes
    in partially-filled wavefronts, divergence serialisation) and is what
    compute time is charged on.  ``issued_interactions >= interactions``.
    """

    label: str
    interactions: int
    issued_interactions: int
    active_threads: int
    tiles: int = 0
    global_bytes: int = 0
    lds_bytes_peak: int = 0
    barriers: int = 0
    reduction_ops: int = 0

    def __post_init__(self) -> None:
        if self.interactions < 0 or self.issued_interactions < self.interactions:
            raise LaunchError(
                f"issued_interactions ({self.issued_interactions}) must be >= "
                f"interactions ({self.interactions}) >= 0"
            )
        if self.active_threads < 1:
            raise LaunchError("a work-group must have at least one active thread")

    @property
    def padding_fraction(self) -> float:
        """Fraction of issued work that is SIMT padding (0 = perfectly packed)."""
        if self.issued_interactions == 0:
            return 0.0
        return 1.0 - self.interactions / self.issued_interactions


@dataclass
class KernelLaunch:
    """One kernel dispatch: geometry plus per-work-group work records."""

    name: str
    wg_size: int
    workgroups: list[WorkGroupWork] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.wg_size < 1:
            raise LaunchError(f"wg_size must be >= 1, got {self.wg_size}")
        if not self.workgroups:
            raise LaunchError(f"kernel '{self.name}' has no work-groups")
        for wg in self.workgroups:
            if wg.active_threads > self.wg_size:
                raise LaunchError(
                    f"work-group '{wg.label}' has {wg.active_threads} active "
                    f"threads but wg_size is {self.wg_size}"
                )
        if obs.enabled:
            obs.instant(
                "kernel_launch",
                kernel=self.name,
                wg_size=self.wg_size,
                n_workgroups=self.n_workgroups,
                interactions=self.total_interactions,
                issued_interactions=self.total_issued_interactions,
            )

    @property
    def n_workgroups(self) -> int:
        """Number of work-groups in this launch."""
        return len(self.workgroups)

    @property
    def total_interactions(self) -> int:
        """Useful interactions across all work-groups."""
        return sum(w.interactions for w in self.workgroups)

    @property
    def total_issued_interactions(self) -> int:
        """Issued (padding-inclusive) interactions across all work-groups."""
        return sum(w.issued_interactions for w in self.workgroups)

    @property
    def total_global_bytes(self) -> int:
        """Global-memory traffic across all work-groups."""
        return sum(w.global_bytes for w in self.workgroups)

    @property
    def max_lds_bytes(self) -> int:
        """Peak per-work-group LDS usage (occupancy input)."""
        return max(w.lds_bytes_peak for w in self.workgroups)

    def validate_on(self, device: DeviceSpec) -> None:
        """Check geometry and LDS usage against device limits."""
        device.validate_workgroup(self.wg_size)
        if self.max_lds_bytes > device.lds_bytes_per_cu:
            raise LaunchError(
                f"kernel '{self.name}' needs {self.max_lds_bytes} B LDS per "
                f"work-group; {device.name} has {device.lds_bytes_per_cu} B"
            )

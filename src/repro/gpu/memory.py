"""Memory-system model: host<->device transfers and local-memory budgets.

Bodies move across PCIe and through local memory as ``float4`` records
(x, y, z, m) exactly as the OpenCL kernels in the paper store them, so all
byte accounting uses 16-byte body and acceleration records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpu.device import DeviceSpec

__all__ = [
    "BYTES_PER_BODY",
    "BYTES_PER_ACCEL",
    "transfer_time",
    "body_transfer_time",
    "lds_tile_capacity",
    "check_lds_fit",
    "TransferLog",
]

#: One body record on the device: float4 (x, y, z, mass), 4 x 4 bytes.
BYTES_PER_BODY = 16

#: One acceleration record: float4 (ax, ay, az, pad).
BYTES_PER_ACCEL = 16


def transfer_time(device: DeviceSpec, n_bytes: int) -> float:
    """Seconds to move ``n_bytes`` across PCIe (latency + bandwidth)."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    if n_bytes == 0:
        return 0.0
    return device.pcie_latency_s + n_bytes / device.pcie_bandwidth_bytes_s


def body_transfer_time(device: DeviceSpec, n_bodies: int) -> float:
    """Seconds to move ``n_bodies`` body records across PCIe."""
    return transfer_time(device, n_bodies * BYTES_PER_BODY)


def lds_tile_capacity(device: DeviceSpec, item_bytes: int = BYTES_PER_BODY) -> int:
    """Maximum number of items a single work-group tile can stage in LDS."""
    if item_bytes <= 0:
        raise ValueError(f"item_bytes must be positive, got {item_bytes}")
    return device.lds_bytes_per_cu // item_bytes


def check_lds_fit(device: DeviceSpec, n_bytes: int) -> None:
    """Raise :class:`DeviceError` when a tile exceeds the LDS capacity."""
    if n_bytes > device.lds_bytes_per_cu:
        raise DeviceError(
            f"tile of {n_bytes} B exceeds LDS capacity "
            f"{device.lds_bytes_per_cu} B on {device.name}"
        )


@dataclass
class TransferLog:
    """Accumulates host<->device traffic for one simulation step."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    n_transfers: int = 0

    def host_to_device(self, n_bytes: int) -> None:
        """Record an upload."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        self.h2d_bytes += n_bytes
        self.n_transfers += 1

    def device_to_host(self, n_bytes: int) -> None:
        """Record a download."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        self.d2h_bytes += n_bytes
        self.n_transfers += 1

    def total_time(self, device: DeviceSpec) -> float:
        """Seconds for all logged transfers (latency charged per transfer)."""
        bw_time = (self.h2d_bytes + self.d2h_bytes) / device.pcie_bandwidth_bytes_s
        return self.n_transfers * device.pcie_latency_s + bw_time

"""Occupancy model: resident wavefronts and latency-hiding efficiency.

A compute unit hides memory and pipeline latency by multiplexing resident
wavefronts; with fewer than ``device.latency_hiding_wavefronts`` residents
its issue rate degrades proportionally.  Occupancy is limited by the
work-group geometry (wavefronts per work-group), by LDS usage, and — the
effect at the heart of the paper's small-N analysis — by simply not having
enough work-groups to fill the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpu.device import DeviceSpec

__all__ = ["OccupancyInfo", "kernel_occupancy"]

#: Hardware cap on simultaneously-resident work-groups per CU.
MAX_WORKGROUPS_PER_CU = 8


@dataclass(frozen=True)
class OccupancyInfo:
    """Occupancy of one kernel launch on one device.

    ``latency_efficiency`` is the throughput multiplier (<= 1) the timing
    engine applies to compute cycles; ``cu_utilization`` is the fraction
    of CUs that receive any work at all.
    """

    wavefronts_per_workgroup: int
    workgroups_per_cu_limit: int
    resident_wavefronts: int
    latency_efficiency: float
    cu_utilization: float

    @property
    def occupancy(self) -> float:
        """Resident wavefronts over the architectural maximum (diagnostic)."""
        return self.resident_wavefronts and min(1.0, self.resident_wavefronts)  # pragma: no cover


def kernel_occupancy(
    device: DeviceSpec,
    *,
    wg_size: int,
    n_workgroups: int,
    lds_bytes_per_wg: int = 0,
) -> OccupancyInfo:
    """Occupancy of a launch of ``n_workgroups`` groups of ``wg_size`` items.

    Raises :class:`DeviceError` for unlaunchable geometry.
    """
    device.validate_workgroup(wg_size)
    if n_workgroups < 1:
        raise DeviceError(f"n_workgroups must be >= 1, got {n_workgroups}")
    if lds_bytes_per_wg < 0:
        raise DeviceError(f"lds_bytes_per_wg must be >= 0, got {lds_bytes_per_wg}")
    if lds_bytes_per_wg > device.lds_bytes_per_cu:
        raise DeviceError(
            f"work-group LDS usage {lds_bytes_per_wg} B exceeds per-CU capacity"
        )

    wf_per_wg = math.ceil(wg_size / device.wavefront_size)
    limit = min(
        MAX_WORKGROUPS_PER_CU,
        device.max_wavefronts_per_cu // wf_per_wg,
    )
    if lds_bytes_per_wg > 0:
        limit = min(limit, device.lds_bytes_per_cu // lds_bytes_per_wg)
    limit = max(limit, 1)

    # How many work-groups can actually sit on one CU given the launch size:
    # with fewer groups than CUs, busy CUs hold exactly one.
    avg_per_cu = n_workgroups / device.compute_units
    resident_wgs = max(1, min(limit, math.floor(avg_per_cu)))
    resident_wf = resident_wgs * wf_per_wg

    latency_eff = min(1.0, resident_wf / device.latency_hiding_wavefronts)
    cu_util = min(1.0, n_workgroups / device.compute_units)
    return OccupancyInfo(
        wavefronts_per_workgroup=wf_per_wg,
        workgroups_per_cu_limit=limit,
        resident_wavefronts=resident_wf,
        latency_efficiency=latency_eff,
        cu_utilization=cu_util,
    )

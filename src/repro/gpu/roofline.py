"""Roofline analysis of kernel launches on the simulated device.

Places each kernel on the classic roofline: arithmetic intensity
(flops per byte of global traffic) against the device's compute peak and
bandwidth ceiling.  The N-body tile kernels are famously compute-bound
(local-memory staging gives them very high intensity); the j-parallel
reduction pass is bandwidth-bound — the roofline makes both placements,
and the headroom each kernel leaves, quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.launch import KernelLaunch
from repro.nbody.flops import DEFAULT_FLOPS_PER_INTERACTION

__all__ = ["RooflinePoint", "roofline_point", "ridge_intensity"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's placement on the device roofline."""

    kernel: str
    flops: float
    global_bytes: float
    attainable_flops_s: float
    peak_flops_s: float

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of global-memory traffic."""
        if self.global_bytes == 0:
            return float("inf")
        return self.flops / self.global_bytes

    @property
    def compute_bound(self) -> bool:
        """True when the compute ceiling, not bandwidth, limits the kernel."""
        return self.attainable_flops_s >= self.peak_flops_s

    @property
    def efficiency_ceiling(self) -> float:
        """Fraction of device peak this kernel could at best achieve."""
        return min(1.0, self.attainable_flops_s / self.peak_flops_s)


def ridge_intensity(
    device: DeviceSpec,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> float:
    """The roofline ridge point: intensity where bandwidth stops limiting.

    Below this many flops/byte a kernel is memory-bound on this device.
    The "peak" used is the device's *sustained* N-body rate (the relevant
    ceiling for these kernels), not the theoretical MAD peak.
    """
    sustained = device.sustained_interaction_rate * flops_per_interaction
    return sustained / device.global_bandwidth_bytes_s


def roofline_point(
    device: DeviceSpec,
    launch: KernelLaunch,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> RooflinePoint:
    """Place a kernel launch on the device roofline.

    ``attainable = min(sustained_peak, intensity * bandwidth)`` — the
    classic roofline formula with the sustained N-body rate as the
    compute ceiling.
    """
    flops = float(launch.total_interactions) * flops_per_interaction
    gbytes = float(launch.total_global_bytes)
    sustained = device.sustained_interaction_rate * flops_per_interaction
    if gbytes == 0:
        attainable = sustained
    else:
        attainable = min(sustained, flops / gbytes * device.global_bandwidth_bytes_s)
    return RooflinePoint(
        kernel=launch.name,
        flops=flops,
        global_bytes=gbytes,
        attainable_flops_s=attainable,
        peak_flops_s=sustained,
    )

"""Timing engine: work-group costs, CU scheduling, kernel makespan.

The engine converts the *actual* per-work-group work recorded in a
:class:`~repro.gpu.launch.KernelLaunch` into engine cycles, then schedules
the work-groups onto compute units the way the hardware dispatcher does
(greedy, earliest-available CU) and reports the makespan.  The occupancy
model scales compute throughput when too few wavefronts are resident —
which is the mechanism behind the paper's small-N results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from repro.gpu.launch import KernelLaunch, WorkGroupWork
from repro.gpu.occupancy import OccupancyInfo, kernel_occupancy

__all__ = [
    "BARRIER_CYCLES",
    "WG_DISPATCH_CYCLES",
    "workgroup_cycles",
    "greedy_schedule",
    "round_robin_schedule",
    "KernelTiming",
    "time_kernel",
]

#: Cost of one work-group barrier (drain + re-issue of resident wavefronts).
BARRIER_CYCLES = 40.0

#: Per-work-group dispatch/teardown cost on the device.
WG_DISPATCH_CYCLES = 600.0


def workgroup_cycles(
    device: DeviceSpec, wg: WorkGroupWork, latency_efficiency: float
) -> float:
    """Engine cycles one work-group occupies its compute unit for.

    Compute and global-memory streams overlap (the CU hides whichever is
    shorter), barriers and reductions serialise, and every group pays a
    fixed dispatch cost.
    """
    if not 0.0 < latency_efficiency <= 1.0:
        raise ConfigurationError(
            f"latency_efficiency must be in (0, 1], got {latency_efficiency}"
        )
    compute = wg.issued_interactions / device.interactions_per_cycle_per_cu
    compute /= latency_efficiency
    mem = wg.global_bytes / device.global_bytes_per_cycle_per_cu
    sync = wg.barriers * BARRIER_CYCLES
    # reductions retire one op per stream core per interaction-equivalent slot
    red = (
        wg.reduction_ops * device.interaction_cycles / device.stream_cores_per_cu / 4.0
    )
    return max(compute, mem) + sync + red + WG_DISPATCH_CYCLES


def greedy_schedule(costs: np.ndarray, n_workers: int) -> tuple[float, np.ndarray]:
    """Hardware-style dispatch: each item goes to the earliest-free worker.

    Items are dispatched **in submission order** (this is what a GPU block
    scheduler or a dynamic work queue does).  Returns
    ``(makespan, per_worker_busy_time)``.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0, np.zeros(n_workers)
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    busy = np.zeros(n_workers)
    finish = 0.0
    for c in costs:
        t, w = heapq.heappop(heap)
        t_new = t + float(c)
        busy[w] += float(c)
        finish = max(finish, t_new)
        heapq.heappush(heap, (t_new, w))
    return finish, busy


def round_robin_schedule(costs: np.ndarray, n_workers: int) -> tuple[float, np.ndarray]:
    """Static pre-assignment: item ``k`` goes to worker ``k % n_workers``.

    The contrast case for the dynamic-queue ablation — skewed work piles
    onto unlucky workers.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    costs = np.asarray(costs, dtype=np.float64)
    busy = np.zeros(n_workers)
    for k, c in enumerate(costs):
        busy[k % n_workers] += float(c)
    return float(busy.max(initial=0.0)), busy


@dataclass(frozen=True)
class KernelTiming:
    """Result of timing one kernel launch."""

    name: str
    seconds: float
    makespan_cycles: float
    occupancy: OccupancyInfo
    n_workgroups: int
    total_interactions: int
    total_issued_interactions: int
    cu_busy_fraction: float

    @property
    def device_seconds(self) -> float:
        """Pure device-side time (excludes the host launch overhead)."""
        return self.seconds


def time_kernel(
    device: DeviceSpec,
    launch: KernelLaunch,
    *,
    schedule: str = "hardware",
    include_launch_overhead: bool = True,
) -> KernelTiming:
    """Simulate the execution time of ``launch`` on ``device``.

    Parameters
    ----------
    schedule:
        ``"hardware"`` — greedy earliest-free-CU dispatch (real GPUs, and
        the jw plan's dynamic walk queue); ``"static"`` — round-robin
        pre-assignment (the ablation contrast).
    """
    if schedule not in ("hardware", "static"):
        raise ConfigurationError(f"unknown schedule '{schedule}'")
    launch.validate_on(device)
    occ = kernel_occupancy(
        device,
        wg_size=launch.wg_size,
        n_workgroups=launch.n_workgroups,
        lds_bytes_per_wg=launch.max_lds_bytes,
    )
    costs = np.array(
        [workgroup_cycles(device, wg, occ.latency_efficiency) for wg in launch.workgroups]
    )
    scheduler = greedy_schedule if schedule == "hardware" else round_robin_schedule
    makespan, busy = scheduler(costs, device.compute_units)
    seconds = device.seconds(makespan)
    if include_launch_overhead:
        seconds += device.kernel_launch_overhead_s
    busy_fraction = (
        float(busy.sum() / (makespan * device.compute_units)) if makespan > 0 else 0.0
    )
    if obs.enabled:
        obs.inc("kernel_launches_total")
        obs.inc("launch_interactions_total", launch.total_interactions)
        obs.observe("launch_seconds", seconds)
        obs.set_gauge("occupancy", occ.latency_efficiency)
        obs.set_gauge("cu_busy_fraction", busy_fraction)
        obs.instant(
            "kernel_timed",
            kernel=launch.name,
            seconds=seconds,
            n_workgroups=launch.n_workgroups,
            schedule=schedule,
            occupancy=occ.latency_efficiency,
        )
    return KernelTiming(
        name=launch.name,
        seconds=seconds,
        makespan_cycles=float(makespan),
        occupancy=occ,
        n_workgroups=launch.n_workgroups,
        total_interactions=launch.total_interactions,
        total_issued_interactions=launch.total_issued_interactions,
        cu_busy_fraction=busy_fraction,
    )

"""Execution traces: per-compute-unit timelines of a kernel launch.

Where :mod:`repro.gpu.timing` reports a single makespan, this module
records *when each work-group ran on which compute unit* and renders the
timeline as an ASCII Gantt chart — which makes load imbalance (the static
w-parallel tail vs the jw dynamic queue) directly visible instead of just
aggregated into a number.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from repro.gpu.launch import KernelLaunch
from repro.gpu.occupancy import kernel_occupancy
from repro.gpu.timing import workgroup_cycles

__all__ = ["Interval", "ExecutionTrace", "trace_costs", "trace_launch"]


@dataclass(frozen=True)
class Interval:
    """One work item's execution window on one worker."""

    worker: int
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """A scheduled timeline across ``n_workers`` workers."""

    intervals: list[Interval]
    n_workers: int

    @property
    def makespan(self) -> float:
        """Completion time of the last item."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def worker_busy(self) -> np.ndarray:
        """Total busy time per worker."""
        busy = np.zeros(self.n_workers)
        for iv in self.intervals:
            busy[iv.worker] += iv.duration
        return busy

    @property
    def utilization(self) -> float:
        """Busy time over (makespan x workers)."""
        ms = self.makespan
        if ms == 0.0:
            return 1.0
        return float(self.worker_busy().sum() / (ms * self.n_workers))

    def emit_obs(
        self,
        *,
        seconds_per_unit: float = 1.0,
        base: float | None = None,
        track_prefix: str = "CU",
        **attrs,
    ) -> int:
        """Emit every interval onto the :mod:`repro.obs` simulated timeline.

        Each worker becomes one trace track (``CU00``, ``CU01``, ...), so a
        Chrome-trace viewer shows the same per-compute-unit picture as
        :meth:`gantt` — the PTPM space axis.  ``seconds_per_unit`` converts
        the trace's cost unit (cycles, interactions) to simulated seconds;
        ``base`` is the timeline offset (defaults to the current simulated
        clock).  Returns the number of intervals emitted (0 when tracing is
        disabled).
        """
        if not obs.enabled:
            return 0
        t0 = obs.sim_now() if base is None else base
        for iv in self.intervals:
            obs.sim_span(
                iv.label,
                t0 + iv.start * seconds_per_unit,
                t0 + iv.end * seconds_per_unit,
                track=f"{track_prefix}{iv.worker:02d}",
                **attrs,
            )
        return len(self.intervals)

    def gantt(self, *, width: int = 72) -> str:
        """ASCII Gantt chart: one row per worker, '#' = busy, '.' = idle."""
        if width < 10:
            raise ConfigurationError(f"width must be >= 10, got {width}")
        ms = self.makespan
        lines = []
        for w in range(self.n_workers):
            row = ["."] * width
            for iv in self.intervals:
                if iv.worker != w or ms == 0.0:
                    continue
                a = int(iv.start / ms * (width - 1))
                b = max(a + 1, int(np.ceil(iv.end / ms * (width - 1))))
                for c in range(a, min(b, width)):
                    row[c] = "#"
            lines.append(f"CU{w:02d} |{''.join(row)}|")
        lines.append(
            f"      makespan = {ms:.3g}, utilization = {self.utilization:.1%}"
        )
        return "\n".join(lines)


def trace_costs(
    costs: np.ndarray,
    n_workers: int,
    *,
    labels: list[str] | None = None,
    policy: str = "dynamic",
) -> ExecutionTrace:
    """Schedule item costs onto workers, recording the timeline.

    ``policy``: ``"dynamic"`` (earliest-free worker, FIFO — hardware
    dispatch / jw queue) or ``"static"`` (round-robin pre-assignment).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if np.any(costs < 0):
        raise ConfigurationError("costs must be non-negative")
    if labels is None:
        labels = [f"item{k}" for k in range(costs.size)]
    if len(labels) != costs.size:
        raise ConfigurationError("labels length must match costs")

    intervals: list[Interval] = []
    if policy == "dynamic":
        heap = [(0.0, w) for w in range(n_workers)]
        heapq.heapify(heap)
        for c, lab in zip(costs, labels):
            t, w = heapq.heappop(heap)
            intervals.append(Interval(w, t, t + float(c), lab))
            heapq.heappush(heap, (t + float(c), w))
    elif policy == "static":
        t_worker = np.zeros(n_workers)
        for k, (c, lab) in enumerate(zip(costs, labels)):
            w = k % n_workers
            intervals.append(Interval(w, t_worker[w], t_worker[w] + float(c), lab))
            t_worker[w] += float(c)
    else:
        raise ConfigurationError(f"unknown policy '{policy}'")
    return ExecutionTrace(intervals, n_workers)


def trace_launch(
    device: DeviceSpec, launch: KernelLaunch, *, schedule: str = "hardware"
) -> ExecutionTrace:
    """Timeline (in engine cycles) of a kernel launch on ``device``."""
    if schedule not in ("hardware", "static"):
        raise ConfigurationError(f"unknown schedule '{schedule}'")
    occ = kernel_occupancy(
        device,
        wg_size=launch.wg_size,
        n_workgroups=launch.n_workgroups,
        lds_bytes_per_wg=launch.max_lds_bytes,
    )
    costs = np.array(
        [workgroup_cycles(device, wg, occ.latency_efficiency) for wg in launch.workgroups]
    )
    labels = [wg.label for wg in launch.workgroups]
    policy = "dynamic" if schedule == "hardware" else "static"
    return trace_costs(costs, device.compute_units, labels=labels, policy=policy)

"""SIMT wavefront accounting: lane utilisation and divergence.

On a SIMT device a work-group executes as ``ceil(T / wavefront)`` lock-step
wavefronts.  Lanes beyond the active work count still occupy issue slots
*within* a partially-filled wavefront, while entirely-empty wavefronts are
simply never issued.  These two facts produce the w-parallel plan's
characteristic ~1/3 efficiency loss the paper discusses (walks rarely fill
the work-group), and they are what the jw plan's j-splitting repairs.
"""

from __future__ import annotations

import math

__all__ = ["active_wavefronts", "lane_utilization", "divergent_cycles"]


def active_wavefronts(active_items: int, wavefront_size: int) -> int:
    """Wavefronts that must issue to cover ``active_items`` work-items."""
    if wavefront_size < 1:
        raise ValueError(f"wavefront_size must be >= 1, got {wavefront_size}")
    if active_items < 0:
        raise ValueError(f"active_items must be >= 0, got {active_items}")
    return math.ceil(active_items / wavefront_size)


def lane_utilization(active_items: int, wavefront_size: int) -> float:
    """Fraction of issued lanes doing useful work (1.0 when fully packed)."""
    wf = active_wavefronts(active_items, wavefront_size)
    if wf == 0:
        return 0.0
    return active_items / (wf * wavefront_size)


def divergent_cycles(per_lane_work: list[int] | tuple[int, ...], wavefront_size: int,
                     cycles_per_unit: float) -> float:
    """Issue cycles for lanes with unequal work, SIMT-style.

    Lanes are packed into wavefronts in order; each wavefront costs the
    *maximum* of its lanes' work (inactive branches still occupy the
    wavefront), which is exactly how variable-length interaction lists
    serialise on real hardware.
    """
    if cycles_per_unit <= 0:
        raise ValueError(f"cycles_per_unit must be positive, got {cycles_per_unit}")
    total = 0.0
    work = list(per_lane_work)
    for w0 in range(0, len(work), wavefront_size):
        chunk = work[w0 : w0 + wavefront_size]
        total += max(chunk) * cycles_per_unit
    return total

"""N-body physics substrate: particles, workloads, forces, integration.

This subpackage is the ground-truth physics layer every higher level
(treecode, simulated GPU plans, benchmarks) builds on and is validated
against.
"""

from repro.nbody.particles import ParticleSet
from repro.nbody.forces import (
    DEFAULT_SOFTENING,
    accelerations_from_sources,
    direct_forces,
    direct_forces_naive,
    pairwise_force,
)
from repro.nbody.energy import (
    EnergyTracker,
    angular_momentum,
    kinetic_energy,
    momentum,
    potential_energy,
    total_energy,
    virial_ratio,
)
from repro.nbody.integrators import (
    ExplicitEuler,
    LeapfrogKDK,
    SymplecticEuler,
    VelocityVerlet,
    integrate,
)
from repro.nbody.ic import cold_disc, plummer, two_clusters, uniform_cube, uniform_sphere
from repro.nbody.flops import (
    DEFAULT_FLOPS_PER_INTERACTION,
    FLOPS_PER_INTERACTION_GEMS,
    FLOPS_PER_INTERACTION_RSQRT,
    gflops,
    interaction_flops,
    pp_step_interactions,
)
from repro.nbody.io import SnapshotSeries, load_snapshot, save_snapshot
from repro.nbody.timestep import AdaptiveLeapfrog, acceleration_timestep, suggest_timestep
from repro.nbody.units import HENON, G_NBODY, G_SI, UnitSystem

__all__ = [
    "ParticleSet",
    "DEFAULT_SOFTENING",
    "accelerations_from_sources",
    "direct_forces",
    "direct_forces_naive",
    "pairwise_force",
    "EnergyTracker",
    "angular_momentum",
    "kinetic_energy",
    "momentum",
    "potential_energy",
    "total_energy",
    "virial_ratio",
    "ExplicitEuler",
    "LeapfrogKDK",
    "SymplecticEuler",
    "VelocityVerlet",
    "integrate",
    "cold_disc",
    "plummer",
    "two_clusters",
    "uniform_cube",
    "uniform_sphere",
    "DEFAULT_FLOPS_PER_INTERACTION",
    "FLOPS_PER_INTERACTION_GEMS",
    "FLOPS_PER_INTERACTION_RSQRT",
    "gflops",
    "interaction_flops",
    "pp_step_interactions",
    "AdaptiveLeapfrog",
    "acceleration_timestep",
    "suggest_timestep",
    "SnapshotSeries",
    "load_snapshot",
    "save_snapshot",
    "HENON",
    "G_NBODY",
    "G_SI",
    "UnitSystem",
]

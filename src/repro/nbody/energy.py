"""Energy, momentum and virial diagnostics.

These are the invariants the integration tests and long-run examples check:
for an isolated system the total energy, linear momentum and angular
momentum are conserved (up to integrator truncation error), and a relaxed
system satisfies the virial relation ``2K + U ~ 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nbody.particles import ParticleSet

__all__ = [
    "kinetic_energy",
    "potential_energy",
    "total_energy",
    "momentum",
    "angular_momentum",
    "virial_ratio",
    "EnergyTracker",
]


def kinetic_energy(p: ParticleSet) -> float:
    """Total kinetic energy ``sum(m v^2) / 2``."""
    v2 = np.einsum("ij,ij->i", p.velocities, p.velocities)
    return 0.5 * float(p.masses @ v2)


def potential_energy(
    p: ParticleSet,
    *,
    softening: float = 0.0,
    G: float = 1.0,
    block: int = 2048,
) -> float:
    """Total (softened) gravitational potential energy.

    ``U = -G * sum_{i<j} m_i m_j / sqrt(r_ij^2 + eps^2)``, evaluated
    blockwise in O(N^2) time but O(N * block) memory.
    """
    pos = p.positions
    m = p.masses
    n = p.n
    eps2 = softening * softening
    u = 0.0
    for s0 in range(0, n, block):
        s1 = min(s0 + block, n)
        d = pos[s0:s1][np.newaxis, :, :] - pos[:, np.newaxis, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        with np.errstate(divide="ignore"):
            inv_r = r2 ** -0.5
        rows = np.arange(s0, s1)
        inv_r[rows, rows - s0] = 0.0  # drop self terms
        u += float(m @ inv_r @ m[s0:s1])
    return -0.5 * G * u  # each unordered pair was counted twice


def total_energy(
    p: ParticleSet, *, softening: float = 0.0, G: float = 1.0
) -> float:
    """Kinetic plus potential energy."""
    return kinetic_energy(p) + potential_energy(p, softening=softening, G=G)


def momentum(p: ParticleSet) -> np.ndarray:
    """Total linear momentum, shape ``(3,)``."""
    return p.masses @ p.velocities


def angular_momentum(p: ParticleSet) -> np.ndarray:
    """Total angular momentum about the origin, shape ``(3,)``."""
    return (p.masses[:, np.newaxis] * np.cross(p.positions, p.velocities)).sum(axis=0)


def virial_ratio(p: ParticleSet, *, softening: float = 0.0, G: float = 1.0) -> float:
    """The ratio ``-2K / U``; 1.0 for a system in virial equilibrium."""
    u = potential_energy(p, softening=softening, G=G)
    if u == 0.0:
        raise ValueError("potential energy is zero; virial ratio undefined")
    return -2.0 * kinetic_energy(p) / u


@dataclass
class EnergyTracker:
    """Records energy over a run and reports the relative drift.

    Use as an integration callback::

        tracker = EnergyTracker(softening=eps)
        integrate(..., callback=tracker)
        assert tracker.max_relative_drift() < 1e-3
    """

    softening: float = 0.0
    G: float = 1.0
    times: list[float] = field(default_factory=list)
    energies: list[float] = field(default_factory=list)

    def __call__(self, t: float, p: ParticleSet) -> None:
        self.times.append(float(t))
        self.energies.append(total_energy(p, softening=self.softening, G=self.G))

    @property
    def initial_energy(self) -> float:
        if not self.energies:
            raise ValueError("tracker has recorded no samples")
        return self.energies[0]

    def relative_drift(self) -> np.ndarray:
        """``|E(t) - E(0)| / |E(0)|`` for every recorded sample."""
        e = np.asarray(self.energies)
        e0 = self.initial_energy
        if e0 == 0.0:
            raise ValueError("initial energy is zero; relative drift undefined")
        return np.abs(e - e0) / abs(e0)

    def max_relative_drift(self) -> float:
        """Worst relative energy drift seen over the run."""
        return float(self.relative_drift().max())

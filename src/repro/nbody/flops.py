"""Floating-point-operation accounting conventions.

GFLOPS figures for N-body codes are only comparable under a stated
*flops-per-interaction* convention.  The paper follows the two conventions
common in the GPU N-body literature:

* ``FLOPS_PER_INTERACTION_GEMS = 20`` — the GPU Gems 3 / Nyland et al.
  convention: one body-body interaction (eq. (2) of the paper: three
  coordinate differences, squared distance with softening, one
  reciprocal-sqrt counted as a single flop, cube, scale, three
  multiply-adds into the accumulator) is billed at 20 flops.  This is the
  convention behind the paper's "300 GFLOPS sustained" numbers.

* ``FLOPS_PER_INTERACTION_RSQRT = 38`` — the convention used by Hamada et
  al. and by the marketing-friendly numbers in several treecode papers,
  where the reciprocal square root is billed at its Newton-iteration
  expansion cost.  The paper's quoted 431 GFLOPS peak corresponds to
  counting rsqrt this way.

All throughput numbers in :mod:`repro.perfmodel.metrics` take the
convention explicitly so both of the paper's headline figures can be
regenerated.
"""

from __future__ import annotations

#: GPU Gems 3 convention: 20 flops per body-body interaction.
FLOPS_PER_INTERACTION_GEMS = 20

#: Expanded-rsqrt convention: 38 flops per body-body interaction.
FLOPS_PER_INTERACTION_RSQRT = 38

#: The convention the paper's sustained-GFLOPS axis uses.
DEFAULT_FLOPS_PER_INTERACTION = FLOPS_PER_INTERACTION_GEMS


def interaction_flops(
    n_interactions: int | float,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> float:
    """Total flops for ``n_interactions`` body-body interactions.

    Parameters
    ----------
    n_interactions:
        Number of pairwise (i, j) force evaluations performed.  For the PP
        method over one step this is ``N * N`` (GPU implementations include
        the self-interaction, which softening renders harmless — the paper
        and GPU Gems both count it).
    flops_per_interaction:
        Billing convention; see module docstring.
    """
    if n_interactions < 0:
        raise ValueError(f"n_interactions must be >= 0, got {n_interactions}")
    return float(n_interactions) * float(flops_per_interaction)


def pp_step_interactions(n_bodies: int) -> int:
    """Interactions per time step for the all-pairs (PP) method.

    GPU PP kernels evaluate the full N x N interaction matrix including the
    (softened) self term, so the count is ``N**2`` rather than ``N*(N-1)``.
    """
    if n_bodies < 0:
        raise ValueError(f"n_bodies must be >= 0, got {n_bodies}")
    return n_bodies * n_bodies


def gflops(n_interactions: int | float, seconds: float,
           flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION) -> float:
    """Sustained GFLOPS for a run that performed ``n_interactions`` in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    return interaction_flops(n_interactions, flops_per_interaction) / seconds / 1e9

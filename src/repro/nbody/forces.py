"""Gravitational force evaluation: the particle-particle (PP) substrate.

Implements eq. (1)/(2) of the paper: softened Newtonian gravity

    a_i = G * sum_j m_j * (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)

Three implementations are provided:

* :func:`accelerations_from_sources` — the workhorse: vectorised, blocked
  targets x sources evaluation.  Every higher-level force path (direct PP,
  Barnes-Hut list evaluation, the simulated GPU kernels) funnels through
  the same arithmetic, so correctness is established once.
* :func:`direct_forces` — all-pairs forces of a set on itself (the CPU
  reference for the paper's PP method).
* :func:`direct_forces_naive` — a deliberately scalar, loop-per-pair
  implementation used only in tests as an independent oracle.

The GPU-kernel convention of including the (softening-neutralised)
self-interaction is followed by default so flop accounting matches the
paper; pass ``include_self=False`` for the mathematically minimal sum.

The blocked temporaries (``d``, ``r2``, ``inv_r3``) are drawn from a
:class:`repro.exec.workspace.Workspace` — the calling thread's local
workspace by default — so repeated force passes reuse storage instead of
re-allocating it every blocked pass.

The arithmetic itself runs on a pluggable kernel backend
(:mod:`repro.nbody.kernels`): ``backend=None`` follows the configured
selection (``repro.configure(kernel_backend=)`` / ``REPRO_KERNEL_BACKEND``,
default ``numpy``).  The ``numpy`` reference path is bit-identical to the
pre-seam implementation; compiled backends (``numba``, ``cext``) compute
the same sum with reassociated accumulation and are validated under the
``compiled-*`` oracle tolerances.

Softening enters squared: ``eps2 = softening * softening`` is computed in
float64 and rounded to the arithmetic dtype exactly once (inside the
kernel), for every dtype — the float32 paths used to square an
already-rounded float32 softening, which disagreed with the float64
definition of the same physics by an ulp-level but systematic amount.
"""

from __future__ import annotations

import numpy as np

from repro.exec.workspace import Workspace, local_workspace
from repro.nbody.kernels import KernelBackend, resolve_backend
from repro.nbody.kernels.numpy_backend import blocked_self, blocked_sources

__all__ = [
    "accelerations_from_sources",
    "active_forces",
    "direct_forces",
    "direct_forces_naive",
    "pairwise_force",
    "DEFAULT_SOFTENING",
]

#: Default Plummer softening length, a typical collisionless-simulation
#: choice for the N ~ 10^3..10^5 workloads in the paper's sweeps.
DEFAULT_SOFTENING = 1e-2


def accelerations_from_sources(
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
    block: int = 2048,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    dtype: np.dtype | type = np.float64,
    workspace: Workspace | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Accelerations exerted by point sources on target positions.

    Parameters
    ----------
    targets:
        ``(nt, 3)`` target positions.
    src_pos, src_mass:
        ``(ns, 3)`` source positions and ``(ns,)`` source masses.
    softening:
        Plummer softening length ``eps``; distances enter as
        ``r^2 + eps^2``.
    G:
        Gravitational constant.
    block:
        Number of source columns processed per blocked pass — bounds the
        temporary to ``nt x block`` so large problems stay cache-friendly
        instead of materialising the full ``nt x ns`` matrix.
    out:
        Optional pre-allocated ``(nt, 3)`` output of dtype ``dtype``;
        anything else raises :class:`ValueError` (a mismatched ``out``
        would silently truncate results through the in-place ``+=``).
    accumulate:
        When true, add into ``out`` instead of overwriting (used by tiled
        device kernels that stage sources through local memory).
    dtype:
        Arithmetic precision; device kernels use ``float32``.
    workspace:
        Scratch-buffer pool for the blocked temporaries; defaults to the
        calling thread's :func:`~repro.exec.workspace.local_workspace`.
    backend:
        Kernel backend (name, instance, or ``None`` for the configured
        selection).  Unavailable backends degrade to ``numpy`` with a
        one-time warning; see :func:`repro.nbody.kernels.resolve_backend`.

    Returns
    -------
    ``(nt, 3)`` array of accelerations.
    """
    targets = np.asarray(targets, dtype=dtype)
    src_pos = np.asarray(src_pos, dtype=dtype)
    src_mass = np.asarray(src_mass, dtype=dtype)
    if targets.ndim != 2 or targets.shape[1] != 3:
        raise ValueError(f"targets must be (nt, 3), got {targets.shape}")
    if src_pos.ndim != 2 or src_pos.shape[1] != 3:
        raise ValueError(f"src_pos must be (ns, 3), got {src_pos.shape}")
    if src_mass.shape != (src_pos.shape[0],):
        raise ValueError(
            f"src_mass must be ({src_pos.shape[0]},), got {src_mass.shape}"
        )
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")

    nt = targets.shape[0]
    ns = src_pos.shape[0]
    if out is None:
        out = np.zeros((nt, 3), dtype=dtype)
        accumulate = True  # freshly zeroed: accumulate == overwrite
    else:
        if not isinstance(out, np.ndarray):
            raise ValueError(f"out must be an ndarray, got {type(out).__name__}")
        if out.shape != (nt, 3):
            raise ValueError(f"out must have shape ({nt}, 3), got {out.shape}")
        if out.dtype != np.dtype(dtype):
            raise ValueError(
                f"out dtype {out.dtype} does not match arithmetic dtype "
                f"{np.dtype(dtype)}"
            )
        if not accumulate:
            out[:] = 0.0
    # Squared in float64 regardless of the arithmetic dtype; the kernel
    # rounds it to `dtype` exactly once (square-then-cast policy).
    eps2 = softening * softening

    kb = resolve_backend(backend)
    if kb.kind != "reference":
        # Compiled/array-module path: contiguous inputs, G scaled at the
        # end over the whole accumulator (same semantics as the numpy
        # path, which matters when accumulate=True composes passes).
        _dispatch_sources(kb, targets, src_pos, src_mass, eps2=eps2, out=out)
    else:
        ws = workspace if workspace is not None else local_workspace()
        blocked_sources(
            targets, src_pos, src_mass,
            eps2=eps2, dtype=dtype, block=block, out=out, workspace=ws,
        )
    if G != 1.0:
        out *= dtype(G)
    return out


def _dispatch_sources(
    kb: KernelBackend,
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    *,
    eps2: float,
    out: np.ndarray,
) -> np.ndarray:
    """Run ``kb.sources`` accumulating into ``out`` (G handled by caller).

    Compiled kernels address raw buffers, so inputs are made C-contiguous
    and a non-contiguous ``out`` is staged through a dense temporary.
    """
    targets = np.ascontiguousarray(targets)
    src_pos = np.ascontiguousarray(src_pos)
    src_mass = np.ascontiguousarray(src_mass)
    if out.flags.c_contiguous:
        kb.sources(
            targets, src_pos, src_mass, eps2=eps2, out=out, accumulate=True
        )
        return out
    tmp = np.empty(out.shape, dtype=out.dtype)
    kb.sources(targets, src_pos, src_mass, eps2=eps2, out=tmp, accumulate=False)
    out += tmp
    return out


def direct_forces(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
    block: int = 2048,
    include_self: bool = True,
    dtype: np.dtype | type = np.float64,
    workspace: Workspace | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """All-pairs accelerations of a particle set on itself (O(N^2)).

    With ``include_self=True`` (default, matching the GPU kernels) the
    i == j term is evaluated; it contributes exactly zero because the
    displacement is zero, softening only prevents the division blowing up.

    With ``include_self=False`` and ``softening == 0`` coincident
    *distinct* bodies have no finite pair force; each block is validated
    *before* its contribution is summed and the offending global
    ``(i, j)`` index pairs are named in the raised
    :class:`~repro.nbody.kernels.CoincidentPairError` (a
    :class:`ValueError`), rather than silently propagating ``inf``/``nan``
    accelerations or misattributing them to earlier blocks.
    """
    positions = np.asarray(positions, dtype=dtype)
    masses = np.asarray(masses, dtype=dtype)
    if include_self:
        return accelerations_from_sources(
            positions, positions, masses,
            softening=softening, G=G, block=block, dtype=dtype,
            workspace=workspace, backend=backend,
        )
    # Exclude the diagonal explicitly: evaluate blocked and mask the i == j
    # slot (its force is identically zero); for softening == 0 any *other*
    # zero distance is a coincident distinct pair — an error, not a nan.
    n = positions.shape[0]
    acc = np.zeros((n, 3), dtype=dtype)
    eps2 = softening * softening
    kb = resolve_backend(backend)
    if kb.kind != "reference":
        kb.self_forces(
            np.ascontiguousarray(positions),
            np.ascontiguousarray(masses),
            eps2=eps2,
            out=acc,
        )
    else:
        ws = workspace if workspace is not None else local_workspace()
        blocked_self(
            positions, masses,
            eps2=eps2, dtype=dtype, block=block, out=acc, workspace=ws,
        )
    if G != 1.0:
        acc *= dtype(G)
    return acc


def active_forces(
    positions: np.ndarray,
    masses: np.ndarray,
    active: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
    block: int = 2048,
    dtype: np.dtype | type = np.float64,
    workspace: Workspace | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Accelerations on the ``active`` subset from *all* bodies.

    The masked rectangle evaluation used by block timesteps: targets are
    the compacted active rows, sources are the full set.  Follows the
    include-self convention of :func:`direct_forces` (the i == i term is
    identically zero under positive softening), so row ``k`` of the
    result is **bit-identical** to row ``active[k]`` of the corresponding
    full evaluation on every backend: the source-side accumulation order
    depends only on the source set and blocking, never on how targets are
    grouped.

    ``active`` is an integer index array (``np.flatnonzero`` of a rung
    mask); an empty selection returns an empty ``(0, 3)`` array without
    touching the kernel.
    """
    active = np.asarray(active)
    if active.dtype == np.bool_:
        active = np.flatnonzero(active)
    if active.size == 0:
        return np.zeros((0, 3), dtype=dtype)
    positions = np.asarray(positions, dtype=dtype)
    return accelerations_from_sources(
        positions[active], positions, masses,
        softening=softening, G=G, block=block, dtype=dtype,
        workspace=workspace, backend=backend,
    )


def direct_forces_naive(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
) -> np.ndarray:
    """Scalar, loop-per-pair reference used as an independent test oracle.

    O(N^2) in pure Python — keep N small (tests use N <= ~128).
    """
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    n = positions.shape[0]
    acc = np.zeros((n, 3))
    eps2 = softening * softening
    for i in range(n):
        xi, yi, zi = positions[i]
        ax = ay = az = 0.0
        for j in range(n):
            if j == i:
                continue
            dx = positions[j, 0] - xi
            dy = positions[j, 1] - yi
            dz = positions[j, 2] - zi
            r2 = dx * dx + dy * dy + dz * dz + eps2
            inv_r3 = 1.0 / (r2 * np.sqrt(r2))
            w = masses[j] * inv_r3
            ax += w * dx
            ay += w * dy
            az += w * dz
        acc[i] = (ax, ay, az)
    return G * acc


def pairwise_force(
    x_i: np.ndarray,
    x_j: np.ndarray,
    m_i: float,
    m_j: float,
    *,
    softening: float = 0.0,
    G: float = 1.0,
) -> np.ndarray:
    """Force vector **on body i** exerted by body j — eq. (1) of the paper.

    ``f_ij = G * m_i * m_j * (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)``
    """
    x_i = np.asarray(x_i, dtype=np.float64)
    x_j = np.asarray(x_j, dtype=np.float64)
    d = x_j - x_i
    r2 = float(d @ d) + softening * softening
    if r2 == 0.0:
        raise ValueError("coincident bodies with zero softening have undefined force")
    return G * m_i * m_j * d / r2**1.5

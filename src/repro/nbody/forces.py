"""Gravitational force evaluation: the particle-particle (PP) substrate.

Implements eq. (1)/(2) of the paper: softened Newtonian gravity

    a_i = G * sum_j m_j * (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)

Three implementations are provided:

* :func:`accelerations_from_sources` — the workhorse: vectorised, blocked
  targets x sources evaluation.  Every higher-level force path (direct PP,
  Barnes-Hut list evaluation, the simulated GPU kernels) funnels through
  the same arithmetic, so correctness is established once.
* :func:`direct_forces` — all-pairs forces of a set on itself (the CPU
  reference for the paper's PP method).
* :func:`direct_forces_naive` — a deliberately scalar, loop-per-pair
  implementation used only in tests as an independent oracle.

The GPU-kernel convention of including the (softening-neutralised)
self-interaction is followed by default so flop accounting matches the
paper; pass ``include_self=False`` for the mathematically minimal sum.

The blocked temporaries (``d``, ``r2``, ``inv_r3``) are drawn from a
:class:`repro.exec.workspace.Workspace` — the calling thread's local
workspace by default — so repeated force passes reuse storage instead of
re-allocating it every blocked pass.
"""

from __future__ import annotations

import numpy as np

from repro.exec.workspace import Workspace, local_workspace

__all__ = [
    "accelerations_from_sources",
    "direct_forces",
    "direct_forces_naive",
    "pairwise_force",
    "DEFAULT_SOFTENING",
]

#: Default Plummer softening length, a typical collisionless-simulation
#: choice for the N ~ 10^3..10^5 workloads in the paper's sweeps.
DEFAULT_SOFTENING = 1e-2


def accelerations_from_sources(
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
    block: int = 2048,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    dtype: np.dtype | type = np.float64,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Accelerations exerted by point sources on target positions.

    Parameters
    ----------
    targets:
        ``(nt, 3)`` target positions.
    src_pos, src_mass:
        ``(ns, 3)`` source positions and ``(ns,)`` source masses.
    softening:
        Plummer softening length ``eps``; distances enter as
        ``r^2 + eps^2``.
    G:
        Gravitational constant.
    block:
        Number of source columns processed per blocked pass — bounds the
        temporary to ``nt x block`` so large problems stay cache-friendly
        instead of materialising the full ``nt x ns`` matrix.
    out:
        Optional pre-allocated ``(nt, 3)`` output of dtype ``dtype``;
        anything else raises :class:`ValueError` (a mismatched ``out``
        would silently truncate results through the in-place ``+=``).
    accumulate:
        When true, add into ``out`` instead of overwriting (used by tiled
        device kernels that stage sources through local memory).
    dtype:
        Arithmetic precision; device kernels use ``float32``.
    workspace:
        Scratch-buffer pool for the blocked temporaries; defaults to the
        calling thread's :func:`~repro.exec.workspace.local_workspace`.

    Returns
    -------
    ``(nt, 3)`` array of accelerations.
    """
    targets = np.asarray(targets, dtype=dtype)
    src_pos = np.asarray(src_pos, dtype=dtype)
    src_mass = np.asarray(src_mass, dtype=dtype)
    if targets.ndim != 2 or targets.shape[1] != 3:
        raise ValueError(f"targets must be (nt, 3), got {targets.shape}")
    if src_pos.ndim != 2 or src_pos.shape[1] != 3:
        raise ValueError(f"src_pos must be (ns, 3), got {src_pos.shape}")
    if src_mass.shape != (src_pos.shape[0],):
        raise ValueError(
            f"src_mass must be ({src_pos.shape[0]},), got {src_mass.shape}"
        )
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")

    nt = targets.shape[0]
    ns = src_pos.shape[0]
    if out is None:
        out = np.zeros((nt, 3), dtype=dtype)
        accumulate = True  # freshly zeroed: accumulate == overwrite
    else:
        if not isinstance(out, np.ndarray):
            raise ValueError(f"out must be an ndarray, got {type(out).__name__}")
        if out.shape != (nt, 3):
            raise ValueError(f"out must have shape ({nt}, 3), got {out.shape}")
        if out.dtype != np.dtype(dtype):
            raise ValueError(
                f"out dtype {out.dtype} does not match arithmetic dtype "
                f"{np.dtype(dtype)}"
            )
        if not accumulate:
            out[:] = 0.0
    eps2 = dtype(softening) * dtype(softening) if dtype is not np.float64 else softening**2

    ws = workspace if workspace is not None else local_workspace()
    nb = min(block, ns)
    d_buf = ws.take("forces.d", (nt, nb, 3), dtype)
    r2_buf = ws.take("forces.r2", (nt, nb), dtype)
    w_buf = ws.take("forces.inv_r3", (nt, nb), dtype)
    acc_buf = ws.take("forces.acc", (nt, 3), dtype)
    for s0 in range(0, ns, block):
        s1 = min(s0 + block, ns)
        k = s1 - s0
        # (nt, k, 3) displacement block
        d = d_buf[:, :k]
        np.subtract(src_pos[s0:s1][np.newaxis, :, :], targets[:, np.newaxis, :], out=d)
        r2 = r2_buf[:, :k]
        np.einsum("ijk,ijk->ij", d, d, out=r2)
        r2 += eps2
        inv_r3 = w_buf[:, :k]
        np.power(r2, -1.5, out=inv_r3)
        inv_r3 *= src_mass[s0:s1][np.newaxis, :]  # becomes the weight w
        np.einsum("ij,ijk->ik", inv_r3, d, out=acc_buf)
        out += acc_buf
    if G != 1.0:
        out *= dtype(G)
    return out


def direct_forces(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
    block: int = 2048,
    include_self: bool = True,
    dtype: np.dtype | type = np.float64,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """All-pairs accelerations of a particle set on itself (O(N^2)).

    With ``include_self=True`` (default, matching the GPU kernels) the
    i == j term is evaluated; it contributes exactly zero because the
    displacement is zero, softening only prevents the division blowing up.

    With ``include_self=False`` and ``softening == 0`` coincident
    *distinct* bodies have no finite pair force; that is detected and
    raised as :class:`ValueError` (matching :func:`pairwise_force`) rather
    than silently propagating ``inf``/``nan`` accelerations.
    """
    positions = np.asarray(positions, dtype=dtype)
    masses = np.asarray(masses, dtype=dtype)
    if include_self:
        return accelerations_from_sources(
            positions, positions, masses,
            softening=softening, G=G, block=block, dtype=dtype,
            workspace=workspace,
        )
    # Exclude the diagonal explicitly: evaluate blocked and mask the i == j
    # slot (its force is identically zero); for softening == 0 any *other*
    # zero distance is a coincident distinct pair — an error, not a nan.
    n = positions.shape[0]
    acc = np.zeros((n, 3), dtype=dtype)
    eps2 = softening * softening
    ws = workspace if workspace is not None else local_workspace()
    nb = min(block, n)
    d_buf = ws.take("forces.d", (n, nb, 3), dtype)
    r2_buf = ws.take("forces.r2", (n, nb), dtype)
    acc_buf = ws.take("forces.acc", (n, 3), dtype)
    for s0 in range(0, n, block):
        s1 = min(s0 + block, n)
        k = s1 - s0
        d = d_buf[:, :k]
        np.subtract(
            positions[s0:s1][np.newaxis, :, :], positions[:, np.newaxis, :], out=d
        )
        r2 = r2_buf[:, :k]
        np.einsum("ijk,ijk->ij", d, d, out=r2)
        r2 += eps2
        rows = np.arange(s0, s1)
        # Masking via +inf: inf**-1.5 == 0.0 exactly, so the diagonal
        # contributes nothing — same result as zeroing inv_r3 afterwards.
        r2[rows, rows - s0] = np.inf
        if eps2 == 0.0 and not np.all(r2 > 0.0):
            raise ValueError(
                "coincident distinct bodies with zero softening have "
                "undefined force"
            )
        inv_r3 = r2  # reciprocal in place; r2 is not needed afterwards
        np.power(r2, -1.5, out=inv_r3)
        inv_r3 *= masses[s0:s1][np.newaxis, :]
        np.einsum("ij,ijk->ik", inv_r3, d, out=acc_buf)
        acc += acc_buf
    if G != 1.0:
        acc *= dtype(G)
    return acc


def direct_forces_naive(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float = DEFAULT_SOFTENING,
    G: float = 1.0,
) -> np.ndarray:
    """Scalar, loop-per-pair reference used as an independent test oracle.

    O(N^2) in pure Python — keep N small (tests use N <= ~128).
    """
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    n = positions.shape[0]
    acc = np.zeros((n, 3))
    eps2 = softening * softening
    for i in range(n):
        xi, yi, zi = positions[i]
        ax = ay = az = 0.0
        for j in range(n):
            if j == i:
                continue
            dx = positions[j, 0] - xi
            dy = positions[j, 1] - yi
            dz = positions[j, 2] - zi
            r2 = dx * dx + dy * dy + dz * dz + eps2
            inv_r3 = 1.0 / (r2 * np.sqrt(r2))
            w = masses[j] * inv_r3
            ax += w * dx
            ay += w * dy
            az += w * dz
        acc[i] = (ax, ay, az)
    return G * acc


def pairwise_force(
    x_i: np.ndarray,
    x_j: np.ndarray,
    m_i: float,
    m_j: float,
    *,
    softening: float = 0.0,
    G: float = 1.0,
) -> np.ndarray:
    """Force vector **on body i** exerted by body j — eq. (1) of the paper.

    ``f_ij = G * m_i * m_j * (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)``
    """
    x_i = np.asarray(x_i, dtype=np.float64)
    x_j = np.asarray(x_j, dtype=np.float64)
    d = x_j - x_i
    r2 = float(d @ d) + softening * softening
    if r2 == 0.0:
        raise ValueError("coincident bodies with zero softening have undefined force")
    return G * m_i * m_j * d / r2**1.5

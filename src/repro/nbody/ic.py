"""Initial-condition (workload) generators.

The paper's sweeps use generic gravitational particle distributions; the
astrophysics-standard workloads implemented here cover the spectrum the
evaluation needs:

* :func:`plummer` — the classic equilibrium cluster model (the default
  workload for every experiment; produces the realistically *non-uniform*
  density that makes tree walks variable-length, which is exactly what the
  w/jw load-balancing story is about).
* :func:`uniform_cube` / :func:`uniform_sphere` — homogeneous distributions
  (best case for static load balance; used by ablations as the contrast).
* :func:`two_clusters` — a collision setup (example workload; strongly
  bimodal density).
* :func:`cold_disc` — a rotating disc (anisotropic; stresses the octree).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.nbody.particles import ParticleSet

__all__ = [
    "plummer",
    "uniform_cube",
    "uniform_sphere",
    "two_clusters",
    "cold_disc",
]


def _check_n(n: int) -> None:
    if n <= 0:
        raise WorkloadError(f"number of bodies must be positive, got {n}")


def _random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` isotropically distributed unit vectors, shape ``(n, 3)``."""
    z = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(1.0 - z * z)
    return np.stack([s * np.cos(phi), s * np.sin(phi), z], axis=1)


def plummer(
    n: int,
    *,
    total_mass: float = 1.0,
    scale_radius: float | None = None,
    seed: int = 0,
    virialize: bool = True,
) -> ParticleSet:
    """An isotropic Plummer sphere in N-body units.

    Uses the Aarseth, Hénon & Wielen (1974) construction: radii from the
    inverse cumulative mass profile and speeds from von Neumann rejection
    sampling of the isotropic distribution function
    ``g(q) = q^2 (1 - q^2)^(7/2)``.

    Parameters
    ----------
    scale_radius:
        Plummer scale length ``a``.  Default is the Hénon-unit value
        ``3*pi/16`` which gives total energy -1/4 for unit mass.
    virialize:
        Shift to the centre-of-mass frame after sampling so the cluster is
        exactly at rest at the origin.
    """
    _check_n(n)
    if total_mass <= 0.0:
        raise WorkloadError(f"total_mass must be positive, got {total_mass}")
    if scale_radius is None:
        scale_radius = 3.0 * np.pi / 16.0
    if scale_radius <= 0.0:
        raise WorkloadError(f"scale_radius must be positive, got {scale_radius}")
    rng = np.random.default_rng(seed)

    # --- positions: invert M(r)/M = (1 + a^2/r^2)^(-3/2)
    # Avoid the extreme tail (classic practice: clip the mass fraction) so a
    # single far-flung body cannot dominate the bounding cube.
    mfrac = rng.uniform(0.0, 0.999, n)
    r = scale_radius / np.sqrt(mfrac ** (-2.0 / 3.0) - 1.0)
    pos = r[:, np.newaxis] * _random_unit_vectors(rng, n)

    # --- velocities: rejection-sample q = v / v_esc from q^2 (1-q^2)^(7/2)
    q = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        x1 = rng.uniform(0.0, 1.0, remaining.size)
        x2 = rng.uniform(0.0, 0.1, remaining.size)
        accepted = x2 < x1 * x1 * (1.0 - x1 * x1) ** 3.5
        q[remaining[accepted]] = x1[accepted]
        remaining = remaining[~accepted]
    v_esc = np.sqrt(2.0 * total_mass) * (r * r + scale_radius * scale_radius) ** -0.25
    vel = (q * v_esc)[:, np.newaxis] * _random_unit_vectors(rng, n)

    masses = np.full(n, total_mass / n)
    p = ParticleSet(pos, vel, masses)
    if virialize:
        p.to_com_frame()
    return p


def uniform_cube(
    n: int,
    *,
    half_width: float = 1.0,
    total_mass: float = 1.0,
    velocity_scale: float = 0.0,
    seed: int = 0,
) -> ParticleSet:
    """Bodies uniformly distributed in the cube ``[-h, h]^3``."""
    _check_n(n)
    if half_width <= 0.0:
        raise WorkloadError(f"half_width must be positive, got {half_width}")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-half_width, half_width, (n, 3))
    vel = velocity_scale * rng.standard_normal((n, 3)) if velocity_scale else np.zeros((n, 3))
    return ParticleSet(pos, vel, np.full(n, total_mass / n))


def uniform_sphere(
    n: int,
    *,
    radius: float = 1.0,
    total_mass: float = 1.0,
    velocity_scale: float = 0.0,
    seed: int = 0,
) -> ParticleSet:
    """Bodies uniformly distributed (by volume) inside a sphere."""
    _check_n(n)
    if radius <= 0.0:
        raise WorkloadError(f"radius must be positive, got {radius}")
    rng = np.random.default_rng(seed)
    r = radius * rng.uniform(0.0, 1.0, n) ** (1.0 / 3.0)
    pos = r[:, np.newaxis] * _random_unit_vectors(rng, n)
    vel = velocity_scale * rng.standard_normal((n, 3)) if velocity_scale else np.zeros((n, 3))
    return ParticleSet(pos, vel, np.full(n, total_mass / n))


def two_clusters(
    n: int,
    *,
    separation: float = 4.0,
    approach_speed: float = 0.5,
    impact_parameter: float = 0.5,
    mass_ratio: float = 1.0,
    seed: int = 0,
) -> ParticleSet:
    """Two Plummer spheres on a collision course (the galaxy-merger workload).

    ``n`` is the total body count, split between the clusters in proportion
    ``mass_ratio : 1`` (cluster masses follow the same ratio).
    """
    _check_n(n)
    if n < 2:
        raise WorkloadError("two_clusters needs at least 2 bodies")
    if mass_ratio <= 0.0:
        raise WorkloadError(f"mass_ratio must be positive, got {mass_ratio}")
    n1 = max(1, min(n - 1, int(round(n * mass_ratio / (1.0 + mass_ratio)))))
    n2 = n - n1
    m1 = mass_ratio / (1.0 + mass_ratio)
    m2 = 1.0 / (1.0 + mass_ratio)
    c1 = plummer(n1, total_mass=m1, seed=seed)
    c2 = plummer(n2, total_mass=m2, seed=seed + 1)
    half = 0.5 * separation
    c1.shift(np.array([-half, -0.5 * impact_parameter, 0.0]),
             np.array([+0.5 * approach_speed, 0.0, 0.0]))
    c2.shift(np.array([+half, +0.5 * impact_parameter, 0.0]),
             np.array([-0.5 * approach_speed, 0.0, 0.0]))
    merged = ParticleSet.concatenate([c1, c2])
    merged.to_com_frame()
    return merged


def cold_disc(
    n: int,
    *,
    radius: float = 1.0,
    total_mass: float = 1.0,
    thickness: float = 0.05,
    central_mass_fraction: float = 0.5,
    seed: int = 0,
) -> ParticleSet:
    """A thin rotating disc around a heavy central body.

    Body 0 is the central mass holding ``central_mass_fraction`` of the
    total; the remaining bodies orbit on near-circular orbits set by the
    enclosed mass, giving a strongly flattened, anisotropic distribution.
    """
    _check_n(n)
    if n < 2:
        raise WorkloadError("cold_disc needs at least 2 bodies")
    if not 0.0 < central_mass_fraction < 1.0:
        raise WorkloadError(
            f"central_mass_fraction must be in (0, 1), got {central_mass_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_disc = n - 1
    m_central = total_mass * central_mass_fraction
    m_disc = total_mass - m_central

    # surface density ~ uniform: r ~ sqrt(u)
    r = radius * np.sqrt(rng.uniform(0.04, 1.0, n_disc))
    phi = rng.uniform(0.0, 2.0 * np.pi, n_disc)
    z = thickness * rng.standard_normal(n_disc)
    pos = np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)

    # circular speed from enclosed mass (central + disc interior to r)
    m_enc = m_central + m_disc * (r / radius) ** 2
    v_circ = np.sqrt(m_enc / r)
    vel = np.stack([-v_circ * np.sin(phi), v_circ * np.cos(phi), np.zeros(n_disc)], axis=1)

    positions = np.vstack([np.zeros(3), pos])
    velocities = np.vstack([np.zeros(3), vel])
    masses = np.concatenate([[m_central], np.full(n_disc, m_disc / n_disc)])
    p = ParticleSet(positions, velocities, masses)
    p.to_com_frame()
    return p

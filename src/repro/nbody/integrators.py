"""Time integrators for the N-body system.

The paper integrates with the standard fixed-step leapfrog used by
essentially all collisionless treecodes; the 100-step timing convention of
Tables 1-3 corresponds to 100 force evaluations + drift/kick updates.
Several integrators are provided so tests can cross-check orders of
accuracy and symplectic behaviour.

An *acceleration function* has signature ``accel(positions) -> (n, 3)``
array; any force backend (direct CPU, Barnes-Hut, or a simulated GPU plan)
can be plugged in.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, TYPE_CHECKING

import numpy as np

from repro.nbody.particles import ParticleSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nbody.timestep import BlockTimestepSchedule

__all__ = [
    "AccelFn",
    "Integrator",
    "ExplicitEuler",
    "SymplecticEuler",
    "LeapfrogKDK",
    "VelocityVerlet",
    "integrate",
    "block_substep",
]

AccelFn = Callable[[np.ndarray], np.ndarray]


class Integrator(Protocol):
    """A fixed-step integrator advancing a ParticleSet in place."""

    #: formal order of accuracy (used by convergence tests)
    order: int

    def step(self, p: ParticleSet, dt: float, accel: AccelFn) -> None:
        """Advance ``p`` by one step of size ``dt`` using ``accel``."""
        ...  # pragma: no cover


class ExplicitEuler:
    """First-order explicit Euler — test baseline, not for production runs."""

    order = 1

    def step(self, p: ParticleSet, dt: float, accel: AccelFn) -> None:
        a = accel(p.positions)
        p.positions += dt * p.velocities
        p.velocities += dt * a


class SymplecticEuler:
    """First-order symplectic (semi-implicit) Euler: kick then drift."""

    order = 1

    def step(self, p: ParticleSet, dt: float, accel: AccelFn) -> None:
        p.velocities += dt * accel(p.positions)
        p.positions += dt * p.velocities


class LeapfrogKDK:
    """Second-order kick-drift-kick leapfrog (the production integrator).

    Symplectic and time-reversible; performs two half-kicks per step.  The
    second half-kick's acceleration is cached and reused as the first
    half-kick of the next step when positions have not been perturbed in
    between, so one step costs one force evaluation in a plain loop.
    """

    order = 2

    def __init__(self) -> None:
        self._cached_accel: np.ndarray | None = None
        self._cached_pos_version: bytes | None = None

    def _accel_at(self, p: ParticleSet, accel: AccelFn) -> np.ndarray:
        # Cheap content check: reuse the cached acceleration only when the
        # positions are byte-identical to those it was computed for.
        tag = p.positions.tobytes()
        if self._cached_accel is not None and self._cached_pos_version == tag:
            return self._cached_accel
        return accel(p.positions)

    def step(self, p: ParticleSet, dt: float, accel: AccelFn) -> None:
        a0 = self._accel_at(p, accel)
        p.velocities += 0.5 * dt * a0
        p.positions += dt * p.velocities
        a1 = accel(p.positions)
        p.velocities += 0.5 * dt * a1
        self._cached_accel = a1
        self._cached_pos_version = p.positions.tobytes()


class VelocityVerlet:
    """Second-order velocity Verlet (algebraically identical to KDK leapfrog)."""

    order = 2

    def step(self, p: ParticleSet, dt: float, accel: AccelFn) -> None:
        a0 = accel(p.positions)
        p.positions += dt * p.velocities + 0.5 * dt * dt * a0
        a1 = accel(p.positions)
        p.velocities += 0.5 * dt * (a0 + a1)


def block_substep(
    p: ParticleSet,
    *,
    rungs: np.ndarray,
    substep: int,
    schedule: "BlockTimestepSchedule",
    last_acc: np.ndarray,
    force: Callable[[np.ndarray], tuple[np.ndarray, Any]],
) -> tuple[np.ndarray, int, Any]:
    """One rung-resolved block advance of ``schedule.dt_min``.

    The hierarchical kick-drift-kick scheme: bodies whose own step
    *begins* at ``substep`` receive their opening half-kick from the
    acceleration cached at their last force evaluation (``last_acc``),
    every body drifts by ``dt_min`` (positions stay globally
    synchronised), and bodies whose step *closes* at the next boundary —
    the *active* set — get a fresh force evaluation, their closing
    half-kick, and a rung re-assignment under the block alignment rule.

    ``force(active_indices)`` must return ``((len(active), 3)``
    accelerations for the active bodies, payload)``; the payload (e.g. a
    timing breakdown) is passed through untouched.  ``p``, ``last_acc``
    are mutated in place; ``rungs`` is not.

    Returns ``(new_rungs, next_substep, payload)`` with ``next_substep``
    wrapped into ``[0, schedule.n_substeps)`` — ``0`` means the advance
    landed on a sync boundary and the system is fully synchronised.
    With ``n_rungs == 1`` this reduces exactly (bit-for-bit) to one
    fixed-step KDK leapfrog step of ``dt_max``.
    """
    dt_body = schedule.rung_dt(rungs)
    begins = schedule.begins(rungs, substep)
    p.velocities[begins] += 0.5 * dt_body[begins, np.newaxis] * last_acc[begins]
    p.positions += schedule.dt_min * p.velocities
    boundary = substep + 1
    closes = schedule.closes(rungs, boundary)
    active = np.flatnonzero(closes)
    acc_rows, payload = force(active)
    last_acc[active] = acc_rows
    p.velocities[active] += 0.5 * dt_body[active, np.newaxis] * acc_rows
    next_substep = boundary % schedule.n_substeps
    new_rungs = schedule.update(rungs, acc_rows, active, next_substep)
    return new_rungs, next_substep, payload


def integrate(
    p: ParticleSet,
    accel: AccelFn,
    *,
    dt: float,
    n_steps: int,
    integrator: Integrator | None = None,
    callback: Callable[[float, ParticleSet], None] | None = None,
    callback_every: int = 1,
) -> ParticleSet:
    """Advance ``p`` in place for ``n_steps`` steps of size ``dt``.

    Parameters
    ----------
    callback:
        Invoked as ``callback(t, p)`` before the first step and after every
        ``callback_every``-th step (and always after the final step).

    Returns the same ``ParticleSet`` for chaining.
    """
    if dt <= 0.0:
        raise ValueError(f"dt must be positive, got {dt}")
    if n_steps < 0:
        raise ValueError(f"n_steps must be >= 0, got {n_steps}")
    if callback_every <= 0:
        raise ValueError(f"callback_every must be positive, got {callback_every}")
    if integrator is None:
        integrator = LeapfrogKDK()
    t = 0.0
    if callback is not None:
        callback(t, p)
    for k in range(1, n_steps + 1):
        integrator.step(p, dt, accel)
        t = k * dt
        if callback is not None and (k % callback_every == 0 or k == n_steps):
            callback(t, p)
    return p

"""Snapshot I/O: persist particle states and simulation series.

Snapshots are NumPy ``.npz`` archives (portable, compressed, versioned by
a format tag) holding positions, velocities, masses and metadata; a
:class:`SnapshotSeries` appends numbered snapshots for time-series output
from long runs — the standard workflow of any production N-body code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.nbody.particles import ParticleSet

__all__ = ["save_snapshot", "load_snapshot", "snapshot_extras", "SnapshotSeries"]

#: Format tag embedded in every snapshot for forward compatibility.
FORMAT_VERSION = 1


def save_snapshot(
    path: str | Path,
    particles: ParticleSet,
    *,
    time: float = 0.0,
    metadata: dict[str, Any] | None = None,
    extra: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write a particle snapshot to ``path`` (``.npz`` appended if missing).

    ``metadata`` must be JSON-serialisable; it round-trips through
    :func:`load_snapshot`.  ``extra`` arrays (e.g. block-timestep rung
    state) are stored under ``extra_<name>`` keys and recovered with
    :func:`snapshot_extras`; old snapshots simply have none, so the
    format version is unchanged.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(metadata or {})
    try:
        meta_json = json.dumps(meta)
    except TypeError as exc:
        raise WorkloadError(f"snapshot metadata is not JSON-serialisable: {exc}") from exc
    extras = {}
    for name, arr in (extra or {}).items():
        if not name.isidentifier():
            raise WorkloadError(f"extra array name {name!r} is not an identifier")
        extras[f"extra_{name}"] = np.asarray(arr)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        time=np.float64(time),
        positions=particles.positions,
        velocities=particles.velocities,
        masses=particles.masses,
        metadata=np.bytes_(meta_json.encode("utf-8")),
        **extras,
    )
    return path


def load_snapshot(path: str | Path) -> tuple[ParticleSet, float, dict[str, Any]]:
    """Read a snapshot; returns ``(particles, time, metadata)``."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"snapshot not found: {path}")
    with np.load(path) as data:
        if "format_version" not in data:
            raise WorkloadError(f"{path} is not a repro snapshot")
        version = int(data["format_version"])
        if version > FORMAT_VERSION:
            raise WorkloadError(
                f"snapshot format {version} is newer than supported {FORMAT_VERSION}"
            )
        particles = ParticleSet(data["positions"], data["velocities"], data["masses"])
        time = float(data["time"])
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
    return particles, time, metadata


def snapshot_extras(path: str | Path) -> dict[str, np.ndarray]:
    """Extra arrays stored in a snapshot (``{}`` for snapshots without any)."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"snapshot not found: {path}")
    out: dict[str, np.ndarray] = {}
    with np.load(path) as data:
        if "format_version" not in data:
            raise WorkloadError(f"{path} is not a repro snapshot")
        for key in data.files:
            if key.startswith("extra_"):
                out[key[len("extra_"):]] = np.array(data[key])
    return out


class SnapshotSeries:
    """Numbered snapshot output for a simulation run.

    Usable directly as a :class:`~repro.core.simulation.Simulation`
    callback::

        series = SnapshotSeries(outdir / "run")
        sim.run(1000, callback=series.from_simulation, callback_every=50)
    """

    def __init__(self, prefix: str | Path) -> None:
        self.prefix = Path(prefix)
        self.count = 0
        self.paths: list[Path] = []

    def write(self, particles: ParticleSet, *, time: float = 0.0,
              metadata: dict[str, Any] | None = None) -> Path:
        """Append one snapshot (``<prefix>_NNNN.npz``)."""
        path = self.prefix.parent / f"{self.prefix.name}_{self.count:04d}"
        out = save_snapshot(path, particles, time=time, metadata=metadata)
        self.paths.append(out)
        self.count += 1
        return out

    def from_simulation(self, sim) -> None:
        """Simulation-callback adapter: snapshots the current state.

        Metadata records both sides of the steps/force-passes split plus
        the simulated-hardware seconds accumulated so far, so a series is
        self-describing about where in the run each snapshot was taken.
        """
        self.write(
            sim.particles,
            time=sim.time,
            metadata={
                "plan": sim.plan.name,
                "steps": sim.record.steps,
                "force_passes": sim.record.force_passes,
                "simulated_seconds": sim.record.simulated_seconds,
            },
        )

    def __iter__(self) -> Iterator[tuple[ParticleSet, float, dict[str, Any]]]:
        """Iterate ``(particles, time, metadata)`` over written snapshots."""
        for p in self.paths:
            yield load_snapshot(p)

    def __len__(self) -> int:
        return self.count

"""repro.nbody.kernels — the force kernel-backend seam.

Every force path in the library (direct PP, blocked self-interaction,
Barnes-Hut leaf/walk evaluation) funnels into one of two primitive
kernels; this package lets those primitives run on interchangeable
*backends*:

=========  =============  =====================================================
name       kind           notes
=========  =============  =====================================================
numpy      reference      always available; defines the bit-exact semantics
numba      compiled       ``@njit(fastmath)`` loops; present only with Numba
cext       compiled       C via the host compiler + ctypes; no build-time deps
cupy/jax   array-module   the CuPy/JAX hook (:class:`ArrayModuleBackend`)
=========  =============  =====================================================

Selection precedence (first hit wins): explicit ``backend=`` argument /
``PlanConfig.kernel_backend``, then ``repro.configure(kernel_backend=)``
(the ``--kernel-backend`` CLI flag calls it), then the
``REPRO_KERNEL_BACKEND`` environment variable, then ``"numpy"``.

Compiled and array-module backends are **not** bit-identical to the
reference (reassociated summation, fused rsqrt); they are validated by
:class:`repro.check.DifferentialOracle` under the documented
``compiled-f64`` / ``compiled-f32`` tolerances — run
``repro-nbody check --kernel-backends auto`` for the full matrix.

Resolution degrades gracefully: asking for an unavailable backend logs a
warning once, bumps the ``kernels.fallbacks_total`` counter and returns
the NumPy reference, so a run configured for Numba still completes on a
host without it.
"""

from __future__ import annotations

import threading
import warnings

from repro.nbody.kernels import settings
from repro.nbody.kernels.array_module import ArrayModuleBackend
from repro.nbody.kernels.base import CoincidentPairError, KernelBackend
from repro.nbody.kernels.cext import CExtensionBackend
from repro.nbody.kernels.numba_backend import NumbaBackend
from repro.nbody.kernels.numpy_backend import NumpyBackend

__all__ = [
    "KernelBackend",
    "CoincidentPairError",
    "NumpyBackend",
    "NumbaBackend",
    "CExtensionBackend",
    "ArrayModuleBackend",
    "get_backend",
    "resolve_backend",
    "register_backend",
    "known_backends",
    "available_backends",
    "compiled_backends",
    "describe_backends",
]

_LOCK = threading.Lock()

#: Backend instances by name (constructed eagerly — construction is
#: cheap; compilation/imports happen lazily on first availability probe).
_BACKENDS: dict[str, KernelBackend] = {}

#: Backend names a fallback warning has already been emitted for.
_WARNED: set[str] = set()


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Add a backend to the registry (the third-party/CuPy/JAX hook)."""
    from repro.errors import ConfigurationError

    with _LOCK:
        if backend.name in _BACKENDS and not replace:
            raise ConfigurationError(
                f"kernel backend '{backend.name}' is already registered"
            )
        _BACKENDS[backend.name] = backend
    return backend


def _builtin_backends() -> None:
    register_backend(NumpyBackend())
    register_backend(NumbaBackend())
    register_backend(CExtensionBackend())
    register_backend(ArrayModuleBackend("cupy", "cupy"))
    register_backend(ArrayModuleBackend("jax", "jax.numpy"))


_builtin_backends()


def known_backends() -> tuple[str, ...]:
    """Every registered backend name, available or not."""
    with _LOCK:
        return tuple(_BACKENDS)


def available_backends() -> tuple[str, ...]:
    """Registered backends that can run on this host right now."""
    with _LOCK:
        candidates = list(_BACKENDS.values())
    return tuple(b.name for b in candidates if b.available)


def compiled_backends() -> tuple[str, ...]:
    """Available non-reference backends (what ``check`` auto-selects)."""
    with _LOCK:
        candidates = list(_BACKENDS.values())
    return tuple(b.name for b in candidates if b.kind != "reference" and b.available)


def describe_backends() -> list[dict]:
    """JSON-friendly description of every registered backend."""
    with _LOCK:
        candidates = list(_BACKENDS.values())
    return [b.describe() for b in candidates]


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name`` (available or not)."""
    from repro.errors import ConfigurationError

    with _LOCK:
        backend = _BACKENDS.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown kernel backend '{name}'; registered: "
            f"{', '.join(known_backends())}"
        )
    return backend


def resolve_backend(
    spec: "str | KernelBackend | None" = None, *, strict: bool = False
) -> KernelBackend:
    """The backend a force pass should run on.

    ``spec`` is a backend instance, a registered name, or ``None`` (fall
    through the settings precedence chain).  An unavailable selection
    degrades to the NumPy reference — warning once per backend name and
    bumping ``kernels.fallbacks_total`` — unless ``strict`` is true, in
    which case it raises :class:`~repro.errors.ConfigurationError`.
    """
    from repro.errors import ConfigurationError

    backend = spec if isinstance(spec, KernelBackend) else get_backend(
        spec if spec is not None else settings.kernel_backend_name()
    )
    if backend.available:
        return backend
    reason = backend.unavailable_reason or "unavailable"
    if strict:
        raise ConfigurationError(
            f"kernel backend '{backend.name}' is unavailable: {reason}"
        )
    with _LOCK:
        first = backend.name not in _WARNED
        _WARNED.add(backend.name)
    if first:
        warnings.warn(
            f"kernel backend '{backend.name}' is unavailable ({reason}); "
            "falling back to the numpy reference kernels",
            RuntimeWarning,
            stacklevel=2,
        )
    from repro import obs

    obs.inc("kernels.fallbacks_total", labels={"backend": backend.name})
    return get_backend("numpy")

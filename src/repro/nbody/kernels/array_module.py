"""Array-module backend: any numpy-like module can supply the arithmetic.

The hook CuPy / JAX slot into: :class:`ArrayModuleBackend` expresses the
force rectangle through a generic numpy-compatible namespace (``asarray``
/ broadcasting / ``sum`` — nothing exotic), moves inputs into the module
once per call and the accelerations back to host NumPy at the end.
Availability is simply "does the module import"; everything else (device
placement, jit) is the module's business.

Registered names (``cupy``, ``jax``) construct lazily — on hosts without
the library the backend reports unavailable and the force paths stay on
the reference, exactly like the compiled backends.  Third-party modules
register through :func:`repro.nbody.kernels.register_backend`::

    register_backend(ArrayModuleBackend("torch-like", "mymodule.numpy"))
"""

from __future__ import annotations

import importlib

import numpy as np

from repro.nbody.kernels.base import CoincidentPairError, KernelBackend

__all__ = ["ArrayModuleBackend"]


class ArrayModuleBackend(KernelBackend):
    """Force kernels evaluated through a numpy-like array module."""

    kind = "array-module"

    def __init__(self, name: str, module: str) -> None:
        self.name = name
        self._module_name = module
        self._xp = None
        self._error: str | None = None

    def _load(self):
        if self._xp is None and self._error is None:
            try:
                self._xp = importlib.import_module(self._module_name)
            except ImportError as exc:
                self._error = f"module '{self._module_name}' not importable ({exc})"
        return self._xp

    @property
    def available(self) -> bool:
        return self._load() is not None

    @property
    def unavailable_reason(self) -> str | None:
        self._load()
        return self._error

    # ------------------------------------------------------------------
    def _to_host(self, arr) -> np.ndarray:
        xp = self._xp
        if hasattr(xp, "asnumpy"):  # CuPy
            return xp.asnumpy(arr)
        return np.asarray(arr)  # JAX arrays support __array__

    def _rectangle(self, targets, src_pos, src_mass, eps2, G, dtype):
        """The dense rectangle in module arithmetic; returns a host array."""
        xp = self._xp
        t = xp.asarray(targets)
        s = xp.asarray(src_pos)
        m = xp.asarray(src_mass)
        d = s[None, :, :] - t[:, None, :]
        r2 = (d * d).sum(axis=-1) + dtype.type(eps2)
        w = m[None, :] * r2 ** dtype.type(-1.5)
        acc = (w[:, :, None] * d).sum(axis=1)
        if G != 1.0:
            acc = acc * dtype.type(G)
        return self._to_host(acc).astype(dtype, copy=False)

    def sources(
        self,
        targets: np.ndarray,
        src_pos: np.ndarray,
        src_mass: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        assert self._load() is not None, "backend unavailable"
        acc = self._rectangle(targets, src_pos, src_mass, eps2, G, out.dtype)
        if accumulate:
            out += acc
        else:
            out[:] = acc
        return out

    def self_forces(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
    ) -> np.ndarray:
        assert self._load() is not None, "backend unavailable"
        xp = self._xp
        dtype = out.dtype
        x = xp.asarray(positions)
        m = xp.asarray(masses)
        d = x[None, :, :] - x[:, None, :]
        r2 = (d * d).sum(axis=-1) + dtype.type(eps2)
        n = positions.shape[0]
        # Diagonal to +inf: inf**-1.5 == 0 exactly, the i == j term drops.
        eye = xp.asarray(np.eye(n, dtype=bool))
        r2 = xp.where(eye, xp.asarray(np.inf, dtype=r2.dtype), r2)
        if eps2 == 0.0:
            bad = self._to_host(~(r2 > 0))
            if bad.any():
                tgt, src = np.nonzero(bad)
                raise CoincidentPairError(
                    [(int(i), int(j)) for i, j in zip(tgt, src)]
                )
        w = m[None, :] * r2 ** dtype.type(-1.5)
        acc = (w[:, :, None] * d).sum(axis=1)
        if G != 1.0:
            acc = acc * dtype.type(G)
        out[:] = self._to_host(acc).astype(dtype, copy=False)
        return out

"""The kernel-backend contract every force backend implements.

A *kernel backend* owns the innermost arithmetic of the force paths —
the dense ``targets x sources`` rectangle every higher-level schedule
(direct PP, blocked self-interaction, Barnes-Hut leaf/walk evaluation)
reduces to.  The NumPy reference backend defines the semantics; compiled
backends (Numba, the C extension) and array-module backends (CuPy/JAX)
may reassociate the summation and use fused reciprocal square roots, so
they are *not* bit-identical to the reference — they are validated
against it by the :class:`~repro.check.DifferentialOracle` under the
documented compiled-axis tolerances instead.

Two kernels cover every call site:

* :meth:`KernelBackend.sources` — accelerations exerted by a dense
  source set on a target set (the direct-sum and BH-leaf kernel);
* :meth:`KernelBackend.self_forces` — all-pairs accelerations of a set
  on itself with the ``i == j`` diagonal excluded (the blocked
  self-interaction kernel), including the zero-softening coincident-pair
  error contract of :func:`repro.nbody.forces.direct_forces`.

Array contract: ``targets``/``src_pos`` are C-contiguous ``(n, 3)``
arrays of the arithmetic dtype, ``src_mass`` a matching ``(n,)`` array;
``eps2`` is the softening *already squared in float64* (callers cast to
the arithmetic dtype exactly once — see the eps2 policy note in
:mod:`repro.nbody.forces`).  ``out`` is written in place: overwritten,
or added to when ``accumulate`` is true.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

__all__ = ["KernelBackend", "CoincidentPairError"]


class CoincidentPairError(ValueError):
    """Coincident distinct bodies with zero softening: no finite force.

    Carries the offending ``(i, j)`` body-index pairs so the caller can
    report *which* bodies collided rather than just that one did.
    """

    def __init__(self, pairs: list[tuple[int, int]]) -> None:
        self.pairs = pairs
        shown = ", ".join(f"({i}, {j})" for i, j in pairs[:8])
        more = f" and {len(pairs) - 8} more" if len(pairs) > 8 else ""
        super().__init__(
            "coincident distinct bodies with zero softening have undefined "
            f"force: pairs {shown}{more}"
        )


class KernelBackend(ABC):
    """One implementation of the innermost force arithmetic."""

    #: registry name ("numpy", "numba", "cext", "cupy", ...)
    name: str = "?"
    #: "reference", "compiled", or "array-module"
    kind: str = "?"

    @property
    @abstractmethod
    def available(self) -> bool:
        """Whether this backend can run on this host right now."""

    @property
    def unavailable_reason(self) -> str | None:
        """Why :attr:`available` is false (``None`` when available)."""
        return None

    # -- kernels ---------------------------------------------------------
    @abstractmethod
    def sources(
        self,
        targets: np.ndarray,
        src_pos: np.ndarray,
        src_mass: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        """Dense ``targets x sources`` accelerations into ``out``."""

    @abstractmethod
    def self_forces(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
    ) -> np.ndarray:
        """All-pairs self accelerations, diagonal excluded, into ``out``.

        Raises :class:`CoincidentPairError` when ``eps2 == 0`` and two
        distinct bodies coincide.
        """

    # -- introspection ---------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-friendly description (name, kind, availability)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "available": self.available,
            "unavailable_reason": self.unavailable_reason,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "available" if self.available else "unavailable"
        return f"{type(self).__name__}({self.name!r}, {state})"

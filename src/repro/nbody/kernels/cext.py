"""Compiled C direct-sum kernels, built on demand with the host compiler.

The register-blocked formulation of Elsen et al. / Belleman et al.
(PAPERS.md) applied to the CPU: one accumulator triple per target body
held in registers, a single pass over the sources with the compiler
auto-vectorising the inner loop (``-O3 -march=native -ffast-math``).
Against the blocked-NumPy reference this trades the ``(nt, block, 3)``
temporary traffic for pure arithmetic, which is where the order-of-
magnitude single-thread speedup comes from (see ``BENCH_PR7.json``).

The shared library is compiled once per source revision into a per-user
cache directory (``REPRO_KERNEL_CACHE``, else ``~/.cache/repro-kernels``)
and loaded with :mod:`ctypes` — no build-time dependency, no Python
headers.  Hosts without a working C compiler simply report the backend
unavailable and the force paths stay on the NumPy reference.

Summation is reassociated by vectorisation and ``-ffast-math``, so
results are *not* bit-identical to the reference; the differential
oracle admits them under the ``compiled-f64`` / ``compiled-f32``
tolerances (:mod:`repro.check.oracle`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.nbody.kernels.base import CoincidentPairError, KernelBackend

__all__ = ["CExtensionBackend"]

ENV_CACHE_DIR = "REPRO_KERNEL_CACHE"

#: Most coincident pairs reported before truncating the scan.
_MAX_BAD_PAIRS = 64

_SOURCE = r"""
#include <math.h>
#include <stdint.h>

/* Dense targets x sources direct sum.  One register accumulator triple
 * per target; the j loop auto-vectorises.  G is applied per target row
 * so `accumulate` composes per contribution. */
#define SOURCES_KERNEL(NAME, T, SQRT)                                        \
void NAME(const T *tx, int64_t nt, const T *sx, const T *sm, int64_t ns,     \
          T eps2, T G, T *out, int32_t accumulate)                           \
{                                                                            \
    for (int64_t i = 0; i < nt; ++i) {                                       \
        const T xi = tx[3*i], yi = tx[3*i+1], zi = tx[3*i+2];                \
        T ax = 0, ay = 0, az = 0;                                            \
        for (int64_t j = 0; j < ns; ++j) {                                   \
            const T dx = sx[3*j]   - xi;                                     \
            const T dy = sx[3*j+1] - yi;                                     \
            const T dz = sx[3*j+2] - zi;                                     \
            const T r2 = dx*dx + dy*dy + dz*dz + eps2;                       \
            const T inv = (T)1 / SQRT(r2);                                   \
            const T w = sm[j] * inv * inv * inv;                             \
            ax += w * dx; ay += w * dy; az += w * dz;                        \
        }                                                                    \
        if (accumulate) {                                                    \
            out[3*i] += G*ax; out[3*i+1] += G*ay; out[3*i+2] += G*az;        \
        } else {                                                             \
            out[3*i] = G*ax; out[3*i+1] = G*ay; out[3*i+2] = G*az;           \
        }                                                                    \
    }                                                                        \
}

/* All-pairs self interaction, diagonal excluded.  With eps2 == 0 a zero
 * (or non-finite) off-diagonal r2 is a coincident distinct pair: the
 * offending (i, j) pairs are recorded into `bad` (up to max_bad) and the
 * count returned, so the caller can name the bodies in its error. */
#define SELF_KERNEL(NAME, T, SQRT)                                           \
int64_t NAME(const T *x, const T *m, int64_t n, T eps2, T G, T *out,         \
             int64_t *bad, int64_t max_bad)                                  \
{                                                                            \
    int64_t n_bad = 0;                                                       \
    for (int64_t i = 0; i < n; ++i) {                                        \
        const T xi = x[3*i], yi = x[3*i+1], zi = x[3*i+2];                   \
        T ax = 0, ay = 0, az = 0;                                            \
        for (int64_t j = 0; j < n; ++j) {                                    \
            if (j == i) continue;                                            \
            const T dx = x[3*j]   - xi;                                      \
            const T dy = x[3*j+1] - yi;                                      \
            const T dz = x[3*j+2] - zi;                                      \
            const T r2 = dx*dx + dy*dy + dz*dz + eps2;                       \
            if (eps2 == (T)0 && !(r2 > (T)0)) {                              \
                if (n_bad < max_bad) {                                       \
                    bad[2*n_bad] = i; bad[2*n_bad+1] = j;                    \
                }                                                            \
                ++n_bad;                                                     \
                continue;                                                    \
            }                                                                \
            const T inv = (T)1 / SQRT(r2);                                   \
            const T w = m[j] * inv * inv * inv;                              \
            ax += w * dx; ay += w * dy; az += w * dz;                        \
        }                                                                    \
        out[3*i] = G*ax; out[3*i+1] = G*ay; out[3*i+2] = G*az;               \
    }                                                                        \
    return n_bad;                                                            \
}

SOURCES_KERNEL(repro_sources_f64, double, sqrt)
SOURCES_KERNEL(repro_sources_f32, float, sqrtf)
SELF_KERNEL(repro_self_f64, double, sqrt)
SELF_KERNEL(repro_self_f32, float, sqrtf)
"""

#: Compile flags for the kernel translation unit.  fast-math is confined
#: to these kernels' own arithmetic.
_CFLAGS = ["-O3", "-march=native", "-ffast-math", "-fno-math-errno", "-fPIC"]

#: Link flags — deliberately *without* any fast-math option: linking a
#: shared object with -ffast-math pulls in gcc's crtfastmath startup,
#: whose constructor flips the process-wide FTZ/DAZ bits at dlopen time
#: and silently breaks subnormal arithmetic for every other library in
#: the process.  Compiling fast, linking plain keeps the damage local.
_LDFLAGS = ["-shared"]


def _cache_dir() -> Path:
    configured = os.environ.get(ENV_CACHE_DIR)
    if configured:
        return Path(configured)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build_library() -> Path:
    """Compile (or reuse) the shared library for the current source."""
    digest = hashlib.sha256(
        (_SOURCE + " ".join(_CFLAGS) + " ".join(_LDFLAGS)).encode()
    ).hexdigest()[:16]
    lib_path = _cache_dir() / f"repro_kernels_{digest}.so"
    if lib_path.exists():
        return lib_path
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    lib_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=lib_path.parent) as tmp:
        src = Path(tmp) / "kernels.c"
        src.write_text(_SOURCE)
        obj = Path(tmp) / "kernels.o"
        tmp_lib = Path(tmp) / "kernels.so"
        for cmd in (
            [cc, *_CFLAGS, "-c", "-o", str(obj), str(src)],
            [cc, *_LDFLAGS, "-o", str(tmp_lib), str(obj), "-lm"],
        ):
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{cc} failed (exit {proc.returncode}): "
                    f"{proc.stderr.strip()[:500]}"
                )
        # Atomic publish: concurrent builders race benignly to the same name.
        os.replace(tmp_lib, lib_path)
    return lib_path


class CExtensionBackend(KernelBackend):
    """Direct-sum kernels compiled with the host C compiler via ctypes."""

    name = "cext"
    kind = "compiled"

    def __init__(self) -> None:
        self._lib: ctypes.CDLL | None = None
        self._error: str | None = None

    # -- lazy build ------------------------------------------------------
    def _load(self) -> ctypes.CDLL | None:
        if self._lib is not None or self._error is not None:
            return self._lib
        try:
            lib = ctypes.CDLL(str(_build_library()))
            c_i64, c_i32 = ctypes.c_int64, ctypes.c_int32
            c_f64, c_f32, p = ctypes.c_double, ctypes.c_float, ctypes.c_void_p
            lib.repro_sources_f64.restype = None
            lib.repro_sources_f64.argtypes = [p, c_i64, p, p, c_i64, c_f64, c_f64, p, c_i32]
            lib.repro_sources_f32.restype = None
            lib.repro_sources_f32.argtypes = [p, c_i64, p, p, c_i64, c_f32, c_f32, p, c_i32]
            lib.repro_self_f64.restype = c_i64
            lib.repro_self_f64.argtypes = [p, p, c_i64, c_f64, c_f64, p, p, c_i64]
            lib.repro_self_f32.restype = c_i64
            lib.repro_self_f32.argtypes = [p, p, c_i64, c_f32, c_f32, p, p, c_i64]
            self._lib = lib
        except (RuntimeError, OSError) as exc:
            self._error = str(exc)
        return self._lib

    @property
    def available(self) -> bool:
        return self._load() is not None

    @property
    def unavailable_reason(self) -> str | None:
        self._load()
        return self._error

    # -- kernels ---------------------------------------------------------
    @staticmethod
    def _ptr(arr: np.ndarray) -> ctypes.c_void_p:
        return ctypes.c_void_p(arr.ctypes.data)

    def sources(
        self,
        targets: np.ndarray,
        src_pos: np.ndarray,
        src_mass: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        lib = self._load()
        assert lib is not None, "backend unavailable; resolve_backend gates this"
        fn = lib.repro_sources_f64 if out.dtype == np.float64 else lib.repro_sources_f32
        scalar = float(np.dtype(out.dtype).type(eps2))
        fn(
            self._ptr(targets), targets.shape[0],
            self._ptr(src_pos), self._ptr(src_mass), src_pos.shape[0],
            scalar, G, self._ptr(out), int(accumulate),
        )
        return out

    def self_forces(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
    ) -> np.ndarray:
        lib = self._load()
        assert lib is not None, "backend unavailable; resolve_backend gates this"
        fn = lib.repro_self_f64 if out.dtype == np.float64 else lib.repro_self_f32
        bad = np.empty((_MAX_BAD_PAIRS, 2), dtype=np.int64)
        scalar = float(np.dtype(out.dtype).type(eps2))
        n_bad = fn(
            self._ptr(positions), self._ptr(masses), positions.shape[0],
            scalar, G, self._ptr(out), self._ptr(bad), _MAX_BAD_PAIRS,
        )
        if n_bad:
            shown = bad[: min(int(n_bad), _MAX_BAD_PAIRS)]
            raise CoincidentPairError([(int(i), int(j)) for i, j in shown])
        return out

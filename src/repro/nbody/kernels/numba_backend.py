"""Numba-jitted direct-sum kernels (gracefully absent without Numba).

Same register-blocked formulation as the C backend — one accumulator
triple per target held in registers, a single fused pass over the
sources — expressed as ``@njit(fastmath=True)`` scalar loops that LLVM
vectorises.  Import of :mod:`numba` is attempted lazily at first use;
hosts without it report the backend unavailable and the force paths fall
back to the NumPy reference (the CLI/CI no-numba path stays green).

``fastmath`` reassociates the summation, so results are validated by the
differential oracle under the ``compiled-f64`` / ``compiled-f32``
tolerances rather than bit-identity.
"""

from __future__ import annotations

import numpy as np

from repro.nbody.kernels.base import CoincidentPairError, KernelBackend

__all__ = ["NumbaBackend"]

#: Most coincident pairs reported before truncating the scan.
_MAX_BAD_PAIRS = 64


def _build_kernels():
    """Compile the jitted kernels; raises ImportError when Numba is absent."""
    from numba import njit

    @njit(cache=True, fastmath=True)
    def sources(tx, sx, sm, eps2, G, out, accumulate):
        nt = tx.shape[0]
        ns = sx.shape[0]
        zero = eps2 * 0  # typed zero of the arithmetic dtype
        for i in range(nt):
            xi, yi, zi = tx[i, 0], tx[i, 1], tx[i, 2]
            ax = ay = az = zero
            for j in range(ns):
                dx = sx[j, 0] - xi
                dy = sx[j, 1] - yi
                dz = sx[j, 2] - zi
                r2 = dx * dx + dy * dy + dz * dz + eps2
                inv = 1.0 / np.sqrt(r2)
                w = sm[j] * inv * inv * inv
                ax += w * dx
                ay += w * dy
                az += w * dz
            if accumulate:
                out[i, 0] += G * ax
                out[i, 1] += G * ay
                out[i, 2] += G * az
            else:
                out[i, 0] = G * ax
                out[i, 1] = G * ay
                out[i, 2] = G * az

    @njit(cache=True, fastmath=True)
    def self_forces(x, m, eps2, G, out, bad):
        n = x.shape[0]
        max_bad = bad.shape[0]
        n_bad = 0
        zero = eps2 * 0
        for i in range(n):
            xi, yi, zi = x[i, 0], x[i, 1], x[i, 2]
            ax = ay = az = zero
            for j in range(n):
                if j == i:
                    continue
                dx = x[j, 0] - xi
                dy = x[j, 1] - yi
                dz = x[j, 2] - zi
                r2 = dx * dx + dy * dy + dz * dz + eps2
                if eps2 == 0.0 and not (r2 > 0.0):
                    if n_bad < max_bad:
                        bad[n_bad, 0] = i
                        bad[n_bad, 1] = j
                    n_bad += 1
                    continue
                inv = 1.0 / np.sqrt(r2)
                w = m[j] * inv * inv * inv
                ax += w * dx
                ay += w * dy
                az += w * dz
            out[i, 0] = G * ax
            out[i, 1] = G * ay
            out[i, 2] = G * az
        return n_bad

    return sources, self_forces


class NumbaBackend(KernelBackend):
    """Jit-compiled direct-sum kernels, present only when Numba imports."""

    name = "numba"
    kind = "compiled"

    def __init__(self) -> None:
        self._kernels = None
        self._error: str | None = None

    def _load(self):
        if self._kernels is None and self._error is None:
            try:
                self._kernels = _build_kernels()
            except ImportError as exc:
                self._error = f"numba is not installed ({exc})"
            except Exception as exc:  # jit failure: degrade, don't crash
                self._error = f"numba kernel compilation failed: {exc}"
        return self._kernels

    @property
    def available(self) -> bool:
        return self._load() is not None

    @property
    def unavailable_reason(self) -> str | None:
        self._load()
        return self._error

    def sources(
        self,
        targets: np.ndarray,
        src_pos: np.ndarray,
        src_mass: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        kernels = self._load()
        assert kernels is not None, "backend unavailable; resolve_backend gates this"
        dt = out.dtype.type
        kernels[0](targets, src_pos, src_mass, dt(eps2), dt(G), out, accumulate)
        return out

    def self_forces(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
    ) -> np.ndarray:
        kernels = self._load()
        assert kernels is not None, "backend unavailable; resolve_backend gates this"
        bad = np.empty((_MAX_BAD_PAIRS, 2), dtype=np.int64)
        dt = out.dtype.type
        n_bad = kernels[1](positions, masses, dt(eps2), dt(G), out, bad)
        if n_bad:
            shown = bad[: min(int(n_bad), _MAX_BAD_PAIRS)]
            raise CoincidentPairError([(int(i), int(j)) for i, j in shown])
        return out

"""The NumPy reference backend: blocked, vectorised, bit-stable.

The blocked loops here *are* the library's force semantics — they were
lifted verbatim from :mod:`repro.nbody.forces` when the backend seam was
introduced, keeping the same operation order and the same workspace
buffer keys, so the ``numpy`` backend is bit-identical to the
pre-seam force paths (guarded by tests/test_kernels.py).

:func:`blocked_sources` / :func:`blocked_self` are the raw loops the
force entry points call directly on the numpy path (they validate and
manage ``out`` themselves); :class:`NumpyBackend` wraps them behind the
:class:`~repro.nbody.kernels.base.KernelBackend` contract for symmetric
use alongside the compiled backends.
"""

from __future__ import annotations

import numpy as np

from repro.exec.workspace import Workspace, local_workspace
from repro.nbody.kernels.base import CoincidentPairError, KernelBackend

__all__ = ["NumpyBackend", "blocked_sources", "blocked_self"]


def blocked_sources(
    targets: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    *,
    eps2: float,
    dtype: np.dtype,
    block: int,
    out: np.ndarray,
    workspace: Workspace,
    key: str = "forces",
) -> np.ndarray:
    """The blocked ``targets x sources`` loop; accumulates into ``out``.

    ``eps2`` is the float64 squared softening; the in-place ``r2 += eps2``
    rounds it to the arithmetic dtype exactly once (the square-then-cast
    policy).  ``key`` namespaces the scratch buffers so callers with
    different blocking (force path vs device tile loop) do not thrash
    each other's capacity buffers.
    """
    nt = targets.shape[0]
    ns = src_pos.shape[0]
    nb = min(block, ns)
    d_buf = workspace.take(f"{key}.d", (nt, nb, 3), dtype)
    r2_buf = workspace.take(f"{key}.r2", (nt, nb), dtype)
    w_buf = workspace.take(f"{key}.inv_r3", (nt, nb), dtype)
    acc_buf = workspace.take(f"{key}.acc", (nt, 3), dtype)
    for s0 in range(0, ns, block):
        s1 = min(s0 + block, ns)
        k = s1 - s0
        # (nt, k, 3) displacement block
        d = d_buf[:, :k]
        np.subtract(src_pos[s0:s1][np.newaxis, :, :], targets[:, np.newaxis, :], out=d)
        r2 = r2_buf[:, :k]
        np.einsum("ijk,ijk->ij", d, d, out=r2)
        r2 += eps2
        inv_r3 = w_buf[:, :k]
        np.power(r2, -1.5, out=inv_r3)
        inv_r3 *= src_mass[s0:s1][np.newaxis, :]  # becomes the weight w
        np.einsum("ij,ijk->ik", inv_r3, d, out=acc_buf)
        out += acc_buf
    return out


def blocked_self(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    eps2: float,
    dtype: np.dtype,
    block: int,
    out: np.ndarray,
    workspace: Workspace,
) -> np.ndarray:
    """All-pairs self loop with the diagonal excluded; accumulates into ``out``.

    With ``eps2 == 0`` any off-diagonal zero distance is a coincident
    distinct pair: each block is validated *before* its contribution is
    accumulated, and :class:`CoincidentPairError` names the offending
    global ``(i, j)`` body pairs — so a bad pair in a late block cannot
    be masked by (or misattributed to) earlier, already-summed blocks.
    """
    n = positions.shape[0]
    nb = min(block, n)
    d_buf = workspace.take("forces.d", (n, nb, 3), dtype)
    r2_buf = workspace.take("forces.r2", (n, nb), dtype)
    acc_buf = workspace.take("forces.acc", (n, 3), dtype)
    for s0 in range(0, n, block):
        s1 = min(s0 + block, n)
        k = s1 - s0
        d = d_buf[:, :k]
        np.subtract(
            positions[s0:s1][np.newaxis, :, :], positions[:, np.newaxis, :], out=d
        )
        r2 = r2_buf[:, :k]
        np.einsum("ijk,ijk->ij", d, d, out=r2)
        r2 += eps2
        rows = np.arange(s0, s1)
        # Masking via +inf: inf**-1.5 == 0.0 exactly, so the diagonal
        # contributes nothing — same result as zeroing inv_r3 afterwards.
        r2[rows, rows - s0] = np.inf
        if eps2 == 0.0 and not np.all(r2 > 0.0):
            tgt, src = np.nonzero(~(r2 > 0.0))
            raise CoincidentPairError(
                [(int(i), int(s0 + j)) for i, j in zip(tgt, src)]
            )
        inv_r3 = r2  # reciprocal in place; r2 is not needed afterwards
        np.power(r2, -1.5, out=inv_r3)
        inv_r3 *= masses[s0:s1][np.newaxis, :]
        np.einsum("ij,ijk->ik", inv_r3, d, out=acc_buf)
        out += acc_buf
    return out


class NumpyBackend(KernelBackend):
    """The reference backend: always available, defines the semantics."""

    name = "numpy"
    kind = "reference"

    #: Source columns per blocked pass (bounds scratch to ``nt x block``).
    block = 2048

    @property
    def available(self) -> bool:
        return True

    def sources(
        self,
        targets: np.ndarray,
        src_pos: np.ndarray,
        src_mass: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
        accumulate: bool = False,
    ) -> np.ndarray:
        dtype = out.dtype
        ws = local_workspace()
        if not accumulate:
            out[:] = 0.0
        if G != 1.0:
            # Fold G into the source masses so accumulate semantics stay
            # per-contribution (compiled backends scale inside the loop).
            src_mass = src_mass * dtype.type(G)
        return blocked_sources(
            targets, src_pos, src_mass,
            eps2=eps2, dtype=dtype, block=self.block, out=out, workspace=ws,
        )

    def self_forces(
        self,
        positions: np.ndarray,
        masses: np.ndarray,
        *,
        eps2: float,
        G: float = 1.0,
        out: np.ndarray,
    ) -> np.ndarray:
        dtype = out.dtype
        ws = local_workspace()
        out[:] = 0.0
        if G != 1.0:
            masses = masses * dtype.type(G)
        return blocked_self(
            positions, masses,
            eps2=eps2, dtype=dtype, block=self.block, out=out, workspace=ws,
        )

"""Kernel-backend settings: which force kernels the library runs on.

The force paths default to the pure-NumPy reference kernels; a compiled
backend is opted into with the library's usual precedence chain (first
hit wins):

1. an explicit ``backend=`` argument to a force function, or a
   :class:`~repro.core.plans.base.PlanConfig` with ``kernel_backend``
   set (pins the backend for that plan instance, including through
   serve job specs and checkpoint resume);
2. the name set through :func:`repro.configure` (``kernel_backend=``)
   or the ``--kernel-backend`` CLI flag (which calls it);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. the built-in default: ``"numpy"``.

The environment is read when a backend is resolved (force-pass time),
not at import, so tests and subprocesses can adjust it freely.
Process-pool workers inherit the parent's selection: the
:class:`~repro.exec.engine.ExecutionEngine` installs it in each worker
through a pool initializer (configure-level overrides don't survive
fork/spawn on their own).
"""

from __future__ import annotations

import os

__all__ = [
    "ENV_KERNEL_BACKEND",
    "kernel_backend_name",
    "set_kernel_backend_override",
    "clear_overrides",
]

ENV_KERNEL_BACKEND = "REPRO_KERNEL_BACKEND"

#: Built-in default backend: the bit-stable NumPy reference.
DEFAULT_BACKEND = "numpy"

#: ``repro.configure(kernel_backend=...)`` value (precedence level 2);
#: ``None`` means "not configured, fall through to the environment".
_backend_override: str | None = None


def set_kernel_backend_override(name: str | None) -> None:
    """Install the ``repro.configure``-level kernel backend name.

    Name validity is checked by the registry at install time (see
    :func:`repro.nbody.kernels.get_backend`); availability is checked at
    resolve time so an unavailable compiled backend degrades to the
    NumPy reference instead of failing the run.
    """
    global _backend_override
    _backend_override = None if name is None else str(name)


def clear_overrides() -> None:
    """Drop the configure-level kernel backend (tests)."""
    global _backend_override
    _backend_override = None


def kernel_backend_name() -> str:
    """The configured backend name, before availability resolution."""
    if _backend_override is not None:
        return _backend_override
    return os.environ.get(ENV_KERNEL_BACKEND) or DEFAULT_BACKEND

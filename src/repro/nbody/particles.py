"""Structure-of-arrays particle container.

The hot paths of the library (force kernels, tree build) operate directly
on the NumPy arrays held here; :class:`ParticleSet` is a thin, validated
owner of those arrays rather than an object-per-particle model, following
the SoA layout every performant N-body code uses.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ParticleSet"]


class ParticleSet:
    """Positions, velocities and masses of ``n`` bodies.

    Parameters
    ----------
    positions:
        ``(n, 3)`` float array.
    velocities:
        ``(n, 3)`` float array.
    masses:
        ``(n,)`` positive float array.

    All arrays are converted to contiguous ``float64`` copies owned by the
    set; device kernels down-convert to ``float32`` at the transfer
    boundary (see :mod:`repro.gpu.memory`).
    """

    __slots__ = ("positions", "velocities", "masses")

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        masses: np.ndarray,
    ) -> None:
        pos = np.ascontiguousarray(positions, dtype=np.float64)
        vel = np.ascontiguousarray(velocities, dtype=np.float64)
        m = np.ascontiguousarray(masses, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise WorkloadError(f"positions must have shape (n, 3), got {pos.shape}")
        if vel.shape != pos.shape:
            raise WorkloadError(
                f"velocities shape {vel.shape} does not match positions {pos.shape}"
            )
        if m.shape != (pos.shape[0],):
            raise WorkloadError(
                f"masses must have shape ({pos.shape[0]},), got {m.shape}"
            )
        if not np.all(np.isfinite(pos)) or not np.all(np.isfinite(vel)):
            raise WorkloadError("positions/velocities must be finite")
        if not np.all(np.isfinite(m)) or np.any(m <= 0.0):
            raise WorkloadError("masses must be finite and strictly positive")
        self.positions = pos
        self.velocities = vel
        self.masses = m

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int, mass: float = 1.0) -> "ParticleSet":
        """``n`` bodies at rest at the origin, each of mass ``mass``."""
        if n <= 0:
            raise WorkloadError(f"n must be positive, got {n}")
        return cls(np.zeros((n, 3)), np.zeros((n, 3)), np.full(n, float(mass)))

    @classmethod
    def concatenate(cls, sets: Iterable["ParticleSet"]) -> "ParticleSet":
        """Concatenate several particle sets into one."""
        sets = list(sets)
        if not sets:
            raise WorkloadError("cannot concatenate an empty sequence of ParticleSets")
        return cls(
            np.concatenate([s.positions for s in sets]),
            np.concatenate([s.velocities for s in sets]),
            np.concatenate([s.masses for s in sets]),
        )

    def copy(self) -> "ParticleSet":
        """Deep copy."""
        return ParticleSet(
            self.positions.copy(), self.velocities.copy(), self.masses.copy()
        )

    def select(self, index: np.ndarray) -> "ParticleSet":
        """A new set containing the bodies picked by ``index`` (any fancy index)."""
        return ParticleSet(
            self.positions[index], self.velocities[index], self.masses[index]
        )

    def permuted(self, order: np.ndarray) -> "ParticleSet":
        """A new set with bodies reordered by ``order`` (a permutation)."""
        order = np.asarray(order)
        if sorted(order.tolist()) != list(range(self.n)):
            raise WorkloadError("order must be a permutation of range(n)")
        return self.select(order)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of bodies."""
        return self.positions.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def total_mass(self) -> float:
        """Sum of all body masses."""
        return float(self.masses.sum())

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position, shape ``(3,)``."""
        return self.masses @ self.positions / self.total_mass

    def com_velocity(self) -> np.ndarray:
        """Mass-weighted mean velocity, shape ``(3,)``."""
        return self.masses @ self.velocities / self.total_mass

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lo, hi)`` of the positions."""
        return self.positions.min(axis=0), self.positions.max(axis=0)

    def bounding_cube(self, pad: float = 1e-9) -> tuple[np.ndarray, float]:
        """The smallest axis-aligned cube containing all bodies.

        Returns ``(center, half_width)``; ``pad`` expands the cube by a
        relative amount so that bodies on the boundary fall strictly
        inside, which the octree build relies on.
        """
        lo, hi = self.bounding_box()
        center = 0.5 * (lo + hi)
        half = float(np.max(hi - lo)) * 0.5
        half = half * (1.0 + pad) + pad
        return center, half

    # ------------------------------------------------------------------
    # in-place frame adjustments
    # ------------------------------------------------------------------
    def shift(self, dx: np.ndarray, dv: np.ndarray | None = None) -> None:
        """Translate all positions by ``dx`` and optionally velocities by ``dv``."""
        self.positions += np.asarray(dx, dtype=np.float64)
        if dv is not None:
            self.velocities += np.asarray(dv, dtype=np.float64)

    def to_com_frame(self) -> None:
        """Shift to the centre-of-mass frame (zero mean position & momentum)."""
        self.shift(-self.center_of_mass(), -self.com_velocity())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParticleSet(n={self.n}, total_mass={self.total_mass:.6g})"

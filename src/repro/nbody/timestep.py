"""Time-step control: acceleration criteria, adaptive and block drivers.

Fixed-step leapfrog (the paper's convention) is fine for collisionless
sweeps, but long production runs use an adaptive step.  This module
provides the standard softened-gravity criterion

    dt_i = eta * sqrt(eps / |a_i|)

(the dimensionally natural time for a body to cross the softening length
under its current acceleration), :class:`AdaptiveLeapfrog`, a
synchronised adaptive KDK driver, and :class:`BlockTimestepSchedule` —
the hierarchical power-of-two *block* timestep system (Aarseth-style
individual steps quantised to rungs, as in GADGET/GOTHIC): every body
sits on a rung ``r`` stepping at ``dt_max / 2**r``, rungs advance
together in blocks, and only the rungs whose step ends at a given
substep boundary pay for a force evaluation there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.nbody.particles import ParticleSet

__all__ = [
    "acceleration_timestep",
    "suggest_timestep",
    "AdaptiveLeapfrog",
    "BlockTimestepSchedule",
]


def acceleration_timestep(
    accelerations: np.ndarray, *, softening: float, eta: float = 0.025
) -> np.ndarray:
    """Per-body time steps ``eta * sqrt(eps / |a|)``.

    Bodies with zero acceleration get ``inf`` (they impose no constraint).
    """
    if softening <= 0.0:
        raise ConfigurationError(
            f"softening must be positive for this criterion, got {softening}"
        )
    if eta <= 0.0:
        raise ConfigurationError(f"eta must be positive, got {eta}")
    a = np.linalg.norm(np.asarray(accelerations, dtype=np.float64), axis=1)
    with np.errstate(divide="ignore"):
        dt = eta * np.sqrt(softening / a)
    return dt


def suggest_timestep(
    accelerations: np.ndarray,
    *,
    softening: float,
    eta: float = 0.025,
    dt_max: float = np.inf,
) -> float:
    """The synchronised (global) step: the tightest per-body constraint."""
    dt = float(np.min(acceleration_timestep(accelerations, softening=softening, eta=eta)))
    return min(dt, dt_max)


@dataclass
class AdaptiveLeapfrog:
    """Synchronised adaptive kick-drift-kick leapfrog.

    Each step uses the current global suggestion, limited to grow by at
    most ``growth_limit`` per step (shrinking is unrestricted, so close
    encounters are resolved promptly).  Not strictly symplectic — no
    adaptive scheme is — but the clamped, acceleration-symmetric choice
    keeps energy drift bounded in practice, which the tests check.
    """

    softening: float
    eta: float = 0.025
    dt_max: float = np.inf
    growth_limit: float = 1.3
    #: history of steps actually taken
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.growth_limit <= 1.0:
            raise ConfigurationError(
                f"growth_limit must be > 1, got {self.growth_limit}"
            )

    def run(
        self,
        particles: ParticleSet,
        accel: Callable[[np.ndarray], np.ndarray],
        *,
        t_end: float,
    ) -> float:
        """Advance ``particles`` to ``t_end``; returns the final time.

        The last step is shortened to land exactly on ``t_end``.
        """
        if t_end <= 0.0:
            raise ConfigurationError(f"t_end must be positive, got {t_end}")
        t = 0.0
        a = accel(particles.positions)
        dt_prev = None
        while t < t_end:
            dt = suggest_timestep(
                a, softening=self.softening, eta=self.eta, dt_max=self.dt_max
            )
            if dt_prev is not None:
                dt = min(dt, dt_prev * self.growth_limit)
            dt = min(dt, t_end - t)
            if dt <= 0.0 or not np.isfinite(dt):  # pragma: no cover - guard
                raise ConfigurationError(f"degenerate time step {dt}")
            particles.velocities += 0.5 * dt * a
            particles.positions += dt * particles.velocities
            a = accel(particles.positions)
            particles.velocities += 0.5 * dt * a
            t += dt
            dt_prev = dt
            self.history.append(dt)
        return t

    @property
    def n_steps(self) -> int:
        """Steps taken so far."""
        return len(self.history)


@dataclass(frozen=True)
class BlockTimestepSchedule:
    """Power-of-two hierarchical block timesteps.

    Rung ``r`` (``0 <= r < n_rungs``) steps with ``dt_max / 2**r``; the
    finest rung defines the substep granularity ``dt_min`` and one *sync
    interval* spans ``2**(n_rungs - 1)`` substeps, after which every
    rung's step boundary coincides and the whole system is synchronised.

    A rung-``r`` step spans ``2**(n_rungs - 1 - r)`` substeps and may
    only begin at substep indices that are multiples of its span — the
    *block* alignment that makes the hierarchy nest.  The per-body
    criterion is the softened-gravity one of
    :func:`acceleration_timestep`; rung re-assignment happens when a
    body's own step closes, moving to a shorter step immediately but to
    a longer one only when the longer block is aligned
    (:meth:`min_rung_at`).

    All operations are vectorised and elementwise per body, so rung
    assignment is deterministic and permutation-equivariant by
    construction (the property suite checks both).
    """

    dt_max: float
    n_rungs: int = 4
    eta: float = 0.025
    softening: float = 1e-2

    def __post_init__(self) -> None:
        if self.dt_max <= 0.0 or not np.isfinite(self.dt_max):
            raise ConfigurationError(f"dt_max must be positive, got {self.dt_max}")
        if not (1 <= self.n_rungs <= 16):
            raise ConfigurationError(
                f"n_rungs must be in [1, 16], got {self.n_rungs}"
            )
        if self.eta <= 0.0:
            raise ConfigurationError(f"eta must be positive, got {self.eta}")
        if self.softening <= 0.0:
            raise ConfigurationError(
                "block timesteps use the softened-gravity criterion; "
                f"softening must be positive, got {self.softening}"
            )

    # -- geometry ----------------------------------------------------------
    @property
    def n_substeps(self) -> int:
        """Substeps per sync interval (``2**(n_rungs - 1)``)."""
        return 1 << (self.n_rungs - 1)

    @property
    def dt_min(self) -> float:
        """The finest rung's step — the substep granularity."""
        return self.dt_max / self.n_substeps

    def span(self, rungs: np.ndarray | int) -> np.ndarray | int:
        """How many substeps one step of each rung covers."""
        return 1 << (self.n_rungs - 1 - np.asarray(rungs))

    def rung_dt(self, rungs: np.ndarray) -> np.ndarray:
        """Per-body step sizes ``dt_max / 2**r`` (exact: powers of two)."""
        return self.dt_max * np.exp2(-np.asarray(rungs, dtype=np.float64))

    def is_sync(self, substep: int) -> bool:
        """Whether ``substep`` is a full-synchronisation boundary."""
        return substep % self.n_substeps == 0

    # -- rung membership over time ----------------------------------------
    def begins(self, rungs: np.ndarray, substep: int) -> np.ndarray:
        """Bodies whose own step *begins* at substep index ``substep``."""
        return (substep % self.span(rungs)) == 0

    def closes(self, rungs: np.ndarray, boundary: int) -> np.ndarray:
        """Bodies whose own step *closes* at substep boundary ``boundary``.

        These are the *active* bodies of the substep ending there — the
        only ones that need a fresh force evaluation.  Every rung closes
        at every multiple of its span, so rung ``r`` hits exactly the
        ``2**(n_rungs - 1 - r)``-aligned boundaries and *all* rungs close
        together at sync boundaries.
        """
        return (boundary % self.span(rungs)) == 0

    def min_rung_at(self, substep: int) -> int:
        """The longest-step (smallest) rung whose block is aligned here.

        A move to rung ``r`` is only allowed at substep indices divisible
        by ``span(r)``; the allowed rungs at a given index form an up-set
        whose minimum this returns (0 at sync boundaries).
        """
        s = substep % self.n_substeps
        if s == 0:
            return 0
        # trailing zero bits of s bound how coarse an aligned block can be
        tz = (s & -s).bit_length() - 1
        return max(0, self.n_rungs - 1 - tz)

    # -- assignment --------------------------------------------------------
    def rungs_from_timesteps(self, dt_body: np.ndarray) -> np.ndarray:
        """Desired rung per body: the longest step not exceeding its dt.

        Bodies whose criterion allows more than ``dt_max`` sit on rung 0;
        bodies tighter than the finest rung are clamped to it (the
        schedule cannot resolve them — pick a smaller ``dt_max`` or more
        rungs).
        """
        dt_body = np.asarray(dt_body, dtype=np.float64)
        with np.errstate(divide="ignore", over="ignore"):
            ratio = self.dt_max / dt_body
        r = np.ceil(np.log2(np.maximum(ratio, 1.0)))
        r = np.where(np.isfinite(r), r, self.n_rungs - 1)
        return np.clip(r, 0, self.n_rungs - 1).astype(np.int64)

    def assign(self, accelerations: np.ndarray) -> np.ndarray:
        """Initial rung assignment from a full force pass (sync point)."""
        dt_body = acceleration_timestep(
            accelerations, softening=self.softening, eta=self.eta
        )
        return self.rungs_from_timesteps(dt_body)

    def update(
        self,
        rungs: np.ndarray,
        accelerations: np.ndarray,
        active: np.ndarray,
        substep: int,
    ) -> np.ndarray:
        """Re-assign the rungs of ``active`` bodies whose step just closed.

        ``accelerations`` holds the fresh ``(len(active), 3)`` rows for
        the active bodies.  Moving to a shorter step is immediate; moving
        to a longer one is limited by block alignment at ``substep``
        (:meth:`min_rung_at`).  Returns a new rung array; the input is
        not mutated.
        """
        active = np.asarray(active)
        dt_body = acceleration_timestep(
            accelerations, softening=self.softening, eta=self.eta
        )
        desired = self.rungs_from_timesteps(dt_body)
        out = np.array(rungs, dtype=np.int64, copy=True)
        out[active] = np.maximum(desired, self.min_rung_at(substep))
        return out

    # -- introspection -----------------------------------------------------
    def occupancy(self, rungs: np.ndarray) -> np.ndarray:
        """Body count per rung (length ``n_rungs``)."""
        return np.bincount(
            np.asarray(rungs, dtype=np.int64), minlength=self.n_rungs
        )

    def to_dict(self) -> dict:
        return {
            "dt_max": self.dt_max,
            "n_rungs": self.n_rungs,
            "eta": self.eta,
            "softening": self.softening,
        }

"""Time-step control: acceleration-based criteria and an adaptive driver.

Fixed-step leapfrog (the paper's convention) is fine for collisionless
sweeps, but long production runs use an adaptive step.  This module
provides the standard softened-gravity criterion

    dt_i = eta * sqrt(eps / |a_i|)

(the dimensionally natural time for a body to cross the softening length
under its current acceleration) and :class:`AdaptiveLeapfrog`, a
synchronised adaptive KDK driver that re-selects the global step from the
tightest body while clamping step-to-step changes to preserve most of the
leapfrog's good energy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.nbody.particles import ParticleSet

__all__ = ["acceleration_timestep", "suggest_timestep", "AdaptiveLeapfrog"]


def acceleration_timestep(
    accelerations: np.ndarray, *, softening: float, eta: float = 0.025
) -> np.ndarray:
    """Per-body time steps ``eta * sqrt(eps / |a|)``.

    Bodies with zero acceleration get ``inf`` (they impose no constraint).
    """
    if softening <= 0.0:
        raise ConfigurationError(
            f"softening must be positive for this criterion, got {softening}"
        )
    if eta <= 0.0:
        raise ConfigurationError(f"eta must be positive, got {eta}")
    a = np.linalg.norm(np.asarray(accelerations, dtype=np.float64), axis=1)
    with np.errstate(divide="ignore"):
        dt = eta * np.sqrt(softening / a)
    return dt


def suggest_timestep(
    accelerations: np.ndarray,
    *,
    softening: float,
    eta: float = 0.025,
    dt_max: float = np.inf,
) -> float:
    """The synchronised (global) step: the tightest per-body constraint."""
    dt = float(np.min(acceleration_timestep(accelerations, softening=softening, eta=eta)))
    return min(dt, dt_max)


@dataclass
class AdaptiveLeapfrog:
    """Synchronised adaptive kick-drift-kick leapfrog.

    Each step uses the current global suggestion, limited to grow by at
    most ``growth_limit`` per step (shrinking is unrestricted, so close
    encounters are resolved promptly).  Not strictly symplectic — no
    adaptive scheme is — but the clamped, acceleration-symmetric choice
    keeps energy drift bounded in practice, which the tests check.
    """

    softening: float
    eta: float = 0.025
    dt_max: float = np.inf
    growth_limit: float = 1.3
    #: history of steps actually taken
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.growth_limit <= 1.0:
            raise ConfigurationError(
                f"growth_limit must be > 1, got {self.growth_limit}"
            )

    def run(
        self,
        particles: ParticleSet,
        accel: Callable[[np.ndarray], np.ndarray],
        *,
        t_end: float,
    ) -> float:
        """Advance ``particles`` to ``t_end``; returns the final time.

        The last step is shortened to land exactly on ``t_end``.
        """
        if t_end <= 0.0:
            raise ConfigurationError(f"t_end must be positive, got {t_end}")
        t = 0.0
        a = accel(particles.positions)
        dt_prev = None
        while t < t_end:
            dt = suggest_timestep(
                a, softening=self.softening, eta=self.eta, dt_max=self.dt_max
            )
            if dt_prev is not None:
                dt = min(dt, dt_prev * self.growth_limit)
            dt = min(dt, t_end - t)
            if dt <= 0.0 or not np.isfinite(dt):  # pragma: no cover - guard
                raise ConfigurationError(f"degenerate time step {dt}")
            particles.velocities += 0.5 * dt * a
            particles.positions += dt * particles.velocities
            a = accel(particles.positions)
            particles.velocities += 0.5 * dt * a
            t += dt
            dt_prev = dt
            self.history.append(dt)
        return t

    @property
    def n_steps(self) -> int:
        """Steps taken so far."""
        return len(self.history)

"""Unit systems and physical constants for the N-body substrate.

The simulations in the paper (and in essentially all treecode literature)
run in *Hénon units* (a.k.a. N-body units): ``G = 1``, total mass ``M = 1``,
total energy ``E = -1/4``.  This module provides that convention as the
default plus helpers for converting to physical units when a user wants to
interpret results as, e.g., a star cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Gravitational constant in SI units [m^3 kg^-1 s^-2].
G_SI = 6.67430e-11

#: Gravitational constant in the default N-body (Hénon) unit system.
G_NBODY = 1.0

#: One parsec in metres.
PARSEC_M = 3.0856775814913673e16

#: One solar mass in kilograms.
SOLAR_MASS_KG = 1.98892e30

#: One year in seconds (Julian year).
YEAR_S = 3.1557600e7


@dataclass(frozen=True)
class UnitSystem:
    """A self-consistent set of mass/length/time units with fixed ``G``.

    Parameters
    ----------
    mass_kg:
        The simulation mass unit expressed in kilograms.
    length_m:
        The simulation length unit expressed in metres.
    G:
        The value the gravitational constant takes in these units
        (``1.0`` for N-body units).

    The time unit is derived from the requirement that ``G`` has the given
    value: ``t = sqrt(G_sim * l^3 / (G_SI * m))``.
    """

    mass_kg: float = SOLAR_MASS_KG
    length_m: float = PARSEC_M
    G: float = G_NBODY

    @property
    def time_s(self) -> float:
        """Duration of one simulation time unit in seconds."""
        return (self.G * self.length_m**3 / (G_SI * self.mass_kg)) ** 0.5

    @property
    def velocity_m_s(self) -> float:
        """One simulation velocity unit in metres per second."""
        return self.length_m / self.time_s

    @property
    def energy_j(self) -> float:
        """One simulation energy unit in joules."""
        return self.mass_kg * self.velocity_m_s**2

    def time_in_years(self, t_sim: float) -> float:
        """Convert a simulation time to Julian years."""
        return t_sim * self.time_s / YEAR_S


#: The default unit system used throughout the library: one solar mass,
#: one parsec, G = 1.
HENON = UnitSystem()

"""repro.obs — unified tracing & metrics for the PTPM reproduction.

The paper's whole argument is about *where time goes* — kernel vs host vs
transfer along the time axis, load balance across compute units along the
space axis.  This package makes that accounting first-class:

* :mod:`repro.obs.tracing` — a hierarchical span tracer with wall-clock
  and *simulated-hardware* timelines;
* :mod:`repro.obs.metrics` — counters, gauges and bounded-reservoir
  histograms with percentile summaries, all supporting Prometheus-style
  ``labels={...}`` timeseries;
* :mod:`repro.obs.export` — Chrome-trace (Perfetto), JSON-lines,
  Prometheus text exposition and markdown exporters;
* :mod:`repro.obs.ledger` — a durable SQLite run ledger (``runs`` /
  ``slices`` / ``events``) that survives the process, written as an
  observer by :mod:`repro.runtime` sessions and the :mod:`repro.serve`
  scheduler, and read by ``repro-nbody top`` / ``repro-nbody report``.

Instrumentation throughout the library goes through the module-level
facade here and is a near-zero-cost no-op unless :data:`enabled` is true::

    from repro import obs

    obs.enable(reset=True)
    sim.run(100)
    obs.export.write_chrome_trace("trace.json", obs.tracer(), obs.metrics())

The switch is the plain module attribute ``obs.enabled`` — every facade
helper re-reads it per call, so both ``obs.enable()`` and a direct
``obs.enabled = True`` assignment take effect immediately.  The usual
entry points are ``repro-nbody profile <experiment>`` and the ``--trace``
flag on any CLI subcommand.

The run-runtime and fault-tolerance layers report through here too:
``repro.runtime`` emits ``runtime.run`` / ``runtime.checkpoint`` spans, a
``runtime.resume`` instant and the ``checkpoints_total`` counter;
``repro.exec`` adds ``exec.retry`` spans with ``task_retries_total`` for
recovered task failures, and ``exec.fallback`` spans with
``exec_fallbacks_total`` when a dying pool backend degrades along
process → thread → serial.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from repro.obs import export  # noqa: F401  (re-exported submodule)
from repro.obs import ledger  # noqa: F401  (re-exported submodule)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Span, SpanTracer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "capture",
    "tracer",
    "metrics",
    "span",
    "instant",
    "complete_span",
    "sim_span",
    "advance_sim",
    "sim_now",
    "inc",
    "observe",
    "set_gauge",
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "export",
    "ledger",
]

#: Master switch: when False every facade helper is a no-op.
enabled: bool = False

_tracer = SpanTracer()
_metrics = MetricsRegistry()


def tracer() -> SpanTracer:
    """The process-global span tracer."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def enable(*, reset: bool = False) -> None:
    """Turn instrumentation on (optionally clearing prior data)."""
    global enabled
    if reset:
        _tracer.reset()
        _metrics.reset()
    enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded data is kept until ``reset``)."""
    global enabled
    enabled = False


def reset() -> None:
    """Clear all recorded spans and metrics."""
    _tracer.reset()
    _metrics.reset()


@contextmanager
def capture(*, reset: bool = True):
    """Enable tracing for a scope; yields ``(tracer, metrics)``.

    Restores the previous on/off state on exit, keeping the recorded data
    available for export.
    """
    global enabled
    prior = enabled
    enable(reset=reset)
    try:
        yield _tracer, _metrics
    finally:
        enabled = prior


# ---------------------------------------------------------------------------
# Facade helpers — each one re-reads ``enabled`` so the disabled path costs
# a single attribute check.
# ---------------------------------------------------------------------------

def span(name: str, **attrs: Any):
    """Open a wall-clock span (no-op context manager when disabled)."""
    if not enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration event."""
    if enabled:
        _tracer.instant(name, **attrs)


def complete_span(name: str, t0_wall: float, t1_wall: float, **attrs: Any) -> None:
    """Record an already-finished wall span (absolute perf_counter times)."""
    if enabled:
        _tracer.complete_span(name, t0_wall, t1_wall, **attrs)


def sim_span(
    name: str, t0: float, t1: float, *, track: str = "device", **attrs: Any
) -> None:
    """Record an interval on the simulated-hardware timeline."""
    if enabled:
        _tracer.sim_span(name, t0, t1, track=track, **attrs)


def advance_sim(dt: float) -> None:
    """Advance the simulated clock by ``dt`` seconds."""
    if enabled:
        _tracer.advance_sim(dt)


def sim_now() -> float:
    """Current simulated-clock time (0.0 while disabled/never advanced)."""
    return _tracer.sim_time


def inc(name: str, amount: float = 1, *, labels: dict | None = None) -> None:
    """Increment a counter (optionally one labeled timeseries of it)."""
    if enabled:
        _metrics.counter(name, labels=labels).inc(amount)


def observe(name: str, value: float, *, labels: dict | None = None) -> None:
    """Record a histogram sample (optionally per labeled timeseries)."""
    if enabled:
        _metrics.histogram(name, labels=labels).observe(value)


def set_gauge(name: str, value: float, *, labels: dict | None = None) -> None:
    """Set a gauge (optionally one labeled timeseries of it)."""
    if enabled:
        _metrics.gauge(name, labels=labels).set(value)

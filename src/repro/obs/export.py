"""Exporters: Chrome trace JSON, JSON-lines, Prometheus text, markdown.

Four consumers, four formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``chrome://tracing``.  Wall-clock spans land in a "wall clock (python
  host)" process on a single thread (nesting renders as a flame graph);
  simulated spans land in a "simulated hardware" process with one trace
  *thread per track* — "device", "host", "pcie", one per compute unit
  ("CU00"...), pipeline lanes — so the PTPM space axis reads directly off
  the timeline.
* :func:`write_jsonl` — one JSON object per line (spans, then metrics),
  the machine-diffable event log benchmarks consume.
* :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  text exposition format (0.0.4): counters and gauges as labeled
  samples (gauges grow ``_min``/``_max`` companion series), histograms
  as summaries with ``{quantile=...}`` samples plus exact ``_sum`` /
  ``_count``.  Dots in metric names become underscores
  (``serve.jobs_total`` → ``serve_jobs_total``).
* :func:`summary_markdown` — a human-readable per-span-name aggregate plus
  the metrics snapshot, printed by ``repro-nbody profile``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "metrics_json",
    "write_metrics_json",
    "prometheus_text",
    "write_prometheus",
    "summary_markdown",
    "ledger_report_markdown",
    "ledger_report_html",
]

#: pid of the wall-clock process in the Chrome trace.
WALL_PID = 1
#: pid of the simulated-hardware process in the Chrome trace.
SIM_PID = 2

_US = 1e6  # trace-event timestamps are microseconds


def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out


def chrome_trace(
    tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Build a Chrome trace-event document from a tracer's spans.

    Timestamps are non-negative microseconds; within each (pid, tid) the
    emitted events are sorted by start time (ties broken longest-first so
    nested ``X`` events stack correctly).
    """
    events: list[dict[str, Any]] = [
        _meta("process_name", WALL_PID, 0, "wall clock (python host)"),
        _meta("thread_name", WALL_PID, 0, "host"),
        _meta("process_name", SIM_PID, 0, "simulated hardware"),
    ]
    tracks: dict[str, int] = {}
    body: list[dict[str, Any]] = []
    for sp in tracer.spans:
        if sp.kind == "sim":
            tid = _track_tid(tracks, sp.track or "device", events)
            body.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "pid": SIM_PID,
                    "tid": tid,
                    "ts": max(0.0, (sp.t0_sim or 0.0) * _US),
                    "dur": max(0.0, sp.sim_seconds * _US),
                    "cat": "sim",
                    "args": _json_safe(sp.attrs),
                }
            )
        elif sp.kind == "instant":
            body.append(
                {
                    "name": sp.name,
                    "ph": "i",
                    "pid": WALL_PID,
                    "tid": 0,
                    "ts": max(0.0, sp.t0_wall * _US),
                    "s": "t",
                    "cat": "wall",
                    "args": _json_safe(sp.attrs),
                }
            )
        else:
            body.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "pid": WALL_PID,
                    "tid": 0,
                    "ts": max(0.0, sp.t0_wall * _US),
                    "dur": max(0.0, sp.wall_seconds * _US),
                    "cat": "wall",
                    "args": _json_safe(sp.attrs),
                }
            )
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e.get("dur", 0.0)))
    doc: dict[str, Any] = {
        "traceEvents": events + body,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "n_spans": len(tracer.spans)},
    }
    if metrics is not None and len(metrics):
        doc["otherData"]["metrics"] = metrics.snapshot()
    return doc


def _meta(name: str, pid: int, tid: int, value: str) -> dict[str, Any]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": {"name": value}}


def _track_tid(tracks: dict[str, int], track: str, events: list[dict[str, Any]]) -> int:
    tid = tracks.get(track)
    if tid is None:
        tid = len(tracks)
        tracks[track] = tid
        events.append(_meta("thread_name", SIM_PID, tid, track))
    return tid


def write_chrome_trace(
    path: str | Path, tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> Path:
    """Write the Chrome trace JSON for ``tracer`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, metrics)), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def span_records(tracer: SpanTracer) -> list[dict[str, Any]]:
    """Flat dict records for every span, in completion order."""
    recs = []
    for sp in tracer.spans:
        rec: dict[str, Any] = {
            "type": sp.kind,
            "name": sp.name,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "depth": sp.depth,
            "t0_wall": sp.t0_wall,
            "t1_wall": sp.t1_wall,
        }
        if sp.t0_sim is not None:
            rec["t0_sim"] = sp.t0_sim
            rec["t1_sim"] = sp.t1_sim
            rec["track"] = sp.track
        if sp.attrs:
            rec["attrs"] = _json_safe(sp.attrs)
        recs.append(rec)
    return recs


def write_jsonl(
    path: str | Path, tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> Path:
    """Write spans (and a metrics snapshot) as JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for rec in span_records(tracer):
            fh.write(json.dumps(rec) + "\n")
        if metrics is not None:
            for m in metrics.snapshot().values():
                fh.write(json.dumps(m) + "\n")
    return path


def metrics_json(metrics: MetricsRegistry) -> dict[str, Any]:
    """The registry snapshot, ready for ``json.dump``."""
    return metrics.snapshot()


def write_metrics_json(path: str | Path, metrics: MetricsRegistry) -> Path:
    """Write the metrics snapshot to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(metrics_json(metrics), indent=2), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """A legal Prometheus metric name (dots and dashes to underscores)."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_value(value: float) -> str:
    """Deterministic sample rendering (shortest float repr; ints bare)."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _prom_labels(
    labels: Mapping[str, str], extra: Mapping[str, str] | None = None
) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        )
        for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    One ``# TYPE`` block per metric name covering every labeled variant:
    counters and gauge values map directly; gauge min/max become
    ``<name>_min`` / ``<name>_max`` gauge series so watermark data
    survives the export; histograms map to summaries —
    ``{quantile="0.5"|"0.9"|"0.99"}`` samples from the bounded reservoir
    plus exact ``_sum`` / ``_count``, and ``_min`` / ``_max`` gauges.
    Output is byte-stable for a given registry state (names and label
    sets are emitted in sorted order).
    """
    lines: list[str] = []
    for name in metrics.names():
        variants = metrics.by_name(name)
        first = variants[0]
        pname = _prom_name(name)
        if first.description:
            lines.append(f"# HELP {pname} {first.description}")
        if isinstance(first, Counter):
            lines.append(f"# TYPE {pname} counter")
            for m in variants:
                lines.append(
                    f"{pname}{_prom_labels(m.labels)} {_prom_value(m.value)}"
                )
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            for m in variants:
                if m.value is not None:
                    lines.append(
                        f"{pname}{_prom_labels(m.labels)} "
                        f"{_prom_value(m.value)}"
                    )
            for suffix in ("min", "max"):
                series = [
                    m for m in variants if getattr(m, suffix) is not None
                ]
                if not series:
                    continue
                lines.append(f"# TYPE {pname}_{suffix} gauge")
                for m in series:
                    lines.append(
                        f"{pname}_{suffix}{_prom_labels(m.labels)} "
                        f"{_prom_value(getattr(m, suffix))}"
                    )
        else:
            assert isinstance(first, Histogram)
            lines.append(f"# TYPE {pname} summary")
            for m in variants:
                if m.count:
                    for q in m.SUMMARY_PERCENTILES:
                        quantile = {"quantile": f"{q / 100.0:g}"}
                        lines.append(
                            f"{pname}{_prom_labels(m.labels, quantile)} "
                            f"{_prom_value(m.percentile(q))}"
                        )
                lines.append(
                    f"{pname}_sum{_prom_labels(m.labels)} {_prom_value(m.sum)}"
                )
                lines.append(
                    f"{pname}_count{_prom_labels(m.labels)} {m.count}"
                )
            for suffix in ("min", "max"):
                series = [
                    m for m in variants if getattr(m, suffix) is not None
                ]
                if not series:
                    continue
                lines.append(f"# TYPE {pname}_{suffix} gauge")
                for m in series:
                    lines.append(
                        f"{pname}_{suffix}{_prom_labels(m.labels)} "
                        f"{_prom_value(getattr(m, suffix))}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | Path, metrics: MetricsRegistry) -> Path:
    """Write the Prometheus text exposition of ``metrics`` to ``path``."""
    path = Path(path)
    path.write_text(prometheus_text(metrics), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Markdown summary
# ---------------------------------------------------------------------------

def summary_markdown(
    tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> str:
    """Aggregate spans by name and render spans + metrics as markdown."""
    agg: dict[str, dict[str, float]] = {}
    for sp in tracer.spans:
        a = agg.setdefault(sp.name, {"count": 0, "wall": 0.0, "sim": 0.0})
        a["count"] += 1
        a["wall"] += sp.wall_seconds
        a["sim"] += sp.sim_seconds
    lines = ["## Span summary", ""]
    if agg:
        lines += [
            "| span | count | wall total | simulated total |",
            "|---|---:|---:|---:|",
        ]
        for name in sorted(agg, key=lambda n: -agg[n]["wall"]):
            a = agg[name]
            lines.append(
                f"| {name} | {int(a['count'])} | {a['wall'] * 1e3:.2f} ms "
                f"| {a['sim'] * 1e3:.3f} ms |"
            )
    else:
        lines.append("(no spans recorded)")
    if metrics is not None and len(metrics):
        lines += ["", "## Metrics", "", "| metric | type | value |", "|---|---|---|"]
        for name, m in metrics.snapshot().items():
            kind = m["type"]
            if kind == "histogram":
                val = (
                    f"count={m['count']}"
                    + (
                        f", mean={m['mean']:.4g}, p50={m['p50']:.4g}, "
                        f"p90={m['p90']:.4g}, p99={m['p99']:.4g}"
                        if m["count"]
                        else ""
                    )
                )
            elif kind == "gauge":
                if m["value"] is None:
                    val = "-"
                else:
                    val = (
                        f"{m['value']:.6g} "
                        f"(min={m['min']:.6g}, max={m['max']:.6g})"
                    )
            else:
                val = f"{m['value']:g}"
            lines.append(f"| {name} | {kind} | {val} |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Ledger research-log report (markdown / HTML)
# ---------------------------------------------------------------------------

def _cell(value: Any, *, scale: float = 1.0, digits: int = 3) -> str:
    """Render one report cell ("-" for absent values)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value * scale:.{digits}f}"
    return str(value)


def _ledger_tables(ledger: Any) -> dict[str, Any]:
    """Shared row model behind the markdown and HTML reports.

    ``ledger`` is duck-typed (anything with the :class:`RunLedger` query
    surface) so the exporter stays import-cycle-free.
    """
    jobs = ledger.job_table()
    status_counts: dict[str, int] = {}
    for row in jobs:
        status_counts[row["status"]] = status_counts.get(row["status"], 0) + 1
    run_header = (
        "id", "spec", "source", "plan", "n", "steps", "status",
        "wait s", "wall s", "p50 ms", "p99 ms", "retries", "dedup",
    )
    run_rows = []
    for r in jobs:
        spec = (r["spec_hash"] or "")[:12] or "-"
        target = r["steps"]
        steps = (
            f"{r['steps_done']}/{target}" if target is not None
            else str(r["steps_done"])
        )
        run_rows.append((
            str(r["run_id"]), spec, r["source"], _cell(r["plan"]),
            _cell(r["n"]), steps, r["status"],
            _cell(r["queue_wait_s"]), _cell(r["wall_s"]),
            _cell(r["slice_p50_s"], scale=1e3), _cell(r["slice_p99_s"], scale=1e3),
            str(r["retries"]), str(r["dedup_count"]),
        ))
    plan_header = (
        "plan", "runs", "complete", "failed", "cached", "retries", "dedup",
        "mean wait s", "mean wall s", "p50 ms", "p99 ms", "steps",
    )
    plan_rows = [
        (
            p["plan"], str(p["runs"]), str(p["complete"]), str(p["failed"]),
            str(p["cached"]), str(p["retries"]), str(p["deduped"]),
            _cell(p["mean_queue_wait_s"]), _cell(p["mean_wall_s"]),
            _cell(p["slice_p50_s"], scale=1e3), _cell(p["slice_p99_s"], scale=1e3),
            str(p["steps"]),
        )
        for p in ledger.plan_table()
    ]
    event_counts: dict[str, int] = {}
    for ev in ledger.events():
        event_counts[ev["kind"]] = event_counts.get(ev["kind"], 0) + 1
    return {
        "path": str(ledger.path),
        "total": len(jobs),
        "status_counts": status_counts,
        "runs": (run_header, run_rows),
        "plans": (plan_header, plan_rows),
        "events": sorted(event_counts.items()),
    }


def _md_table(header: tuple, rows: list[tuple]) -> list[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return lines


def ledger_report_markdown(ledger: Any) -> str:
    """A markdown research-log report over a :class:`RunLedger`."""
    t = _ledger_tables(ledger)
    statuses = ", ".join(f"{k}: {v}" for k, v in sorted(t["status_counts"].items()))
    lines = [
        "# Run ledger report",
        "",
        f"- ledger: `{t['path']}`",
        f"- runs: {t['total']}" + (f" ({statuses})" if statuses else ""),
    ]
    if t["events"]:
        events = ", ".join(f"{k}: {v}" for k, v in t["events"])
        lines.append(f"- events: {events}")
    lines += ["", "## Per-plan summary", ""]
    if t["plans"][1]:
        lines += _md_table(*t["plans"])
    else:
        lines.append("(no plan-tagged runs)")
    lines += ["", "## Runs", ""]
    if t["runs"][1]:
        lines += _md_table(*t["runs"])
    else:
        lines.append("(no runs recorded)")
    return "\n".join(lines) + "\n"


def _html_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _html_table(header: tuple, rows: list[tuple]) -> list[str]:
    lines = ["<table>", "<tr>"]
    lines += [f"<th>{_html_escape(h)}</th>" for h in header]
    lines.append("</tr>")
    for row in rows:
        lines.append("<tr>")
        lines += [f"<td>{_html_escape(c)}</td>" for c in row]
        lines.append("</tr>")
    lines.append("</table>")
    return lines


def ledger_report_html(ledger: Any) -> str:
    """A self-contained HTML rendering of :func:`ledger_report_markdown`."""
    t = _ledger_tables(ledger)
    statuses = ", ".join(f"{k}: {v}" for k, v in sorted(t["status_counts"].items()))
    lines = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Run ledger report</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse}"
        "th,td{border:1px solid #999;padding:0.25em 0.6em;text-align:right}"
        "th{background:#eee}td:first-child,th:first-child{text-align:left}"
        "</style></head><body>",
        "<h1>Run ledger report</h1>",
        f"<p>ledger: <code>{_html_escape(t['path'])}</code><br>",
        f"runs: {t['total']}" + (f" ({_html_escape(statuses)})" if statuses else ""),
    ]
    if t["events"]:
        events = ", ".join(f"{k}: {v}" for k, v in t["events"])
        lines.append(f"<br>events: {_html_escape(events)}")
    lines.append("</p>")
    lines.append("<h2>Per-plan summary</h2>")
    if t["plans"][1]:
        lines += _html_table(*t["plans"])
    else:
        lines.append("<p>(no plan-tagged runs)</p>")
    lines.append("<h2>Runs</h2>")
    if t["runs"][1]:
        lines += _html_table(*t["runs"])
    else:
        lines.append("<p>(no runs recorded)</p>")
    lines.append("</body></html>")
    return "\n".join(lines) + "\n"

"""Exporters: Chrome trace-event JSON, JSON-lines, markdown summary.

Three consumers, three formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``), loadable in Perfetto or
  ``chrome://tracing``.  Wall-clock spans land in a "wall clock (python
  host)" process on a single thread (nesting renders as a flame graph);
  simulated spans land in a "simulated hardware" process with one trace
  *thread per track* — "device", "host", "pcie", one per compute unit
  ("CU00"...), pipeline lanes — so the PTPM space axis reads directly off
  the timeline.
* :func:`write_jsonl` — one JSON object per line (spans, then metrics),
  the machine-diffable event log benchmarks consume.
* :func:`summary_markdown` — a human-readable per-span-name aggregate plus
  the metrics snapshot, printed by ``repro-nbody profile``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "metrics_json",
    "write_metrics_json",
    "summary_markdown",
]

#: pid of the wall-clock process in the Chrome trace.
WALL_PID = 1
#: pid of the simulated-hardware process in the Chrome trace.
SIM_PID = 2

_US = 1e6  # trace-event timestamps are microseconds


def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out


def chrome_trace(
    tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Build a Chrome trace-event document from a tracer's spans.

    Timestamps are non-negative microseconds; within each (pid, tid) the
    emitted events are sorted by start time (ties broken longest-first so
    nested ``X`` events stack correctly).
    """
    events: list[dict[str, Any]] = [
        _meta("process_name", WALL_PID, 0, "wall clock (python host)"),
        _meta("thread_name", WALL_PID, 0, "host"),
        _meta("process_name", SIM_PID, 0, "simulated hardware"),
    ]
    tracks: dict[str, int] = {}
    body: list[dict[str, Any]] = []
    for sp in tracer.spans:
        if sp.kind == "sim":
            tid = _track_tid(tracks, sp.track or "device", events)
            body.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "pid": SIM_PID,
                    "tid": tid,
                    "ts": max(0.0, (sp.t0_sim or 0.0) * _US),
                    "dur": max(0.0, sp.sim_seconds * _US),
                    "cat": "sim",
                    "args": _json_safe(sp.attrs),
                }
            )
        elif sp.kind == "instant":
            body.append(
                {
                    "name": sp.name,
                    "ph": "i",
                    "pid": WALL_PID,
                    "tid": 0,
                    "ts": max(0.0, sp.t0_wall * _US),
                    "s": "t",
                    "cat": "wall",
                    "args": _json_safe(sp.attrs),
                }
            )
        else:
            body.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "pid": WALL_PID,
                    "tid": 0,
                    "ts": max(0.0, sp.t0_wall * _US),
                    "dur": max(0.0, sp.wall_seconds * _US),
                    "cat": "wall",
                    "args": _json_safe(sp.attrs),
                }
            )
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e.get("dur", 0.0)))
    doc: dict[str, Any] = {
        "traceEvents": events + body,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "n_spans": len(tracer.spans)},
    }
    if metrics is not None and len(metrics):
        doc["otherData"]["metrics"] = metrics.snapshot()
    return doc


def _meta(name: str, pid: int, tid: int, value: str) -> dict[str, Any]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": {"name": value}}


def _track_tid(tracks: dict[str, int], track: str, events: list[dict[str, Any]]) -> int:
    tid = tracks.get(track)
    if tid is None:
        tid = len(tracks)
        tracks[track] = tid
        events.append(_meta("thread_name", SIM_PID, tid, track))
    return tid


def write_chrome_trace(
    path: str | Path, tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> Path:
    """Write the Chrome trace JSON for ``tracer`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, metrics)), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def span_records(tracer: SpanTracer) -> list[dict[str, Any]]:
    """Flat dict records for every span, in completion order."""
    recs = []
    for sp in tracer.spans:
        rec: dict[str, Any] = {
            "type": sp.kind,
            "name": sp.name,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "depth": sp.depth,
            "t0_wall": sp.t0_wall,
            "t1_wall": sp.t1_wall,
        }
        if sp.t0_sim is not None:
            rec["t0_sim"] = sp.t0_sim
            rec["t1_sim"] = sp.t1_sim
            rec["track"] = sp.track
        if sp.attrs:
            rec["attrs"] = _json_safe(sp.attrs)
        recs.append(rec)
    return recs


def write_jsonl(
    path: str | Path, tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> Path:
    """Write spans (and a metrics snapshot) as JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for rec in span_records(tracer):
            fh.write(json.dumps(rec) + "\n")
        if metrics is not None:
            for m in metrics.snapshot().values():
                fh.write(json.dumps(m) + "\n")
    return path


def metrics_json(metrics: MetricsRegistry) -> dict[str, Any]:
    """The registry snapshot, ready for ``json.dump``."""
    return metrics.snapshot()


def write_metrics_json(path: str | Path, metrics: MetricsRegistry) -> Path:
    """Write the metrics snapshot to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(metrics_json(metrics), indent=2), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Markdown summary
# ---------------------------------------------------------------------------

def summary_markdown(
    tracer: SpanTracer, metrics: MetricsRegistry | None = None
) -> str:
    """Aggregate spans by name and render spans + metrics as markdown."""
    agg: dict[str, dict[str, float]] = {}
    for sp in tracer.spans:
        a = agg.setdefault(sp.name, {"count": 0, "wall": 0.0, "sim": 0.0})
        a["count"] += 1
        a["wall"] += sp.wall_seconds
        a["sim"] += sp.sim_seconds
    lines = ["## Span summary", ""]
    if agg:
        lines += [
            "| span | count | wall total | simulated total |",
            "|---|---:|---:|---:|",
        ]
        for name in sorted(agg, key=lambda n: -agg[n]["wall"]):
            a = agg[name]
            lines.append(
                f"| {name} | {int(a['count'])} | {a['wall'] * 1e3:.2f} ms "
                f"| {a['sim'] * 1e3:.3f} ms |"
            )
    else:
        lines.append("(no spans recorded)")
    if metrics is not None and len(metrics):
        lines += ["", "## Metrics", "", "| metric | type | value |", "|---|---|---|"]
        for name, m in metrics.snapshot().items():
            kind = m["type"]
            if kind == "histogram":
                val = (
                    f"count={m['count']}"
                    + (
                        f", mean={m['mean']:.4g}, p50={m['p50']:.4g}, "
                        f"p90={m['p90']:.4g}, p99={m['p99']:.4g}"
                        if m["count"]
                        else ""
                    )
                )
            elif kind == "gauge":
                val = f"{m['value']:.6g}" if m["value"] is not None else "-"
            else:
                val = f"{m['value']:g}"
            lines.append(f"| {name} | {kind} | {val} |")
    return "\n".join(lines)

"""Durable run ledger: a SQLite database of runs, slices, and events.

The paper's evaluation is built from per-run timing breakdowns; this
module makes every run's accounting survive the process so BENCH claims
stay traceable to recorded runs.  Three tables, keyed by the
content-addressing the serve layer already uses
(:meth:`~repro.serve.JobSpec.spec_hash`):

* ``runs`` — one row per submitted/executed run: spec identity
  (workload/n/seed/plan/dt/steps + sha256), source (``run`` / ``serve``
  / ``resume``), the shard that executed it (``None`` for single-host
  runs), backend, lifecycle timestamps, wall and simulated time,
  queue wait, cache/retry/dedup accounting, checkpoint directory,
  invariant-report pointer, a JSON metrics snapshot, and final status.
* ``slices`` — per scheduler slice (or checkpoint interval): sequence
  number, steps advanced, wall seconds.  Queue-wait and slice-latency
  percentiles for ``top``/``report`` come straight from here.
* ``events`` — free-form timestamped happenings (``command``,
  ``cache_hit``, ``dedup``, ``checkpoint``, ``guard``, ...), optionally
  attached to a run.

Writes are observers only: nothing in the simulation, scheduler, or
checkpoint path *reads* the ledger, so solo vs batched vs resumed runs
stay bit-identical with the ledger enabled (the ``repro.check``
determinism gate runs with it on in CI).

Each write is one committed transaction guarded by a process lock; the
connection is opened with ``check_same_thread=False`` so the serve
scheduler's runner threads can share it.  Schema identity lives in
``PRAGMA user_version`` (:data:`LEDGER_VERSION`) — opening a newer or
unrelated database raises :class:`~repro.errors.LedgerError` instead of
guessing, which is the drift gate CI asserts on; an *older* supported
version is migrated forward in place (v1 → v2 adds the ``shard``
column, v2 → v3 adds ``tenant``).

:meth:`RunLedger.merge` folds another ledger file into this one with
run-id remapping — `repro-nbody serve merge-shards` uses it to combine
per-shard worker databases into one experiment database; shard
provenance survives the merge because every copied row keeps its
``shard`` value.  :meth:`RunLedger.shard_table` and the ``shard=``
filter on :meth:`RunLedger.runs` answer "which shard ran what".
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import LedgerError
from repro.obs.metrics import percentile

__all__ = [
    "LEDGER_NAME",
    "LEDGER_VERSION",
    "RunLedger",
]

#: File name used when a ledger is opened on a directory.
LEDGER_NAME = "ledger.sqlite"

#: Schema version recorded in ``PRAGMA user_version``.
LEDGER_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY,
    spec_hash     TEXT,
    source        TEXT NOT NULL DEFAULT 'run',
    shard         TEXT,
    tenant        TEXT,
    workload      TEXT,
    n             INTEGER,
    seed          INTEGER,
    plan          TEXT,
    dt            REAL,
    steps         INTEGER,
    backend       TEXT,
    status        TEXT NOT NULL DEFAULT 'queued',
    submitted_s   REAL,
    started_s     REAL,
    finished_s    REAL,
    queue_wait_s  REAL,
    wall_s        REAL,
    simulated_s   REAL,
    force_passes  INTEGER,
    from_cache    INTEGER NOT NULL DEFAULT 0,
    dedup_count   INTEGER NOT NULL DEFAULT 0,
    retries       INTEGER NOT NULL DEFAULT 0,
    checkpoint_dir TEXT,
    invariant_report TEXT,
    metrics_json  TEXT,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_spec_hash ON runs(spec_hash);
CREATE INDEX IF NOT EXISTS idx_runs_status ON runs(status);
CREATE TABLE IF NOT EXISTS slices (
    slice_id  INTEGER PRIMARY KEY,
    run_id    INTEGER NOT NULL REFERENCES runs(run_id),
    seq       INTEGER NOT NULL,
    steps     INTEGER NOT NULL,
    wall_s    REAL NOT NULL,
    at_s      REAL
);
CREATE INDEX IF NOT EXISTS idx_slices_run ON slices(run_id);
CREATE TABLE IF NOT EXISTS events (
    event_id  INTEGER PRIMARY KEY,
    run_id    INTEGER REFERENCES runs(run_id),
    at_s      REAL NOT NULL,
    kind      TEXT NOT NULL,
    detail    TEXT
);
CREATE INDEX IF NOT EXISTS idx_events_run ON events(run_id);
"""

#: Columns of ``runs`` settable at submission time.
_SUBMIT_COLUMNS = (
    "spec_hash", "source", "shard", "tenant", "workload", "n", "seed", "plan",
    "dt", "steps", "backend", "checkpoint_dir",
)

#: In-place forward migrations: from-version -> DDL statements.
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: ("ALTER TABLE runs ADD COLUMN shard TEXT",),
    2: ("ALTER TABLE runs ADD COLUMN tenant TEXT",),
}

#: Columns of ``runs`` settable at finish time.
_FINISH_COLUMNS = (
    "wall_s", "simulated_s", "force_passes", "from_cache", "retries",
    "checkpoint_dir", "invariant_report", "error",
)


def _now() -> float:
    return time.time()


class RunLedger:
    """A durable, thread-safe SQLite ledger of simulation runs.

    ``path`` may be a directory (the ledger lands at
    ``<path>/ledger.sqlite``) or an explicit database file.  Opening
    creates the schema when absent and validates ``PRAGMA user_version``
    when present.
    """

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        if path.is_dir() or not path.suffix:
            path.mkdir(parents=True, exist_ok=True)
            path = path / LEDGER_NAME
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(str(path), check_same_thread=False)
        except sqlite3.Error as exc:  # pragma: no cover - environment
            raise LedgerError(f"cannot open ledger at {path}: {exc}") from exc
        self._conn.row_factory = sqlite3.Row
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock, self._db():
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                has_tables = self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table' "
                    "AND name='runs'"
                ).fetchone()
                if has_tables is not None:
                    raise LedgerError(
                        f"{self.path} has a runs table but no schema "
                        "version; refusing to touch an unversioned database"
                    )
                self._conn.executescript(_SCHEMA)
                self._conn.execute(f"PRAGMA user_version = {LEDGER_VERSION}")
            elif version < LEDGER_VERSION:
                # Older supported schema: migrate forward in place, one
                # version at a time, so shard merges can mix old and new
                # worker databases.
                while version < LEDGER_VERSION:
                    for statement in _MIGRATIONS[version]:
                        self._conn.execute(statement)
                    version += 1
                self._conn.execute(f"PRAGMA user_version = {LEDGER_VERSION}")
            elif version != LEDGER_VERSION:
                raise LedgerError(
                    f"{self.path} is ledger schema v{version}; this build "
                    f"supports v{LEDGER_VERSION}"
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _db(self) -> sqlite3.Connection:
        if self._conn is None:
            raise LedgerError(f"ledger at {self.path} is closed")
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def user_version(self) -> int:
        """The database's ``PRAGMA user_version`` (schema identity)."""
        with self._lock:
            return int(self._db().execute("PRAGMA user_version").fetchone()[0])

    # ------------------------------------------------------------------
    # writes (all observers; each one commits atomically)
    # ------------------------------------------------------------------
    def record_submitted(self, **fields: Any) -> int:
        """Insert a ``queued`` run row; returns its ``run_id``.

        Accepts the :data:`_SUBMIT_COLUMNS` keywords (``spec_hash``,
        ``source``, ``workload``, ``n``, ``seed``, ``plan``, ``dt``,
        ``steps``, ``backend``, ``checkpoint_dir``).
        """
        unknown = set(fields) - set(_SUBMIT_COLUMNS)
        if unknown:
            raise LedgerError(f"unknown run fields: {sorted(unknown)}")
        cols = ["status", "submitted_s", *fields]
        vals = ["queued", _now(), *fields.values()]
        sql = (
            f"INSERT INTO runs ({', '.join(cols)}) "
            f"VALUES ({', '.join('?' * len(cols))})"
        )
        with self._lock, self._db():
            cur = self._conn.execute(sql, vals)
            return int(cur.lastrowid)

    def record_started(
        self, run_id: int, *, backend: str | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        """Mark a run ``running``; derives ``queue_wait_s`` from submit."""
        now = _now()
        sets = ["status = 'running'", "started_s = ?",
                "queue_wait_s = MAX(0.0, ? - COALESCE(submitted_s, ?))"]
        vals: list[Any] = [now, now, now]
        if backend is not None:
            sets.append("backend = ?")
            vals.append(backend)
        if checkpoint_dir is not None:
            sets.append("checkpoint_dir = ?")
            vals.append(checkpoint_dir)
        vals.append(run_id)
        with self._lock, self._db():
            self._conn.execute(
                f"UPDATE runs SET {', '.join(sets)} WHERE run_id = ?", vals
            )

    def record_slice(
        self, run_id: int, *, seq: int, steps: int, wall_s: float
    ) -> None:
        """Append one executed slice for ``run_id``."""
        with self._lock, self._db():
            self._conn.execute(
                "INSERT INTO slices (run_id, seq, steps, wall_s, at_s) "
                "VALUES (?, ?, ?, ?, ?)",
                (run_id, seq, steps, wall_s, _now()),
            )

    def record_event(
        self, kind: str, detail: str | None = None, *,
        run_id: int | None = None,
    ) -> None:
        """Append a timestamped event (optionally attached to a run)."""
        with self._lock, self._db():
            self._conn.execute(
                "INSERT INTO events (run_id, at_s, kind, detail) "
                "VALUES (?, ?, ?, ?)",
                (run_id, _now(), kind, detail),
            )

    def record_finished(
        self, run_id: int, *, status: str,
        metrics: Mapping[str, Any] | None = None, **fields: Any,
    ) -> None:
        """Finalise a run row with ``status`` and closing accounting.

        Accepts the :data:`_FINISH_COLUMNS` keywords plus ``metrics``
        (JSON-serialised into ``metrics_json``).
        """
        if status not in ("complete", "failed", "cached"):
            raise LedgerError(
                f"status must be complete/failed/cached, got {status!r}"
            )
        unknown = set(fields) - set(_FINISH_COLUMNS)
        if unknown:
            raise LedgerError(f"unknown run fields: {sorted(unknown)}")
        sets = ["status = ?", "finished_s = ?"]
        vals: list[Any] = [status, _now()]
        for col, val in fields.items():
            sets.append(f"{col} = ?")
            vals.append(int(val) if col == "from_cache" else val)
        if metrics is not None:
            sets.append("metrics_json = ?")
            vals.append(json.dumps(metrics, sort_keys=True))
        vals.append(run_id)
        with self._lock, self._db():
            self._conn.execute(
                f"UPDATE runs SET {', '.join(sets)} WHERE run_id = ?", vals
            )

    def bump_dedup(self, run_id: int) -> None:
        """Count one coalesced duplicate submission onto ``run_id``."""
        with self._lock, self._db():
            self._conn.execute(
                "UPDATE runs SET dedup_count = dedup_count + 1 "
                "WHERE run_id = ?", (run_id,),
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _rows(self, sql: str, params: tuple = ()) -> list[dict[str, Any]]:
        with self._lock:
            cur = self._db().execute(sql, params)
            return [dict(r) for r in cur.fetchall()]

    def runs(
        self, *, status: str | None = None, spec_hash: str | None = None,
        plan: str | None = None, shard: str | None = None,
        tenant: str | None = None,
    ) -> list[dict[str, Any]]:
        """Run rows (newest last), optionally filtered."""
        clauses, params = [], []
        for col, val in (
            ("status", status), ("spec_hash", spec_hash), ("plan", plan),
            ("shard", shard), ("tenant", tenant),
        ):
            if val is not None:
                clauses.append(f"{col} = ?")
                params.append(val)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return self._rows(
            f"SELECT * FROM runs{where} ORDER BY run_id", tuple(params)
        )

    def run(self, run_id: int) -> dict[str, Any]:
        """One run row by id."""
        rows = self._rows("SELECT * FROM runs WHERE run_id = ?", (run_id,))
        if not rows:
            raise LedgerError(f"no run {run_id} in {self.path}")
        return rows[0]

    def slices(self, run_id: int) -> list[dict[str, Any]]:
        """Slice rows of one run, in execution order."""
        return self._rows(
            "SELECT * FROM slices WHERE run_id = ? ORDER BY slice_id",
            (run_id,),
        )

    def events(self, run_id: int | None = None) -> list[dict[str, Any]]:
        """Event rows — for one run, or all (``None``)."""
        if run_id is None:
            return self._rows("SELECT * FROM events ORDER BY event_id")
        return self._rows(
            "SELECT * FROM events WHERE run_id = ? ORDER BY event_id",
            (run_id,),
        )

    def slice_latency(
        self, *, run_id: int | None = None, plan: str | None = None
    ) -> dict[str, Any]:
        """count/mean/p50/p99 of slice wall seconds, optionally filtered."""
        sql = "SELECT s.wall_s FROM slices s"
        params: list[Any] = []
        clauses = []
        if run_id is not None:
            clauses.append("s.run_id = ?")
            params.append(run_id)
        if plan is not None:
            sql += " JOIN runs r ON r.run_id = s.run_id"
            clauses.append("r.plan = ?")
            params.append(plan)
        if clauses:
            sql += f" WHERE {' AND '.join(clauses)}"
        values = [row["wall_s"] for row in self._rows(sql, tuple(params))]
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
        }

    def job_table(self) -> list[dict[str, Any]]:
        """One row per run with joined slice stats — the ``top`` view."""
        rows = self.runs()
        slice_rows = self._rows(
            "SELECT run_id, COUNT(*) AS slices, SUM(steps) AS steps_done, "
            "SUM(wall_s) AS slice_wall_s FROM slices GROUP BY run_id"
        )
        by_run = {r["run_id"]: r for r in slice_rows}
        out = []
        for row in rows:
            agg = by_run.get(row["run_id"], {})
            latency = (
                self.slice_latency(run_id=row["run_id"])
                if agg.get("slices")
                else {"count": 0}
            )
            out.append(
                {
                    **row,
                    "slices": int(agg.get("slices") or 0),
                    "steps_done": int(agg.get("steps_done") or 0),
                    "slice_p50_s": latency.get("p50"),
                    "slice_p99_s": latency.get("p99"),
                }
            )
        return out

    def shard_table(self) -> list[dict[str, Any]]:
        """Per-shard aggregate rows — the provenance view of a merged DB.

        Single-host rows (no shard) aggregate under ``shard=None``.
        """
        return self._rows(
            "SELECT shard, COUNT(*) AS runs, "
            "SUM(status = 'complete') AS complete, "
            "SUM(status = 'failed') AS failed, "
            "SUM(status = 'cached') AS cached, "
            "SUM(COALESCE(retries, 0)) AS retries, "
            "SUM(COALESCE(dedup_count, 0)) AS deduped, "
            "AVG(wall_s) AS mean_wall_s, "
            "SUM(COALESCE(steps, 0)) AS steps "
            "FROM runs GROUP BY shard ORDER BY shard IS NULL, shard"
        )

    def tenant_table(self) -> list[dict[str, Any]]:
        """Per-tenant aggregate rows — the multi-tenancy accounting view.

        Untenanted rows (solo runs, pre-v3 databases) aggregate under
        ``tenant=None``.
        """
        return self._rows(
            "SELECT tenant, COUNT(*) AS runs, "
            "SUM(status = 'complete') AS complete, "
            "SUM(status = 'failed') AS failed, "
            "SUM(status = 'cached') AS cached, "
            "SUM(COALESCE(retries, 0)) AS retries, "
            "SUM(COALESCE(dedup_count, 0)) AS deduped, "
            "AVG(wall_s) AS mean_wall_s, "
            "AVG(queue_wait_s) AS mean_queue_wait_s, "
            "SUM(COALESCE(steps, 0)) AS steps "
            "FROM runs GROUP BY tenant ORDER BY tenant IS NULL, tenant"
        )

    def counts(self) -> dict[str, int]:
        """Total ``runs`` / ``slices`` / ``events`` rows — the merge gate.

        ``merge-shards`` asserts the merged database's counts equal the
        per-shard sums with these numbers.
        """
        with self._lock:
            db = self._db()
            return {
                table: int(
                    db.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                )
                for table in ("runs", "slices", "events")
            }

    def plan_table(self) -> list[dict[str, Any]]:
        """Per-plan aggregate rows — the ``report`` view."""
        rows = self._rows(
            "SELECT plan, COUNT(*) AS runs, "
            "SUM(status = 'complete') AS complete, "
            "SUM(status = 'failed') AS failed, "
            "SUM(status = 'cached') AS cached, "
            "SUM(from_cache) AS from_cache, "
            "SUM(COALESCE(retries, 0)) AS retries, "
            "SUM(COALESCE(dedup_count, 0)) AS deduped, "
            "AVG(wall_s) AS mean_wall_s, "
            "AVG(queue_wait_s) AS mean_queue_wait_s, "
            "SUM(COALESCE(steps, 0)) AS steps "
            "FROM runs WHERE plan IS NOT NULL GROUP BY plan ORDER BY plan"
        )
        for row in rows:
            latency = self.slice_latency(plan=row["plan"])
            row["slice_p50_s"] = latency.get("p50")
            row["slice_p99_s"] = latency.get("p99")
        return rows

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "RunLedger | str | Path") -> int:
        """Fold every run of ``other`` into this ledger; returns the count.

        Run ids are remapped (they are only unique per file); slices and
        events follow their runs, and ``other``'s run-less events are
        copied as-is.  This is the single-host precursor of the
        multi-shard database merge (ROADMAP item 1).
        """
        owned = not isinstance(other, RunLedger)
        src = RunLedger(other) if owned else other
        try:
            runs = src.runs()
            id_map: dict[int, int] = {}
            for row in runs:
                old_id = row.pop("run_id")
                cols = [c for c, v in row.items() if v is not None]
                vals = [row[c] for c in cols]
                sql = (
                    f"INSERT INTO runs ({', '.join(cols)}) "
                    f"VALUES ({', '.join('?' * len(cols))})"
                )
                with self._lock, self._db():
                    cur = self._conn.execute(sql, vals)
                    id_map[old_id] = int(cur.lastrowid)
            for old_id, new_id in id_map.items():
                for s in src.slices(old_id):
                    with self._lock, self._db():
                        self._conn.execute(
                            "INSERT INTO slices (run_id, seq, steps, wall_s, "
                            "at_s) VALUES (?, ?, ?, ?, ?)",
                            (new_id, s["seq"], s["steps"], s["wall_s"],
                             s["at_s"]),
                        )
            for ev in src.events():
                mapped = id_map.get(ev["run_id"]) if ev["run_id"] else None
                if ev["run_id"] and mapped is None:
                    continue  # event of a run we did not copy (filtered)
                with self._lock, self._db():
                    self._conn.execute(
                        "INSERT INTO events (run_id, at_s, kind, detail) "
                        "VALUES (?, ?, ?, ?)",
                        (mapped, ev["at_s"], ev["kind"], ev["detail"]),
                    )
            return len(id_map)
        finally:
            if owned:
                src.close()

    def __len__(self) -> int:
        with self._lock:
            return int(
                self._db().execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunLedger(path={str(self.path)!r}, runs={len(self)})"

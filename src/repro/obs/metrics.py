"""Metrics registry: counters, gauges and histograms with percentile summaries.

A deliberately small, Prometheus-flavoured surface:

* :class:`Counter` — monotonically increasing totals
  (``interactions_total``, ``kernel_launches_total``).
* :class:`Gauge` — last-written values with min/max tracking
  (``occupancy``, ``tree_depth``, ``gflops``).
* :class:`Histogram` — bounded-reservoir distributions with exact
  count/sum/mean/min/max and percentile summaries (``step_seconds``,
  ``serve.slice_seconds``).

Every instrument can carry **labels** — a small string-valued mapping
that distinguishes timeseries sharing one metric name, exactly as in
Prometheus::

    registry.counter("serve.slices_total", labels={"plan": "jw"}).inc()
    registry.histogram("serve.slice_seconds", labels={"plan": "i"}).observe(dt)

Label sets are normalised (string keys/values, sorted by key) so the
registry key — ``name{k="v",...}`` — is canonical: two call sites using
the same logical labels always hit the same instrument, and snapshots
are byte-stable regardless of insertion order.  A metric *name* is bound
to one instrument type across all of its label sets.

Histograms keep a fixed-size sample reservoir (Vitter's algorithm R with
a seed derived from the metric identity), so per-job/per-slice
timeseries never grow without bound while ``count``/``sum``/``mean`` and
``min``/``max`` stay exact and snapshots stay bit-reproducible for a
given observation sequence.

Metrics are host-process aggregates over a run (unlike spans they carry no
timeline); :mod:`repro.obs.export` serialises a registry snapshot to JSON,
Prometheus text exposition, and the markdown summary.  Like the tracer,
this module never consults the ``repro.obs.enabled`` switch — the facade
does.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labels_key",
    "percentile",
]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    s = sorted(values)
    if len(s) == 1:
        return float(s[0])
    rank = (len(s) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(s[lo])
    frac = rank - lo
    return float(s[lo] * (1.0 - frac) + s[hi] * frac)


def _normalise_labels(labels: Mapping[str, Any] | None) -> dict[str, str]:
    """Canonical label mapping: string keys/values, sorted by key."""
    if not labels:
        return {}
    out: dict[str, str] = {}
    for key in sorted(labels):
        if not isinstance(key, str) or not key:
            raise ValueError(f"label names must be non-empty strings, got {key!r}")
        out[key] = str(labels[key])
    return out


def labels_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """The registry key for ``name`` + ``labels``: ``name{k="v",...}``.

    Unlabeled metrics key on the bare name, keeping historical snapshot
    keys (``interactions_total``) unchanged.
    """
    normalised = _normalise_labels(labels)
    if not normalised:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in normalised.items())
    return f"{name}{{{rendered}}}"


class _Instrument:
    """Shared identity plumbing: name, labels, canonical key."""

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        #: normalised (string-valued, key-sorted) label set; {} if none
        self.labels = _normalise_labels(labels)

    @property
    def key(self) -> str:
        """The canonical registry/snapshot key (name + rendered labels)."""
        return labels_key(self.name, self.labels)

    def _identity_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Counter(_Instrument):
    """A monotonically increasing total."""

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(name, description, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter '{self.name}' cannot decrease (got {amount})")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", **self._identity_dict(), "value": self.value}


class Gauge(_Instrument):
    """A last-written value, tracking the min/max seen along the way."""

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(name, description, labels)
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            **self._identity_dict(),
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }


class Histogram(_Instrument):
    """A distribution with exact totals and a bounded sample reservoir.

    ``count``/``sum``/``mean``/``min``/``max`` are exact running
    aggregates; percentiles are computed over a fixed-size reservoir
    (Vitter's algorithm R) so memory stays bounded no matter how many
    samples a long-running service records.  Replacement decisions come
    from a private RNG seeded by the metric identity, so a given
    observation sequence always yields the same reservoir — snapshots
    are reproducible across runs and processes.
    """

    #: Percentiles reported by :meth:`summary`.
    SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)

    #: Default reservoir capacity — exact percentiles up to this count.
    DEFAULT_RESERVOIR = 4096

    def __init__(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
        *,
        reservoir_size: int = DEFAULT_RESERVOIR,
    ) -> None:
        super().__init__(name, description, labels)
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.reservoir_size = reservoir_size
        #: retained samples (the full sample until the reservoir fills)
        self.values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        # Seeded by identity, not time: same observation sequence ->
        # same reservoir, in any process.
        self._rng = random.Random(zlib.crc32(self.key.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if len(self.values) < self.reservoir_size:
            self.values.append(value)
        else:
            j = self._rng.randrange(self._count)
            if j < self.reservoir_size:
                self.values[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return float(self._sum)

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"histogram '{self.name}' has no samples")
        return self._sum / self._count

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    @property
    def saturated(self) -> bool:
        """Whether samples have been dropped from the reservoir."""
        return self._count > len(self.values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the retained samples.

        Exact until the reservoir saturates; a uniform estimate after.
        """
        if not self.values:
            raise ValueError(f"histogram '{self.name}' has no samples")
        return percentile(self.values, q)

    def summary(self) -> dict[str, Any]:
        """Exact count/sum/mean/min/max plus the standard percentiles."""
        out: dict[str, Any] = {"count": self.count, "sum": self.sum}
        if self._count:
            out.update(mean=self.mean, min=self._min, max=self._max)
            for q in self.SUMMARY_PERCENTILES:
                out[f"p{q:g}"] = self.percentile(q)
        if self.saturated:
            out["reservoir_size"] = self.reservoir_size
        return out

    def to_dict(self) -> dict[str, Any]:
        return {"type": "histogram", **self._identity_dict(), **self.summary()}


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``registry.counter("interactions_total").inc(n)`` — asking for an
    existing name with a different instrument type raises ``ValueError``,
    and the type binding holds across label sets: a metric name is a
    counter, a gauge, or a histogram for *every* ``labels=`` variant.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        #: instrument type bound to each metric *name* (across label sets)
        self._types: dict[str, type] = {}

    def _get_or_create(
        self,
        cls,
        name: str,
        description: str,
        labels: Mapping[str, Any] | None,
        **kwargs: Any,
    ):
        bound = self._types.get(name)
        if bound is not None and bound is not cls:
            raise ValueError(
                f"metric '{name}' already registered as {bound.__name__}, "
                f"not {cls.__name__}"
            )
        key = labels_key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, description, labels, **kwargs)
            self._metrics[key] = m
            self._types[name] = cls
        return m

    def counter(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, description, labels)

    def gauge(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, Any] | None = None,
        *,
        reservoir_size: int = Histogram.DEFAULT_RESERVOIR,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, description, labels, reservoir_size=reservoir_size
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str, labels: Mapping[str, Any] | None = None):
        """The instrument under ``name`` (+ ``labels``), or ``None``."""
        return self._metrics.get(labels_key(name, labels))

    def by_name(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every labeled variant of ``name``, key-sorted."""
        return [
            m for key, m in sorted(self._metrics.items()) if m.name == name
        ]

    def names(self) -> list[str]:
        """Distinct metric names (label sets collapsed), sorted."""
        return sorted({m.name for m in self._metrics.values()})

    def reset(self) -> None:
        """Forget all instruments and their data."""
        self._metrics.clear()
        self._types.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable view of every instrument, keyed by
        ``name`` or ``name{k="v",...}`` for labeled timeseries."""
        return {key: m.to_dict() for key, m in sorted(self._metrics.items())}

"""Metrics registry: counters, gauges and histograms with percentile summaries.

A deliberately small, Prometheus-flavoured surface:

* :class:`Counter` — monotonically increasing totals
  (``interactions_total``, ``kernel_launches_total``).
* :class:`Gauge` — last-written values with min/max tracking
  (``occupancy``, ``tree_depth``, ``gflops``).
* :class:`Histogram` — full-sample distributions with percentile
  summaries (``step_seconds``, ``kernel_seconds``).

Metrics are host-process aggregates over a run (unlike spans they carry no
timeline); :mod:`repro.obs.export` serialises a registry snapshot to JSON
and renders it in the markdown summary.  Like the tracer, this module
never consults the ``repro.obs.enabled`` switch — the facade does.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    s = sorted(values)
    if len(s) == 1:
        return float(s[0])
    rank = (len(s) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(s[lo])
    frac = rank - lo
    return float(s[lo] * (1.0 - frac) + s[hi] * frac)


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter '{self.name}' cannot decrease (got {amount})")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-written value, tracking the min/max seen along the way."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }


class Histogram:
    """A full-sample distribution with percentile summaries."""

    #: Percentiles reported by :meth:`summary`.
    SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"histogram '{self.name}' has no samples")
        return self.sum / self.count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the recorded samples."""
        if not self.values:
            raise ValueError(f"histogram '{self.name}' has no samples")
        return percentile(self.values, q)

    def summary(self) -> dict[str, Any]:
        """count/sum/mean/min/max plus the standard percentiles."""
        out: dict[str, Any] = {"count": self.count, "sum": self.sum}
        if self.values:
            out.update(
                mean=self.mean,
                min=float(min(self.values)),
                max=float(max(self.values)),
            )
            for q in self.SUMMARY_PERCENTILES:
                out[f"p{q:g}"] = self.percentile(q)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {"type": "histogram", "name": self.name, **self.summary()}


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``registry.counter("interactions_total").inc(n)`` — asking for an
    existing name with a different instrument type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, description: str):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name, description)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise ValueError(
                f"metric '{name}' already registered as {type(m).__name__}, "
                f"not {cls.__name__}"
            )
        return m

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, description)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def reset(self) -> None:
        """Forget all instruments and their data."""
        self._metrics.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable view of every instrument, keyed by name."""
        return {name: m.to_dict() for name, m in sorted(self._metrics.items())}

"""Obs-layer settings: where (and whether) the run ledger is written.

The durable run ledger is opt-in: it stays off until a directory is
configured, resolved with the library's usual precedence chain (first
hit wins):

1. an explicit ``ledger=`` argument to :class:`~repro.runtime.RunSession`
   / :class:`~repro.serve.JobService` (a :class:`RunLedger`, or ``False``
   to opt out of an enabled default);
2. the directory set through :func:`repro.configure` (``ledger_dir=``);
3. the ``REPRO_LEDGER_DIR`` environment variable;
4. the built-in default: no ledger.

The environment is read when a ledger is resolved (session/service
construction), not at import, so tests and subprocesses can adjust it
freely.  Resolved ledgers are cached per path so every session and
service in the process shares one connection (the
:class:`~repro.obs.ledger.RunLedger` is thread-safe).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs.ledger import RunLedger

__all__ = [
    "default_ledger",
    "ledger_dir",
    "set_ledger_override",
    "clear_overrides",
]

ENV_LEDGER_DIR = "REPRO_LEDGER_DIR"

#: ``repro.configure(ledger_dir=...)`` value (precedence level 2);
#: ``None`` means "not configured, fall through to the environment".
_ledger_dir_override: str | None = None

#: Open ledgers, keyed by resolved database path.
_open_ledgers: dict[Path, RunLedger] = {}


def set_ledger_override(ledger_dir: str | None) -> None:
    """Install the ``repro.configure``-level ledger directory."""
    global _ledger_dir_override
    _ledger_dir_override = None if ledger_dir is None else str(ledger_dir)


def clear_overrides() -> None:
    """Drop the configure-level ledger directory and close cached ledgers
    (tests)."""
    global _ledger_dir_override
    _ledger_dir_override = None
    for ledger in _open_ledgers.values():
        ledger.close()
    _open_ledgers.clear()


def ledger_dir() -> str | None:
    """The resolved ledger directory, or ``None`` when ledgering is off."""
    if _ledger_dir_override is not None:
        return _ledger_dir_override
    return os.environ.get(ENV_LEDGER_DIR) or None


def default_ledger() -> RunLedger | None:
    """The process-shared ledger a fresh session/service gets, or ``None``.

    One :class:`RunLedger` is kept open per resolved path, so concurrent
    sessions and services append to the same database through one
    thread-safe connection.
    """
    directory = ledger_dir()
    if directory is None:
        return None
    ledger = RunLedger(directory)
    cached = _open_ledgers.get(ledger.path)
    if cached is not None:
        ledger.close()
        return cached
    _open_ledgers[ledger.path] = ledger
    return ledger

"""Hierarchical span tracer on two timebases: wall clock and simulated.

The tracer records *spans* (named intervals with attributes) that nest
through a context-manager API::

    with tracer.span("force_pass", plan="jw", n=4096):
        with tracer.span("tree_build"):
            ...

Every span carries wall-clock timestamps (``time.perf_counter`` relative
to the tracer's epoch).  Because this repository simulates its GPU, a
second, *simulated* timeline coexists with the wall clock: the tracer owns
a simulated clock (seconds on the modelled hardware) that instrumentation
advances explicitly, and :meth:`SpanTracer.sim_span` records intervals on
that timeline — per-step kernel/host/transfer windows, per-compute-unit
execution intervals, pipeline batches.  Exporters
(:mod:`repro.obs.export`) map the two timebases to separate trace
processes so both are visible in one Perfetto view.

This module is policy-free: it never checks the package-level
``repro.obs.enabled`` switch.  The zero-cost-when-disabled guarantee is
implemented by the :mod:`repro.obs` facade, which returns
:data:`NULL_SPAN` without touching the tracer when tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "SpanTracer", "NULL_SPAN"]


@dataclass
class Span:
    """One named interval, on the wall-clock and/or simulated timeline.

    ``t0_wall``/``t1_wall`` are seconds since the tracer's epoch
    (``t1_wall`` is ``None`` while the span is open).  ``t0_sim``/``t1_sim``
    are seconds on the simulated-hardware timeline, set only for simulated
    spans.  ``track`` names the logical lane a simulated span belongs to
    ("device", "host", "pcie", "CU03", ...); wall spans leave it ``None``
    and nest on the single host thread.
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)
    t0_wall: float = 0.0
    t1_wall: float | None = None
    t0_sim: float | None = None
    t1_sim: float | None = None
    track: str | None = None
    kind: str = "span"  # "span" | "sim" | "instant"

    # -- context-manager protocol (wall spans) -------------------------
    _tracer: "SpanTracer | None" = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer is not None:
            self._tracer._close(self)

    def set(self, **attrs: Any) -> "Span":
        """Attach or update attributes on an open span."""
        self.attrs.update(attrs)
        return self

    @property
    def wall_seconds(self) -> float:
        """Wall duration (0.0 while the span is still open)."""
        if self.t1_wall is None:
            return 0.0
        return self.t1_wall - self.t0_wall

    @property
    def sim_seconds(self) -> float:
        """Simulated duration (0.0 for pure wall-clock spans)."""
        if self.t0_sim is None or self.t1_sim is None:
            return 0.0
        return self.t1_sim - self.t0_sim


class _NullSpan:
    """Shared no-op span returned by the facade when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: The singleton no-op span (allocation-free disabled path).
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Collects finished spans and owns the simulated clock."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.epoch = time.perf_counter()
        self.sim_time = 0.0

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded spans and restart both clocks."""
        self.spans.clear()
        self._stack.clear()
        self._next_id = 1
        self.epoch = time.perf_counter()
        self.sim_time = 0.0

    def _new_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _parent_id(self) -> int | None:
        return self._stack[-1].span_id if self._stack else None

    # -- wall-clock spans ----------------------------------------------
    def span(self, name: str, *, track: str | None = None, **attrs: Any) -> Span:
        """Open a wall-clock span; use as a context manager."""
        sp = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self._parent_id(),
            depth=len(self._stack),
            attrs=attrs,
            t0_wall=time.perf_counter() - self.epoch,
            track=track,
        )
        sp._tracer = self
        self._stack.append(sp)
        return sp

    def _close(self, sp: Span) -> None:
        sp.t1_wall = time.perf_counter() - self.epoch
        # tolerate out-of-order closes without corrupting the stack
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()
        elif sp in self._stack:  # pragma: no cover - defensive
            self._stack.remove(sp)
        self.spans.append(sp)

    def complete_span(
        self, name: str, t0_wall: float, t1_wall: float, **attrs: Any
    ) -> Span:
        """Record an already-finished wall-clock span.

        ``t0_wall``/``t1_wall`` are absolute ``time.perf_counter`` values
        (they are rebased onto the tracer's epoch here).  Used by the
        execution engine to log worker-measured task intervals from the
        dispatching thread — pool workers must never touch the tracer's
        (single-threaded) span stack.
        """
        if t1_wall < t0_wall:
            raise ValueError(
                f"span '{name}' ends before it starts ({t0_wall} > {t1_wall})"
            )
        sp = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self._parent_id(),
            depth=len(self._stack),
            attrs=attrs,
            t0_wall=t0_wall - self.epoch,
            t1_wall=t1_wall - self.epoch,
        )
        self.spans.append(sp)
        return sp

    def instant(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration wall-clock event."""
        now = time.perf_counter() - self.epoch
        sp = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self._parent_id(),
            depth=len(self._stack),
            attrs=attrs,
            t0_wall=now,
            t1_wall=now,
            kind="instant",
        )
        self.spans.append(sp)
        return sp

    # -- simulated timeline --------------------------------------------
    def sim_span(
        self, name: str, t0: float, t1: float, *, track: str = "device", **attrs: Any
    ) -> Span:
        """Record a completed interval on the simulated timeline.

        ``t0``/``t1`` are absolute simulated seconds (usually offsets from
        :attr:`sim_time` as it stood when the enclosing step started).
        """
        if t1 < t0:
            raise ValueError(f"sim span '{name}' ends before it starts ({t0} > {t1})")
        now = time.perf_counter() - self.epoch
        sp = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=self._parent_id(),
            depth=len(self._stack),
            attrs=attrs,
            t0_wall=now,
            t1_wall=now,
            t0_sim=float(t0),
            t1_sim=float(t1),
            track=track,
            kind="sim",
        )
        self.spans.append(sp)
        return sp

    def advance_sim(self, dt: float) -> float:
        """Advance the simulated clock by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance the simulated clock by {dt}")
        self.sim_time += float(dt)
        return self.sim_time

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> list[Span]:
        """All finished spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> list[Span]:
        """Direct children of a span."""
        return [s for s in self.spans if s.parent_id == span_id]

"""Analytic performance model, metrics, and calibration."""

from repro.perfmodel.metrics import (
    RateSummary,
    both_conventions,
    crossover_n,
    gflops_rate,
    parallel_efficiency,
    speedup,
)
from repro.perfmodel.analytic import (
    AnalyticInputs,
    predict_i_parallel,
    predict_j_parallel,
    predict_jw_parallel,
    predict_multi_device_scaling,
    predict_w_parallel,
)
from repro.perfmodel.calibration import (
    PAPER_CPU_SPEEDUP,
    PAPER_GPU_SPEEDUP_RANGE,
    PAPER_PEAK_GFLOPS_RSQRT,
    PAPER_SUSTAINED_GFLOPS,
    calibrate_interaction_cycles,
    expected_cpu_speedup,
    sustained_gflops,
)

__all__ = [
    "RateSummary",
    "both_conventions",
    "crossover_n",
    "gflops_rate",
    "parallel_efficiency",
    "speedup",
    "AnalyticInputs",
    "predict_i_parallel",
    "predict_j_parallel",
    "predict_jw_parallel",
    "predict_multi_device_scaling",
    "predict_w_parallel",
    "PAPER_CPU_SPEEDUP",
    "PAPER_GPU_SPEEDUP_RANGE",
    "PAPER_PEAK_GFLOPS_RSQRT",
    "PAPER_SUSTAINED_GFLOPS",
    "calibrate_interaction_cycles",
    "expected_cpu_speedup",
    "sustained_gflops",
]

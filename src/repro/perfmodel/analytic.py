"""Closed-form performance predictions for the four plans.

The simulator in :mod:`repro.gpu.timing` schedules real per-work-group
work; this module gives the *paper-style analytical model* — the formulas
a PTPM analysis writes down before running anything.  The test suite
checks that the analytic predictions track the simulator within a modest
factor, which is exactly the role such models play in the paper's
section 4.

All formulas are per force evaluation (one step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.hostmodel import HostCpuModel
from repro.gpu.device import DeviceSpec

__all__ = ["AnalyticInputs", "predict_i_parallel", "predict_j_parallel",
           "predict_w_parallel", "predict_jw_parallel", "predict_multi_device_scaling"]


@dataclass(frozen=True)
class AnalyticInputs:
    """Workload statistics the analytic model needs.

    For PP plans only ``n_bodies`` matters; tree plans additionally need
    the walk statistics (measured once or estimated from theta).
    """

    n_bodies: int
    wg_size: int = 256
    n_walks: int = 0
    mean_group_size: float = 0.0
    mean_list_length: float = 0.0
    lane_utilization: float = 1.0

    @property
    def tree_interactions(self) -> float:
        """Estimated interactions of one tree force pass."""
        return self.n_walks * self.mean_group_size * self.mean_list_length


def _occupancy_factor(device: DeviceSpec, n_workgroups: int, wg_size: int) -> float:
    """Fraction of the device's sustained rate a launch can use."""
    cu_util = min(1.0, n_workgroups / device.compute_units)
    wf_per_wg = math.ceil(wg_size / device.wavefront_size)
    resident = max(
        1, min(device.max_wavefronts_per_cu, wf_per_wg * max(1, n_workgroups // device.compute_units))
    )
    latency = min(1.0, resident / device.latency_hiding_wavefronts)
    return cu_util * latency


def predict_i_parallel(device: DeviceSpec, inp: AnalyticInputs) -> float:
    """Kernel seconds for the i-parallel plan: N^2 work, N/p blocks."""
    n = inp.n_bodies
    blocks = math.ceil(n / inp.wg_size)
    rate = device.sustained_interaction_rate * _occupancy_factor(
        device, blocks, inp.wg_size
    )
    return n * n / rate


def predict_j_parallel(
    device: DeviceSpec, inp: AnalyticInputs, target_wgs_per_cu: int = 4
) -> float:
    """Kernel seconds for the j-parallel plan: full occupancy, plus reduction."""
    n = inp.n_bodies
    blocks = math.ceil(n / inp.wg_size)
    s = max(1, math.ceil(target_wgs_per_cu * device.compute_units / blocks))
    s = min(s, max(1, blocks))
    rate = device.sustained_interaction_rate * _occupancy_factor(
        device, blocks * s, inp.wg_size
    )
    force = n * n / rate
    # reduction pass: read/write of n*s partial accelerations, memory-bound
    reduction = n * (s + 1) * 16 / device.global_bandwidth_bytes_s if s > 1 else 0.0
    return force + reduction


def predict_w_parallel(device: DeviceSpec, inp: AnalyticInputs) -> float:
    """Kernel seconds for w-parallel: tree interactions / (rate x lane util)."""
    if inp.tree_interactions <= 0:
        raise ValueError("tree statistics required for w-parallel prediction")
    rate = device.sustained_interaction_rate * _occupancy_factor(
        device, inp.n_walks, inp.wg_size
    )
    return inp.tree_interactions / (rate * max(1e-9, inp.lane_utilization))


def predict_jw_parallel(device: DeviceSpec, inp: AnalyticInputs) -> float:
    """Kernel seconds for jw-parallel: full lanes, queue keeps CUs busy."""
    if inp.tree_interactions <= 0:
        raise ValueError("tree statistics required for jw-parallel prediction")
    return inp.tree_interactions / device.sustained_interaction_rate


def predict_multi_device_scaling(
    device: DeviceSpec,
    host: HostCpuModel,
    inp: AnalyticInputs,
    n_devices: int,
) -> float:
    """Projected jw step time with ``n_devices`` GPUs sharing the walks.

    Kernel time divides across devices; the (overlapped) host walk
    generation does not, so it bounds scaling — the extension analysis
    the paper's conclusion gestures at.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    kernel = predict_jw_parallel(device, inp) / n_devices
    host_s = host.tree_build_seconds(inp.n_bodies) + host.walk_generation_seconds(
        inp.n_walks, int(inp.n_walks * inp.mean_list_length)
    )
    return max(kernel, host_s)

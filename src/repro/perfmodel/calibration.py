"""Calibration of the simulated device and host models.

The reproduction cannot match the paper's absolute wall-clock (the
substrate is a simulator, not the authors' testbed), so the calibration
strategy is:

1. **Device peak** comes from public HD 5850 specs (1440 ALUs x 2 flops x
   725 MHz = 2.088 TFLOPS); this is structural, not fitted.
2. **One throughput knob** — ``DeviceSpec.interaction_cycles`` — is set so
   the device's sustained all-pairs rate reproduces the paper's ~300
   GFLOPS (20-flop convention): 16 stream cores / 14 cycles x 18 CUs x
   725 MHz = 14.9e9 interactions/s = 298 GFLOPS.
3. **Host CPU rate** is set so the paper's ~400x CPU-vs-GPU ratio emerges:
   a 2.6 GHz Pentium sustaining 0.45 GFLOPS on the scalar sqrt-heavy
   inner loop (~6 cycles per flop) against the device's ~298 GFLOPS.
4. Host tree/walk coefficients are set at optimised-C magnitudes
   (documented per field in :class:`repro.core.hostmodel.HostCpuModel`)
   and produce the paper's qualitative regime: walk generation comparable
   to kernel time, so overlap matters.

:func:`calibrate_interaction_cycles` exposes step 2 as a function so the
tests can verify the shipped preset is self-consistent, and so users can
re-target other hardware.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.hostmodel import HostCpuModel
from repro.gpu.device import DeviceSpec
from repro.nbody.flops import DEFAULT_FLOPS_PER_INTERACTION

__all__ = [
    "calibrate_interaction_cycles",
    "sustained_gflops",
    "expected_cpu_speedup",
    "PAPER_SUSTAINED_GFLOPS",
    "PAPER_PEAK_GFLOPS_RSQRT",
    "PAPER_CPU_SPEEDUP",
    "PAPER_GPU_SPEEDUP_RANGE",
]

#: Sustained throughput the paper reports (20-flop convention).
PAPER_SUSTAINED_GFLOPS = 300.0

#: Peak throughput the paper quotes under the expanded-rsqrt accounting.
PAPER_PEAK_GFLOPS_RSQRT = 431.0

#: The paper's headline CPU-vs-GPU speedup ("about 400x").
PAPER_CPU_SPEEDUP = 400.0

#: The paper's headline speedup over prior GPU plans.
PAPER_GPU_SPEEDUP_RANGE = (2.0, 5.0)


def sustained_gflops(
    device: DeviceSpec,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> float:
    """The device model's sustained all-pairs GFLOPS at full occupancy."""
    return device.sustained_interaction_rate * flops_per_interaction / 1e9


def calibrate_interaction_cycles(
    device: DeviceSpec,
    target_gflops: float,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> DeviceSpec:
    """A copy of ``device`` whose sustained rate hits ``target_gflops``.

    Solves ``cycles = cores_per_cu * cus * clock * fpi / (target * 1e9)``.
    """
    if target_gflops <= 0.0:
        raise ValueError(f"target_gflops must be positive, got {target_gflops}")
    target_rate = target_gflops * 1e9 / flops_per_interaction  # interactions/s
    cycles = (
        device.stream_cores_per_cu
        * device.compute_units
        * device.clock_hz
        / target_rate
    )
    if cycles <= 0.0:  # pragma: no cover - arithmetic guard
        raise ValueError("calibration produced non-positive cycles")
    return replace(device, interaction_cycles=cycles)


def expected_cpu_speedup(device: DeviceSpec, host: HostCpuModel) -> float:
    """Rate-level CPU-vs-GPU speedup implied by the calibrated models."""
    return (
        sustained_gflops(device) * 1e9 / host.effective_force_flops
    )

"""Performance metrics: throughput, speedup, efficiency, crossovers.

All throughput numbers state their flops-per-interaction convention
explicitly (see :mod:`repro.nbody.flops`) so both of the paper's headline
figures — ~300 GFLOPS sustained under the 20-flop convention and the
431 GFLOPS peak under the expanded-rsqrt convention — can be produced
from the same measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nbody.flops import (
    DEFAULT_FLOPS_PER_INTERACTION,
    FLOPS_PER_INTERACTION_RSQRT,
)

__all__ = [
    "gflops_rate",
    "both_conventions",
    "speedup",
    "parallel_efficiency",
    "crossover_n",
    "RateSummary",
]


def gflops_rate(
    n_interactions: int | float,
    seconds: float,
    flops_per_interaction: int = DEFAULT_FLOPS_PER_INTERACTION,
) -> float:
    """Sustained GFLOPS for ``n_interactions`` evaluated in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    if n_interactions < 0:
        raise ValueError(f"n_interactions must be >= 0, got {n_interactions}")
    return n_interactions * flops_per_interaction / seconds / 1e9


def both_conventions(n_interactions: int | float, seconds: float) -> tuple[float, float]:
    """(20-flop GFLOPS, 38-flop GFLOPS) — the paper's two quoted axes."""
    return (
        gflops_rate(n_interactions, seconds, DEFAULT_FLOPS_PER_INTERACTION),
        gflops_rate(n_interactions, seconds, FLOPS_PER_INTERACTION_RSQRT),
    )


def speedup(baseline_seconds: float, seconds: float) -> float:
    """How many times faster than the baseline (>1 means faster)."""
    if baseline_seconds <= 0.0 or seconds <= 0.0:
        raise ValueError("times must be positive")
    return baseline_seconds / seconds


def parallel_efficiency(sustained_flops: float, peak_flops: float) -> float:
    """Fraction of device peak achieved."""
    if peak_flops <= 0.0:
        raise ValueError(f"peak_flops must be positive, got {peak_flops}")
    if sustained_flops < 0.0:
        raise ValueError(f"sustained_flops must be >= 0, got {sustained_flops}")
    return sustained_flops / peak_flops


def crossover_n(
    n_values: np.ndarray, times_a: np.ndarray, times_b: np.ndarray
) -> float | None:
    """Smallest N (log-interpolated) where method B becomes faster than A.

    Returns ``None`` when B never overtakes A on the sweep, or the first
    grid point when B already wins everywhere.
    """
    n_values = np.asarray(n_values, dtype=np.float64)
    times_a = np.asarray(times_a, dtype=np.float64)
    times_b = np.asarray(times_b, dtype=np.float64)
    if not (n_values.shape == times_a.shape == times_b.shape):
        raise ValueError("inputs must have the same shape")
    if n_values.size == 0:
        return None
    diff = times_a - times_b  # positive where B wins
    if diff[0] > 0:
        return float(n_values[0])
    for k in range(1, diff.size):
        if diff[k] > 0:
            # log-linear interpolation of the zero crossing
            x0, x1 = np.log(n_values[k - 1]), np.log(n_values[k])
            y0, y1 = diff[k - 1], diff[k]
            t = -y0 / (y1 - y0)
            return float(np.exp(x0 + t * (x1 - x0)))
    return None


@dataclass(frozen=True)
class RateSummary:
    """GFLOPS summary of one (plan, N) measurement."""

    plan: str
    n_bodies: int
    interactions: int
    kernel_seconds: float
    total_seconds: float

    @property
    def kernel_gflops(self) -> float:
        """Device-kernel throughput (Fig. 4/5 axis)."""
        return gflops_rate(self.interactions, self.kernel_seconds)

    @property
    def kernel_gflops_rsqrt(self) -> float:
        """Throughput under the expanded-rsqrt convention (the 431-style figure)."""
        return gflops_rate(
            self.interactions, self.kernel_seconds, FLOPS_PER_INTERACTION_RSQRT
        )

    @property
    def effective_gflops(self) -> float:
        """Throughput over the full step (host + transfers included)."""
        return gflops_rate(self.interactions, self.total_seconds)

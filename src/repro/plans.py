"""repro.plans — the public plan-registry API.

Stable import path for resolving PTPM plans by name::

    from repro import plans

    plans.available_plans()          # ('i', 'j', 'jw', 'w')
    plan = plans.get_plan("jw", wg_size=128)

    @plans.register("my-plan")
    class MyPlan(plans.Plan):
        name = "my-plan"
        ...

A registered plan is addressable everywhere a name is accepted: the CLI
(``repro-nbody run --plan``), :class:`repro.Simulation`,
:meth:`repro.RunSession.resume`, job specs submitted to the serve layer,
and the benchmark sweeps.  Canonical implementations live in
:mod:`repro.core.plans.registry`.
"""

from repro.core.plans.base import Plan, PlanConfig
from repro.core.plans.registry import (
    available_plans,
    get_plan,
    register,
    resolve_plan,
    unregister,
)

__all__ = [
    "Plan",
    "PlanConfig",
    "available_plans",
    "get_plan",
    "register",
    "resolve_plan",
    "unregister",
]

"""repro.runtime — fault-tolerant run layer over :class:`Simulation`.

The PTPM time axis keeps force passes flowing without stalls; at
campaign scale the same discipline must survive process death.  This
package turns a simulation into a *restartable pipeline* in the style of
production N-body codes (Bonsai's periodic snapshot + restart loop):

* :mod:`repro.runtime.session` — :class:`RunSession`: periodic
  checkpointing while running, bit-exact :meth:`RunSession.resume` after
  an interruption;
* :mod:`repro.runtime.checkpoint` — the on-disk format: a JSON manifest
  with an atomically updated checkpoint index over
  :mod:`repro.nbody.io` snapshots.

Failure handling *within* a run (task retry, backend fallback, fault
injection) lives in :mod:`repro.exec`; the relevant types are re-exported
here because checkpointing and retry are configured together.
"""

from repro.exec.faults import FaultInjector, RetryPolicy
from repro.runtime.checkpoint import (
    CheckpointInfo,
    RunManifest,
    read_checkpoint,
    write_checkpoint,
)
from repro.runtime.session import RunSession, is_resumable

__all__ = [
    "RunSession",
    "is_resumable",
    "RunManifest",
    "CheckpointInfo",
    "read_checkpoint",
    "write_checkpoint",
    "FaultInjector",
    "RetryPolicy",
]

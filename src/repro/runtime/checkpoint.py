"""Checkpoint and manifest persistence for fault-tolerant runs.

A run directory looks like::

    rundir/
      manifest.json            # run-level description + checkpoint index
      ckpt_00000010/
        state.npz              # particles + physical time (repro.nbody.io)
        last_acc.npy           # cached trailing acceleration (KDK state)
        record.json            # SimulationRecord running totals

Crash safety comes from ordering, not locking: a checkpoint directory is
written completely first, and only then is it listed in ``manifest.json``
(which is itself replaced atomically via ``os.replace``).  A process
killed mid-checkpoint leaves at worst an unlisted, ignored directory;
the last *listed* checkpoint is always complete and consistent.

Bit-exactness across save/load: particle arrays ride through ``.npz``
as raw float64, the acceleration cache through ``.npy``, and the float
totals in the JSON files round-trip exactly (Python's ``json`` emits
``repr``-based shortest-round-trip floats).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.hostmodel import PENTIUM_E5300, HostCpuModel
from repro.core.plans.base import PlanConfig
from repro.errors import CheckpointError
from repro.gpu.device import RADEON_HD_5850, DeviceSpec
from repro.nbody.io import load_snapshot, save_snapshot, snapshot_extras
from repro.nbody.particles import ParticleSet

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "CheckpointInfo",
    "RunManifest",
    "plan_config_to_dict",
    "plan_config_from_dict",
    "write_checkpoint",
    "read_checkpoint",
    "read_block_state",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Known device/host specs a manifest can reference by name.  Custom
#: specs require passing ``plan=`` explicitly to ``RunSession.resume``.
_DEVICES: dict[str, DeviceSpec] = {RADEON_HD_5850.name: RADEON_HD_5850}
_HOSTS: dict[str, HostCpuModel] = {PENTIUM_E5300.name: PENTIUM_E5300}


# ---------------------------------------------------------------------------
# Plan configuration (de)serialisation
# ---------------------------------------------------------------------------

def plan_config_to_dict(config: PlanConfig) -> dict[str, Any]:
    """JSON-friendly plan configuration (device/host referenced by name)."""
    data = {
        "device": config.device.name,
        "host": config.host.name,
        "wg_size": config.wg_size,
        "softening": config.softening,
        "G": config.G,
        "theta": config.theta,
        "leaf_size": config.leaf_size,
    }
    # Only serialized when pinned, so manifests and job-spec content hashes
    # of default-config runs are unchanged from before the fields existed.
    if config.kernel_backend is not None:
        data["kernel_backend"] = config.kernel_backend
    if config.n_rungs is not None:
        data["n_rungs"] = config.n_rungs
    if config.step_eta is not None:
        data["step_eta"] = config.step_eta
    return data


def plan_config_from_dict(data: dict[str, Any]) -> PlanConfig:
    """Rebuild a :class:`PlanConfig` from :func:`plan_config_to_dict` output."""
    device_name = data.get("device", RADEON_HD_5850.name)
    host_name = data.get("host", PENTIUM_E5300.name)
    try:
        device = _DEVICES[device_name]
    except KeyError:
        raise CheckpointError(
            f"manifest references unknown device '{device_name}'; "
            "pass plan= explicitly when resuming"
        ) from None
    try:
        host = _HOSTS[host_name]
    except KeyError:
        raise CheckpointError(
            f"manifest references unknown host model '{host_name}'; "
            "pass plan= explicitly when resuming"
        ) from None
    kernel_backend = data.get("kernel_backend")
    n_rungs = data.get("n_rungs")
    step_eta = data.get("step_eta")
    return PlanConfig(
        device=device,
        host=host,
        wg_size=int(data["wg_size"]),
        softening=float(data["softening"]),
        G=float(data["G"]),
        theta=float(data["theta"]),
        leaf_size=int(data["leaf_size"]),
        kernel_backend=None if kernel_backend is None else str(kernel_backend),
        n_rungs=None if n_rungs is None else int(n_rungs),
        step_eta=None if step_eta is None else float(step_eta),
    )


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

@dataclass
class CheckpointInfo:
    """One completed checkpoint, as listed in the manifest."""

    step: int
    time: float
    path: str
    force_passes: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckpointInfo":
        return cls(
            step=int(data["step"]),
            time=float(data["time"]),
            path=str(data["path"]),
            force_passes=int(data["force_passes"]),
        )


@dataclass
class RunManifest:
    """Run-level description persisted at ``rundir/manifest.json``."""

    plan: str
    plan_config: dict[str, Any]
    dt: float
    target_steps: int
    checkpoint_every: int
    status: str = "running"
    checkpoints: list[CheckpointInfo] = field(default_factory=list)
    format_version: int = MANIFEST_VERSION

    # ------------------------------------------------------------------
    @property
    def latest(self) -> CheckpointInfo:
        """The most recent completed checkpoint."""
        if not self.checkpoints:
            raise CheckpointError("run has no completed checkpoints to resume from")
        return self.checkpoints[-1]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": self.format_version,
            "plan": self.plan,
            "plan_config": self.plan_config,
            "dt": self.dt,
            "target_steps": self.target_steps,
            "checkpoint_every": self.checkpoint_every,
            "status": self.status,
            "checkpoints": [c.to_dict() for c in self.checkpoints],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        version = int(data.get("format_version", 0))
        if version > MANIFEST_VERSION:
            raise CheckpointError(
                f"manifest format {version} is newer than supported "
                f"{MANIFEST_VERSION}"
            )
        return cls(
            plan=str(data["plan"]),
            plan_config=dict(data["plan_config"]),
            dt=float(data["dt"]),
            target_steps=int(data["target_steps"]),
            checkpoint_every=int(data["checkpoint_every"]),
            status=str(data.get("status", "running")),
            checkpoints=[
                CheckpointInfo.from_dict(c) for c in data.get("checkpoints", [])
            ],
            format_version=version or MANIFEST_VERSION,
        )

    # ------------------------------------------------------------------
    def write(self, directory: str | Path) -> Path:
        """Atomically replace ``directory/manifest.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_NAME
        tmp = directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2))
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, directory: str | Path) -> "RunManifest":
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise CheckpointError(f"no run manifest at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt run manifest at {path}: {exc}") from exc
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# Checkpoint payloads
# ---------------------------------------------------------------------------

def write_checkpoint(
    directory: str | Path,
    *,
    particles: ParticleSet,
    time: float,
    plan_name: str,
    record: dict[str, Any],
    last_acceleration: np.ndarray | None,
    rungs: np.ndarray | None = None,
    substep: int = 0,
) -> Path:
    """Write one complete checkpoint directory (state + cache + record).

    Block-timestep runs pass their rung state: ``rungs`` rides inside
    ``state.npz`` (as an extra array) and ``substep`` in its metadata, so
    a mid-sync-interval checkpoint resumes bit-identically.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    metadata = {
        "plan": plan_name,
        "steps": record["steps"],
        "force_passes": record["force_passes"],
        "simulated_seconds": record["simulated_seconds"],
    }
    extra = None
    if rungs is not None:
        extra = {"rungs": np.asarray(rungs, dtype=np.int64)}
        metadata["substep"] = int(substep)
    save_snapshot(
        directory / "state",
        particles,
        time=time,
        metadata=metadata,
        extra=extra,
    )
    if last_acceleration is not None:
        np.save(directory / "last_acc.npy", last_acceleration)
    (directory / "record.json").write_text(json.dumps(record, indent=2))
    return directory


def read_checkpoint(
    directory: str | Path,
) -> tuple[ParticleSet, float, dict[str, Any], np.ndarray | None]:
    """Read a checkpoint back: ``(particles, time, record, last_acc)``."""
    directory = Path(directory)
    state = directory / "state.npz"
    record_path = directory / "record.json"
    if not state.exists() or not record_path.exists():
        raise CheckpointError(f"incomplete checkpoint at {directory}")
    particles, time, _meta = load_snapshot(state)
    record = json.loads(record_path.read_text())
    acc_path = directory / "last_acc.npy"
    last_acc = np.load(acc_path) if acc_path.exists() else None
    return particles, time, record, last_acc


def read_block_state(directory: str | Path) -> tuple[np.ndarray | None, int]:
    """Block-timestep state of a checkpoint: ``(rungs, substep)``.

    Fixed-dt checkpoints (no rung state in ``state.npz``) return
    ``(None, 0)``, so callers can treat every checkpoint uniformly.
    """
    directory = Path(directory)
    state = directory / "state.npz"
    if not state.exists():
        raise CheckpointError(f"incomplete checkpoint at {directory}")
    extras = snapshot_extras(state)
    rungs = extras.get("rungs")
    if rungs is None:
        return None, 0
    _particles, _time, meta = load_snapshot(state)
    return np.asarray(rungs, dtype=np.int64), int(meta.get("substep", 0))

"""Fault-tolerant run sessions: periodic checkpoints, bit-exact resume.

:class:`RunSession` wraps a :class:`~repro.core.simulation.Simulation`
and drives it toward a target step count, persisting the complete
integrator state every ``checkpoint_every`` steps through
:mod:`repro.runtime.checkpoint`.  A run killed between checkpoints —
crash, SIGTERM, injected fault — resumes from the last completed
checkpoint with :meth:`RunSession.resume` and produces positions and
velocities **bit-identical** to an uninterrupted run:

* particle arrays and the physical time round-trip losslessly as
  float64;
* the kick-drift-kick integrator's one piece of hidden state — the
  cached trailing acceleration — is saved and re-seeded, so the resumed
  run replays the exact force-pass sequence (same ``force_passes``
  accounting, no spurious bootstrap pass);
* force evaluation itself is deterministic on every
  :class:`~repro.exec.ExecutionEngine` backend (parallel is bit-identical
  to serial), so recomputed steps match regardless of worker count.

Usage::

    sim = Simulation(plummer(4096, seed=1), plan_by_name("jw"), dt=1e-3)
    session = RunSession(sim, "runs/plummer4k", checkpoint_every=25)
    session.run(1000)

    # later, after a crash anywhere in those 1000 steps:
    session = RunSession.resume("runs/plummer4k")
    session.run()          # continues to the original target

Observability: each checkpoint emits a ``runtime.checkpoint`` span and
bumps the ``checkpoints_total`` counter; the stepping loop runs inside a
``runtime.run`` span and resume emits a ``runtime.resume`` instant.

Verification: a session can carry a :class:`~repro.check.RunGuard`
(``guard=`` keyword, or on by default via ``repro.configure(verify=...)``
/ ``REPRO_CHECK_ENABLED=1``).  The guard captures an invariant baseline
when the run starts and re-evaluates energy/momentum conservation and
finite-state sentinels at every checkpoint — *before* the state is
persisted, so a violating state never becomes a resumable checkpoint —
raising :class:`~repro.errors.VerificationError` on violation.

Durable accounting: a session can additionally carry a
:class:`~repro.obs.ledger.RunLedger` (``ledger=`` keyword, or on by
default via ``repro.configure(ledger_dir=...)`` / ``REPRO_LEDGER_DIR``).
The ledger is a pure observer — it records submission, per-``advance``
slices, checkpoints, completion/failure and final totals to SQLite, and
never feeds anything back into the run, so ledgered and unledgered runs
are bit-identical.
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Callable

from repro import obs
from repro.core.plans import Plan, plan_by_name
from repro.core.simulation import Simulation, SimulationRecord
from repro.errors import CheckpointError, ConfigurationError, StateError
from repro.exec.engine import ExecutionEngine
from repro.runtime.checkpoint import (
    CheckpointInfo,
    RunManifest,
    plan_config_from_dict,
    plan_config_to_dict,
    read_block_state,
    read_checkpoint,
    write_checkpoint,
)

__all__ = ["RunSession", "is_resumable"]


def is_resumable(directory: str | Path) -> bool:
    """Whether ``directory`` holds an incomplete run a session can resume.

    True only when a manifest reads back with at least one checkpoint
    *and* that checkpoint's payload loads cleanly — the gate a worker
    shard applies before adopting an orphaned job left by a killed
    sibling, so a torn or corrupt orphan is re-run from scratch instead
    of poisoning the resumed run.  A *complete* run is not "resumable";
    it is a cache hit and callers should load it instead.
    """
    directory = Path(directory)
    try:
        manifest = RunManifest.read(directory)
    except (CheckpointError, OSError):
        return False
    if manifest.status == "complete" or not manifest.checkpoints:
        return False
    try:
        read_checkpoint(directory / manifest.latest.path)
    except (CheckpointError, OSError, ValueError, KeyError):
        return False
    return True


class RunSession:
    """Checkpointed, resumable execution of a :class:`Simulation`.

    Parameters
    ----------
    simulation:
        The simulation to drive.  For resumable runs its plan must be one
        of the four named PTPM plans (``plan_by_name``-constructible).
    directory:
        Run directory for the manifest and checkpoints.  Must not already
        contain a manifest — resuming an existing run goes through
        :meth:`resume`, which protects against two sessions silently
        interleaving checkpoints into one directory.
    checkpoint_every:
        Steps between periodic checkpoints; ``0`` checkpoints only at
        completion.  The final state is always checkpointed.
    guard:
        A :class:`~repro.check.RunGuard` evaluated at every checkpoint,
        ``False`` to opt out even when verification is globally enabled,
        or ``None`` (default) to resolve through
        ``repro.configure(verify=...)`` / ``REPRO_CHECK_*``.
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` this session appends its
        run accounting to, ``False`` to opt out even when a ledger
        directory is globally configured, or ``None`` (default) to
        resolve through ``repro.configure(ledger_dir=...)`` /
        ``REPRO_LEDGER_DIR``.
    """

    def __init__(
        self,
        simulation: Simulation,
        directory: str | Path,
        *args,
        checkpoint_every: int = 0,
        guard: "RunGuard | bool | None" = None,
        ledger: "RunLedger | bool | None" = None,
        _manifest: RunManifest | None = None,
    ) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"RunSession() takes at most 3 positional arguments "
                    f"({2 + len(args)} given); pass checkpoint_every= as a keyword"
                )
            warnings.warn(
                "passing checkpoint_every positionally is deprecated; use "
                "RunSession(simulation, directory, checkpoint_every=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            checkpoint_every = args[0]
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.simulation = simulation
        self.directory = Path(directory)
        self.checkpoint_every = checkpoint_every
        if guard is None:
            from repro.check.settings import default_guard

            guard = default_guard()
        elif guard is False:
            guard = None
        elif guard is True:
            from repro.check.guards import RunGuard

            guard = RunGuard()
        #: invariant watchdog evaluated at every checkpoint (may be None)
        self.guard = guard
        if ledger is None:
            from repro.obs.settings import default_ledger

            ledger = default_ledger()
        elif ledger is False:
            ledger = None
        #: durable run ledger this session appends to (may be None)
        self.ledger = ledger
        self._ledger_run_id: int | None = None
        self._ledger_done = False
        self._ledger_slices = 0
        self._ledger_wall = 0.0
        #: ledger ``source`` tag (``resume`` overwrites it in resume())
        self._ledger_source = "run"
        #: checkpoints written by *this* session object
        self.checkpoints_written = 0
        if _manifest is not None:
            self.manifest: RunManifest | None = _manifest
        else:
            if (self.directory / "manifest.json").exists():
                raise CheckpointError(
                    f"{self.directory} already holds a run manifest; use "
                    "RunSession.resume() to continue it or pick a fresh directory"
                )
            self.manifest = None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self, target_steps: int | None = None) -> int:
        """Validate and record the absolute step target; returns it.

        Prepares (or extends) the manifest without advancing the
        simulation — the first half of :meth:`run`, split out so a
        scheduler can interleave many sessions through repeated
        :meth:`advance` slices.  ``None`` reuses the target recorded in
        the manifest (the resume case); a larger target extends a
        finished run.
        """
        sim = self.simulation
        if target_steps is None:
            if self.manifest is None:
                raise ConfigurationError(
                    "target_steps is required for a fresh session"
                )
            target_steps = self.manifest.target_steps
        if target_steps < 1:
            raise ConfigurationError(
                f"target_steps must be >= 1, got {target_steps}"
            )
        if target_steps < sim.record.steps:
            raise ConfigurationError(
                f"target_steps {target_steps} is behind the simulation "
                f"(already at step {sim.record.steps})"
            )
        self._ensure_manifest(target_steps)
        if self.guard is not None and not self.guard.primed:
            self.guard.prime(sim)
        self._ledger_open(target_steps)
        return target_steps

    # -- ledger observers (never feed back into the run) ----------------
    def _ledger_open(self, target_steps: int) -> None:
        if self.ledger is None or self._ledger_run_id is not None:
            return
        sim = self.simulation
        backend = getattr(getattr(sim.plan, "engine", None), "backend", None)
        self._ledger_run_id = self.ledger.record_submitted(
            source=self._ledger_source,
            plan=sim.plan.name,
            n=len(sim.particles),
            dt=sim.dt,
            steps=target_steps,
            checkpoint_dir=str(self.directory),
        )
        self.ledger.record_started(self._ledger_run_id, backend=backend)

    def _ledger_slice(self, steps: int, wall_s: float) -> None:
        if self.ledger is None or self._ledger_run_id is None or steps == 0:
            return
        self._ledger_slices += 1
        self._ledger_wall += wall_s
        self.ledger.record_slice(
            self._ledger_run_id,
            seq=self._ledger_slices,
            steps=steps,
            wall_s=wall_s,
        )

    def _ledger_finish(
        self, status: str, error: BaseException | None = None
    ) -> None:
        if (
            self.ledger is None
            or self._ledger_run_id is None
            or self._ledger_done
        ):
            return
        self._ledger_done = status in ("complete", "cached")
        record = self.simulation.record
        fields: dict = dict(
            wall_s=self._ledger_wall,
            simulated_s=record.simulated_seconds,
            force_passes=record.force_passes,
        )
        if error is not None:
            fields["error"] = f"{type(error).__name__}: {error}"
            report = getattr(error, "report", None)
            if report is not None:
                fields["invariant_report"] = repr(report)
        self.ledger.record_finished(
            self._ledger_run_id, status=status, **fields
        )

    def advance(
        self,
        max_steps: int | None = None,
        *,
        callback: Callable[[Simulation], None] | None = None,
        callback_every: int = 1,
    ) -> bool:
        """Advance up to ``max_steps`` steps toward the manifest target.

        Returns ``True`` once the target is reached (the final checkpoint
        is then written), ``False`` while work remains.  ``None`` runs to
        the target in one call.  Periodic checkpoints and callbacks fire
        exactly as in :meth:`run`, and the step sequence — hence the
        physics — is bit-identical for every slicing: a session advanced
        in 1-step slices by a job scheduler interleaving other sessions
        equals the same session run alone.
        """
        if self.manifest is None:
            raise StateError("advance() before start()/run(): no target yet")
        if max_steps is not None and max_steps < 1:
            raise ConfigurationError(
                f"max_steps must be >= 1 or None, got {max_steps}"
            )
        if callback_every < 1:
            raise ConfigurationError(
                f"callback_every must be >= 1, got {callback_every}"
            )
        sim = self.simulation
        target = self.manifest.target_steps
        if sim.record.steps >= target and self.complete:
            return True
        done = 0
        t0 = time.perf_counter()
        try:
            while sim.record.steps < target:
                sim.step()
                done += 1
                k = sim.record.steps
                if (
                    self.checkpoint_every
                    and k % self.checkpoint_every == 0
                    and k < target
                ):
                    self.checkpoint()
                if callback is not None and (
                    k % callback_every == 0 or k == target
                ):
                    callback(sim)
                if self.guard is not None:
                    self.guard.maybe_check(sim)
                if max_steps is not None and done >= max_steps:
                    break
            if sim.record.steps >= target:
                self.checkpoint(final=True)
                self._ledger_slice(done, time.perf_counter() - t0)
                self._ledger_finish("complete")
                return True
        except BaseException as exc:
            self._ledger_slice(done, time.perf_counter() - t0)
            self._ledger_finish("failed", exc)
            raise
        self._ledger_slice(done, time.perf_counter() - t0)
        return False

    def run(
        self,
        target_steps: int | None = None,
        *,
        callback: Callable[[Simulation], None] | None = None,
        callback_every: int = 1,
    ) -> SimulationRecord:
        """Advance the simulation to ``target_steps`` *total* steps.

        Unlike :meth:`Simulation.run` (which advances a relative count),
        the target here is absolute so that fresh and resumed sessions
        share one notion of "done": a fresh ``run(100)`` and a resumed
        ``run()`` both finish at step 100.  Equivalent to :meth:`start`
        followed by one unbounded :meth:`advance`.
        """
        sim = self.simulation
        if callback_every < 1:
            raise ConfigurationError(
                f"callback_every must be >= 1, got {callback_every}"
            )
        target_steps = self.start(target_steps)
        with obs.span(
            "runtime.run",
            plan=sim.plan.name,
            n=len(sim.particles),
            target_steps=target_steps,
            from_step=sim.record.steps,
        ):
            self.advance(None, callback=callback, callback_every=callback_every)
        return sim.record

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, *, final: bool = False) -> Path:
        """Persist the current state; returns the checkpoint directory.

        The checkpoint directory is fully written before the manifest is
        updated to list it, so an interrupted checkpoint is invisible to
        :meth:`resume` rather than half-loaded.
        """
        sim = self.simulation
        if self.manifest is None:
            raise CheckpointError("checkpoint() before run(): no manifest yet")
        if self.guard is not None and self.guard.primed:
            # Verify BEFORE persisting: a violating state must never
            # become the checkpoint a later resume trusts.
            self.guard.check(sim, where="final" if final else "checkpoint")
        step = sim.record.steps
        name = f"ckpt_{step:08d}"
        with obs.span("runtime.checkpoint", step=step, final=final):
            write_checkpoint(
                self.directory / name,
                particles=sim.particles,
                time=sim.time,
                plan_name=sim.plan.name,
                record=sim.record.to_dict(),
                last_acceleration=sim.last_acceleration,
                rungs=sim.rungs if sim.blockstep else None,
                substep=sim.substep if sim.blockstep else 0,
            )
            if not any(c.step == step for c in self.manifest.checkpoints):
                self.manifest.checkpoints.append(
                    CheckpointInfo(
                        step=step,
                        time=sim.time,
                        path=name,
                        force_passes=sim.record.force_passes,
                    )
                )
            self.manifest.status = "complete" if final else "running"
            self.manifest.write(self.directory)
        obs.inc("checkpoints_total")
        self.checkpoints_written += 1
        if self.ledger is not None and self._ledger_run_id is not None:
            self.ledger.record_event(
                "checkpoint", name, run_id=self._ledger_run_id
            )
        return self.directory / name

    def _ensure_manifest(self, target_steps: int) -> None:
        if self.manifest is None:
            self.manifest = RunManifest(
                plan=self.simulation.plan.name,
                plan_config=plan_config_to_dict(self.simulation.plan.config),
                dt=self.simulation.dt,
                target_steps=target_steps,
                checkpoint_every=self.checkpoint_every,
            )
        else:
            self.manifest.target_steps = target_steps
            self.manifest.checkpoint_every = self.checkpoint_every
            self.manifest.status = "running"
        self.manifest.write(self.directory)

    # ------------------------------------------------------------------
    # resuming
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        directory: str | Path,
        *,
        plan: Plan | str | None = None,
        engine: ExecutionEngine | None = None,
        guard: "RunGuard | bool | None" = None,
        ledger: "RunLedger | bool | None" = None,
    ) -> "RunSession":
        """Rebuild a session from the last completed checkpoint.

        ``plan`` overrides plan reconstruction: an instance is used as-is
        (required when the original run used a custom device/host spec),
        a registered name re-resolves with the *manifest's* plan config —
        e.g. ``resume(d, plan="w")`` replays a ``jw`` run under the
        w-parallel plan.  ``engine`` rewires force execution — safe for
        any backend/worker count because parallel execution is
        bit-identical to serial.  ``guard`` and ``ledger`` resolve as in
        the constructor; the resumed run is recorded with
        ``source='resume'``.
        """
        directory = Path(directory)
        manifest = RunManifest.read(directory)
        info = manifest.latest
        particles, time, record, last_acc = read_checkpoint(
            directory / info.path
        )
        if plan is None or isinstance(plan, str):
            plan = plan_by_name(
                manifest.plan if plan is None else plan,
                plan_config_from_dict(manifest.plan_config),
                engine=engine,
            )
        elif engine is not None:
            plan.engine = engine
        sim = Simulation(particles, plan, dt=manifest.dt)
        sim.time = time
        sim.record = SimulationRecord.from_dict(record)
        if last_acc is not None:
            sim.seed_forces(last_acc)
        rungs, substep = read_block_state(directory / info.path)
        if rungs is not None and sim.blockstep:
            # Mid-sync-interval state: the resumed run replays the exact
            # substep/rung sequence (bit-identical to uninterrupted).
            sim.seed_rungs(rungs, substep)
        obs.instant(
            "runtime.resume",
            step=sim.record.steps,
            target_steps=manifest.target_steps,
            plan=manifest.plan,
        )
        session = cls(
            sim,
            directory,
            checkpoint_every=manifest.checkpoint_every,
            guard=guard,
            ledger=ledger,
            _manifest=manifest,
        )
        session._ledger_source = "resume"
        return session

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """Whether the run has reached its manifest target."""
        return self.manifest is not None and self.manifest.status == "complete"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        step = self.simulation.record.steps
        return (
            f"RunSession(dir={str(self.directory)!r}, step={step}, "
            f"checkpoint_every={self.checkpoint_every})"
        )

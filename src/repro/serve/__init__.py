"""repro.serve — batched multi-run job service, local or distributed.

Submit many :class:`JobSpec` jobs; the service interleaves their steps
over one shared worker pool (the paper's time-axis overlap applied to
whole runs), answers repeated specs from a content-addressed result
cache, coalesces identical in-flight submissions, and isolates faults
per job.  Results are **bit-identical** whether a job runs alone,
batched against siblings, sharded across workers, or is served from
cache.

Quick start — :func:`connect` is the one entry point for both
transports::

    from repro.serve import JobSpec, connect

    with connect(max_concurrent_jobs=4, cache_dir="cache") as client:
        specs = [JobSpec(workload="plummer", n=2048, plan=p, steps=50)
                 for p in ("i", "j", "w", "jw")]
        results = client.map(specs)

    # resubmitting any of those specs is now a cache hit

    with connect("127.0.0.1:7321") as client:   # same verbs, remote
        result = client.run(specs[0])

Layers (each importable on its own):

* :mod:`~repro.serve.spec` — :class:`JobSpec`: canonical, content-hashed
  job descriptions.
* :mod:`~repro.serve.queue` — :class:`JobQueue`: bounded priority queue
  with :class:`~repro.errors.AdmissionError` backpressure.
* :mod:`~repro.serve.cache` — :class:`ResultCache` / :class:`JobResult`:
  spec-hash → completed run directory.
* :mod:`~repro.serve.scheduler` — :class:`Scheduler`: round-robin step
  slicing of live sessions.
* :mod:`~repro.serve.service` — :class:`JobService`, :class:`JobHandle`,
  :class:`Client` (direct construction deprecated in favour of
  :func:`connect`).
* :mod:`~repro.serve.settings` — knob resolution (configure/env/defaults).

Distributed tier:

* :mod:`~repro.serve.wire` — length-prefixed JSON framing + error codec.
* :mod:`~repro.serve.coordinator` — :class:`Coordinator`: the shared
  queue worker shards pull from.
* :mod:`~repro.serve.worker` — :class:`Worker`: one shard = one
  :class:`JobService` fed by the coordinator, resuming orphans left by
  killed siblings.
* :mod:`~repro.serve.remote` — :func:`connect`, :class:`RemoteService`,
  :class:`RemoteHandle`: the transport-agnostic client surface.

Multi-tenant tier:

* :mod:`~repro.serve.options` — :class:`SubmitOptions`: the one
  submission-tuning surface (priority, tenant, retry, fault injection,
  verify) shared by every submit path.
* :mod:`~repro.serve.tenancy` — :class:`TenantPolicy` /
  :class:`FairJobQueue`: weighted fair scheduling, priority aging, and
  per-tenant quotas.
* :mod:`~repro.serve.schema` — the versioned describe-document contract
  shared by ``describe()`` surfaces and the gateway's ``/v1/status``.
* :mod:`~repro.serve.gateway` — :class:`Gateway`: asyncio HTTP front
  end (submit/status/result/cancel + SSE slice streaming) over either
  transport.
"""

from repro.serve.cache import JobResult, ResultCache, load_result
from repro.serve.coordinator import Coordinator
from repro.serve.gateway import Gateway
from repro.serve.options import SubmitOptions
from repro.serve.queue import JobQueue
from repro.serve.remote import RemoteHandle, RemoteService, connect
from repro.serve.scheduler import Scheduler
from repro.serve.schema import DESCRIBE_VERSION, validate_describe
from repro.serve.service import Client, JobHandle, JobService
from repro.serve.settings import ServeSettings, current_settings
from repro.serve.spec import JobSpec
from repro.serve.tenancy import DEFAULT_TENANT, FairJobQueue, TenantPolicy
from repro.serve.worker import Worker

__all__ = [
    "Client",
    "Coordinator",
    "DEFAULT_TENANT",
    "DESCRIBE_VERSION",
    "FairJobQueue",
    "Gateway",
    "JobHandle",
    "JobQueue",
    "JobResult",
    "JobService",
    "JobSpec",
    "RemoteHandle",
    "RemoteService",
    "ResultCache",
    "Scheduler",
    "ServeSettings",
    "SubmitOptions",
    "TenantPolicy",
    "Worker",
    "connect",
    "current_settings",
    "load_result",
    "validate_describe",
]

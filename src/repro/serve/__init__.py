"""repro.serve — batched multi-run job service.

Submit many :class:`JobSpec` jobs; the service interleaves their steps
over one shared worker pool (the paper's time-axis overlap applied to
whole runs), answers repeated specs from a content-addressed result
cache, coalesces identical in-flight submissions, and isolates faults
per job.  Results are **bit-identical** whether a job runs alone,
batched against siblings, or is served from cache.

Quick start::

    from repro.serve import Client, JobSpec

    with Client(max_concurrent_jobs=4, cache_dir="cache") as client:
        specs = [JobSpec(workload="plummer", n=2048, plan=p, steps=50)
                 for p in ("i", "j", "w", "jw")]
        results = client.map(specs)

    # resubmitting any of those specs is now a cache hit

Layers (each importable on its own):

* :mod:`~repro.serve.spec` — :class:`JobSpec`: canonical, content-hashed
  job descriptions.
* :mod:`~repro.serve.queue` — :class:`JobQueue`: bounded priority queue
  with :class:`~repro.errors.AdmissionError` backpressure.
* :mod:`~repro.serve.cache` — :class:`ResultCache` / :class:`JobResult`:
  spec-hash → completed run directory.
* :mod:`~repro.serve.scheduler` — :class:`Scheduler`: round-robin step
  slicing of live sessions.
* :mod:`~repro.serve.service` — :class:`JobService`, :class:`JobHandle`,
  :class:`Client`.
* :mod:`~repro.serve.settings` — knob resolution (configure/env/defaults).
"""

from repro.serve.cache import JobResult, ResultCache
from repro.serve.queue import JobQueue
from repro.serve.scheduler import Scheduler
from repro.serve.service import Client, JobHandle, JobService
from repro.serve.settings import ServeSettings, current_settings
from repro.serve.spec import JobSpec

__all__ = [
    "Client",
    "JobHandle",
    "JobQueue",
    "JobResult",
    "JobService",
    "JobSpec",
    "ResultCache",
    "Scheduler",
    "ServeSettings",
    "current_settings",
]

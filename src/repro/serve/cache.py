"""Content-addressed result cache: spec hash → completed run directory.

A cache entry *is* a :mod:`repro.runtime` run directory — manifest plus
checkpoints — stored at ``<root>/<spec_hash>``.  The job's final
checkpoint doubles as the cache payload: nothing is copied or re-encoded
at publish time, and a cached result loads through the exact same
``read_checkpoint`` path as a resume, so cached and fresh results are
bit-identical by construction.

Validity is the manifest's own completion protocol: an entry counts as a
hit only when its manifest reads back with ``status == "complete"`` and
a final checkpoint at the spec's step target.  A job that crashed
mid-run leaves an incomplete entry which :meth:`ResultCache.claim`
silently retires and re-runs — crash safety by ordering, no lock files.

Retirement is *atomic*: a stale entry is renamed to a unique
``<hash>.reclaim-*`` scratch name first and deleted under that name, so
when two shards race to reclaim the same crashed entry exactly one
``rename`` wins — the loser sees the entry already gone and proceeds —
and neither can ever delete files the winner is already rewriting under
the live path.  (The old remove-in-place scheme could throw
``FileNotFoundError`` at the losing shard, or worse, delete the winning
shard's half-written fresh run.)

:meth:`ResultCache.claim_or_resume` is the worker-shard variant of
:meth:`~ResultCache.claim`: instead of always retiring an incomplete
entry it reports one with intact checkpoints as *resumable*, so a shard
that inherits a killed sibling's job continues from the orphan's last
checkpoint — bit-identical to a fresh run by the runtime's resume
guarantee — rather than repeating finished work.
"""

from __future__ import annotations

import shutil
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointError, ServeError
from repro.nbody.particles import ParticleSet
from repro.runtime.checkpoint import MANIFEST_NAME, RunManifest, read_checkpoint
from repro.runtime.session import is_resumable
from repro.serve.spec import JobSpec

__all__ = ["JobResult", "ResultCache", "load_result"]

#: Infix marking a retired entry awaiting deletion (skipped by scans).
_RECLAIM_MARK = ".reclaim-"


@dataclass(frozen=True)
class JobResult:
    """The outcome of one job: final state plus run accounting.

    ``particles`` / ``time`` are the final integrator state loaded from
    the run's last checkpoint; ``record`` is the
    :class:`~repro.core.simulation.SimulationRecord` totals dict;
    ``from_cache`` tells whether the service replayed a stored entry
    instead of stepping the simulation.
    """

    spec: JobSpec
    spec_hash: str
    run_dir: Path
    particles: ParticleSet
    time: float
    record: dict[str, Any]
    from_cache: bool

    @property
    def steps(self) -> int:
        return int(self.record["steps"])

    @property
    def positions(self) -> np.ndarray:
        return self.particles.positions

    @property
    def velocities(self) -> np.ndarray:
        return self.particles.velocities


class ResultCache:
    """Spec-hash-addressed store of completed run directories."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: lookup outcomes (observability)
        self.hits = 0
        self.misses = 0

    def entry_dir(self, spec: JobSpec) -> Path:
        """Where ``spec``'s run directory lives (existing or not)."""
        return self.root / spec.spec_hash()

    # ------------------------------------------------------------------
    def _complete_manifest(self, spec: JobSpec) -> RunManifest | None:
        path = self.entry_dir(spec)
        if not (path / MANIFEST_NAME).exists():
            return None
        try:
            manifest = RunManifest.read(path)
        except CheckpointError:
            return None
        if manifest.status != "complete" or not manifest.checkpoints:
            return None
        if manifest.checkpoints[-1].step < spec.steps:
            return None
        return manifest

    def lookup(self, spec: JobSpec) -> JobResult | None:
        """Load ``spec``'s cached result, or ``None`` on a miss.

        Incomplete or corrupt entries count as misses (and are left for
        :meth:`claim` to wipe); a hit loads the final checkpoint.
        """
        manifest = self._complete_manifest(spec)
        if manifest is None:
            self.misses += 1
            return None
        self.hits += 1
        return self.load(spec, from_cache=True)

    def load(self, spec: JobSpec, *, from_cache: bool) -> JobResult:
        """Load the result stored for ``spec`` (entry must be complete)."""
        return load_result(spec, self.entry_dir(spec), from_cache=from_cache)

    @staticmethod
    def _reclaim(path: Path) -> bool:
        """Atomically retire ``path``; returns whether *we* retired it.

        The rename is the linearisation point: exactly one concurrent
        reclaimer succeeds, everyone else observes the entry already
        gone (``FileNotFoundError``) and proceeds without touching
        whatever the winner puts in its place.
        """
        trash = path.with_name(f"{path.name}{_RECLAIM_MARK}{uuid.uuid4().hex}")
        try:
            path.rename(trash)
        except FileNotFoundError:
            return False
        except OSError:
            # Rename refused (e.g. path is a file, odd filesystem):
            # best-effort in-place removal keeps claim() usable.
            shutil.rmtree(path, ignore_errors=True)
            return True
        shutil.rmtree(trash, ignore_errors=True)
        return True

    def claim(self, spec: JobSpec) -> Path:
        """Reserve ``spec``'s entry directory for a fresh run.

        Atomically retires a stale incomplete entry (crashed earlier
        run); raises :class:`ServeError` if the entry is already
        complete — callers must :meth:`lookup` first, and in-flight
        dedup guarantees a single claimant per hash within one service.
        """
        if self._complete_manifest(spec) is not None:
            raise ServeError(
                f"cache entry for {spec.spec_hash()[:12]} is already "
                "complete; lookup() before claim()"
            )
        path = self.entry_dir(spec)
        if path.exists():
            self._reclaim(path)
        return path

    def claim_or_resume(self, spec: JobSpec) -> tuple[Path, str]:
        """Reserve ``spec``'s entry, keeping a resumable orphan.

        Returns ``(entry_dir, mode)`` with ``mode`` one of:

        * ``"fresh"`` — no usable prior state; the entry (if any) was
          retired and the caller starts from step zero;
        * ``"resume"`` — an incomplete entry with intact checkpoints
          exists (a killed shard's orphan); the caller should
          :meth:`~repro.runtime.RunSession.resume` it;
        * ``"complete"`` — the entry finished between the caller's
          ``lookup`` and this claim (another shard won the race); the
          caller should serve it from cache.
        """
        if self._complete_manifest(spec) is not None:
            return self.entry_dir(spec), "complete"
        path = self.entry_dir(spec)
        if is_resumable(path):
            return path, "resume"
        if path.exists():
            self._reclaim(path)
        return path, "fresh"

    def evict(self, spec: JobSpec) -> bool:
        """Drop ``spec``'s entry if present; returns whether one existed."""
        path = self.entry_dir(spec)
        if path.exists():
            return self._reclaim(path)
        return False

    def __len__(self) -> int:
        """Number of *complete* entries currently stored."""
        count = 0
        for child in self.root.iterdir():
            if _RECLAIM_MARK in child.name:
                continue  # retired entry awaiting deletion
            if (child / MANIFEST_NAME).exists():
                try:
                    manifest = RunManifest.read(child)
                except CheckpointError:
                    continue
                if manifest.status == "complete":
                    count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"


def load_result(
    spec: JobSpec, run_dir: str | Path, *, from_cache: bool
) -> JobResult:
    """Load a :class:`JobResult` from any completed run directory.

    The cache-root-independent loader: remote clients use it to read a
    result a worker shard reported by absolute ``run_dir``, without
    constructing a :class:`ResultCache` around the shared cache root.
    """
    run_dir = Path(run_dir)
    manifest = RunManifest.read(run_dir)
    info = manifest.latest
    particles, time, record, _last_acc = read_checkpoint(run_dir / info.path)
    return JobResult(
        spec=spec,
        spec_hash=spec.spec_hash(),
        run_dir=run_dir,
        particles=particles,
        time=time,
        record=record,
        from_cache=from_cache,
    )

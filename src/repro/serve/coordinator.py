"""The distributed serve coordinator: one queue, many worker shards.

The coordinator is the meeting point of the distributed tier: remote
clients submit :class:`~repro.serve.JobSpec` jobs to it, worker shards
pull jobs from it, and every party talks the same length-prefixed JSON
protocol (:mod:`repro.serve.wire`) over a plain TCP socket.

Distribution model — *pull*, not push: a worker asks for its ``next``
job whenever it has capacity, so load balancing falls out of worker
backpressure and the coordinator never needs worker health heuristics.
The failure signal is the connection itself: when a worker's socket
drops, every job it had claimed but not reported done is requeued
(``retries`` incremented) for the next worker.  A job that *reports*
failure is failed permanently — jobs are deterministic, so re-running a
genuinely failing spec on another shard would loop forever.

Dedup and caching mirror the in-process :class:`~repro.serve.JobService`:
identical specs coalesce onto one tracked job by content hash, and a
spec already complete in the shared :class:`~repro.serve.ResultCache`
is answered without touching the queue.  Workers share that cache
directory (shared filesystem), which is also how results travel:
``done`` messages carry only the run directory path, and clients load
the checkpoint themselves — particle arrays never cross the socket, so
sharded results are bit-identical to solo runs by construction (same
files, same loader).

The coordinator's optional ledger records coordinator-*level* events
(submissions, assignments, requeues, worker lifecycle) with no run rows
— run accounting lives in the worker shards' ledgers, stamped with their
shard names, and ``repro-nbody serve merge-shards`` folds those into one
experiment database.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import JobCancelledError, QuotaError, ServeError
from repro.obs.ledger import RunLedger
from repro.obs.settings import default_ledger
from repro.serve.cache import ResultCache
from repro.serve.options import SubmitOptions
from repro.serve.schema import DESCRIBE_VERSION
from repro.serve.settings import current_settings
from repro.serve.spec import JobSpec
from repro.serve.tenancy import DEFAULT_TENANT, FairJobQueue, TenantPolicy
from repro.serve.wire import (
    encode_error,
    format_addr,
    parse_addr,
    recv_msg,
    send_msg,
)

__all__ = ["Coordinator"]

#: Server-side wait slice — bounds how long a dead client can pin a
#: handler thread inside one ``wait`` RPC.
_WAIT_CHUNK_S = 0.25


class _TrackedJob:
    """One spec's lifecycle at the coordinator.

    ``status`` walks ``queued`` → ``running`` → ``done`` | ``failed``,
    with ``running`` → ``queued`` again on a worker loss.  ``_finished``
    is the event client ``wait`` RPCs block on.
    """

    def __init__(
        self,
        spec: JobSpec,
        spec_hash: str,
        priority: int,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.spec = spec
        self.spec_hash = spec_hash
        self.priority = priority
        self.tenant = tenant
        self.status = "queued"
        self.worker: str | None = None
        self.run_dir: str | None = None
        self.from_cache = False
        #: wire-form error payload when status == "failed"
        self.error: dict[str, str] | None = None
        self.dedup_count = 0
        self.retries = 0
        self._finished = threading.Event()

    def finish(
        self,
        *,
        run_dir: str | None = None,
        error: dict[str, str] | None = None,
        from_cache: bool = False,
    ) -> None:
        self.status = "failed" if error is not None else "done"
        self.run_dir = run_dir
        self.error = error
        self.from_cache = from_cache
        self._finished.set()

    def snapshot(self) -> dict[str, Any]:
        return {
            "spec_hash": self.spec_hash,
            "status": self.status,
            "tenant": self.tenant,
            "worker": self.worker,
            "run_dir": self.run_dir,
            "from_cache": self.from_cache,
            "error": self.error,
            "dedup_count": self.dedup_count,
            "retries": self.retries,
        }


class Coordinator:
    """Socket server distributing jobs to pull-model worker shards.

    Parameters
    ----------
    addr:
        ``"host:port"`` to listen on; port ``0`` picks a free port — the
        bound address is available as :attr:`addr` after construction.
    cache_dir:
        Shared result-cache root (must be reachable by every worker and
        client); resolves through the usual serve-settings chain.
    queue_capacity:
        Bound on queued-but-unassigned jobs before submissions are
        rejected with :class:`~repro.errors.AdmissionError`.
    ledger:
        A :class:`~repro.obs.ledger.RunLedger` for coordinator events,
        ``False`` to opt out, ``None`` to resolve via
        ``repro.configure(ledger_dir=...)`` / ``REPRO_LEDGER_DIR``.
    token:
        Shared-secret every RPC must carry (``connect(addr, token=)``);
        resolves through ``configure(serve_token=)`` /
        ``REPRO_SERVE_TOKEN``.  ``None`` (after resolution) disables the
        check.
    tenants:
        Tenant-name → :class:`~repro.serve.TenantPolicy` (or dict)
        mapping: fair-scheduling weights plus ``max_queued`` /
        ``max_inflight`` quotas, mirroring
        :class:`~repro.serve.JobService`.
    """

    def __init__(
        self,
        addr: str = "127.0.0.1:0",
        *,
        cache_dir: str | Path | None = None,
        queue_capacity: int | None = None,
        ledger: "RunLedger | bool | None" = None,
        token: str | None = None,
        tenants: "dict[str, TenantPolicy | dict[str, Any]] | None" = None,
        aging_every: int = 8,
        age_max_boost: int = 8,
    ) -> None:
        settings = current_settings(
            queue_capacity=queue_capacity,
            cache_dir=None if cache_dir is None else str(cache_dir),
            token=token,
        )
        self.settings = settings
        #: shared-secret RPCs must present (None = auth disabled)
        self.token = settings.token
        self.cache = ResultCache(settings.cache_dir)
        if ledger is None:
            self.ledger: RunLedger | None = default_ledger()
        elif ledger is False:
            self.ledger = None
        else:
            self.ledger = ledger
        host, port = parse_addr(addr)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()
        #: the bound address (concrete port even when asked for :0)
        self.addr = format_addr(self._sock.getsockname()[:2])
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: every spec this coordinator has seen, by content hash
        self._jobs: dict[str, _TrackedJob] = {}
        #: queued jobs: weighted fair across tenants, aged priority within
        self._queue = FairJobQueue(
            settings.queue_capacity,
            tenants=tenants,
            aging_every=aging_every,
            age_max_boost=age_max_boost,
        )
        self._workers_seen: set[str] = set()
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self.jobs_submitted = 0
        self.cache_hits = 0
        self.deduped = 0
        self.jobs_cancelled = 0
        self._accept_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Coordinator":
        """Launch the accept loop (idempotent); returns ``self``."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-coordinator", daemon=True
            )
            self._accept_thread.start()
            self._event("coordinator_start", self.addr)
        return self

    def stop(self) -> None:
        """Shut the coordinator down and drop every connection."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._event("coordinator_stop", self.addr)
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            # Unblock workers parked in `next` and fail undispatched work
            # so no client waits on a job that can never run.
            for job in self._queue.remove(lambda _job: True):
                job.finish(error=encode_error(
                    ServeError("coordinator stopped before job was assigned")
                ))
            self._cond.notify_all()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for t in self._threads:
            t.join(timeout=5.0)

    def join(self, timeout: float | None = None) -> bool:
        """Block until :meth:`stop` (a ``shutdown`` RPC counts)."""
        return self._stopped.wait(timeout=timeout)

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accept / connection loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-coordinator-conn", daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _serve_conn(self, conn: socket.socket) -> None:
        #: jobs this connection (a worker) has claimed and not finished
        assigned: dict[str, _TrackedJob] = {}
        shard: str | None = None
        try:
            while not self._stopped.is_set():
                try:
                    msg = recv_msg(conn)
                except (ServeError, OSError):
                    break
                if msg is None:
                    break  # clean EOF
                if self.token is not None and msg.get("token") != self.token:
                    # Auth precedes every op, including shutdown: an
                    # unauthenticated peer can neither run jobs nor stop
                    # the coordinator.
                    obs.inc("serve.coord.auth_failures_total")
                    try:
                        send_msg(conn, {
                            "ok": False,
                            **encode_error(ServeError(
                                "authentication failed: bad or missing serve "
                                "token (pass connect(addr, token=...) or set "
                                "REPRO_SERVE_TOKEN)"
                            )),
                        })
                    except (ServeError, OSError):
                        pass
                    break
                if msg.get("op") == "shutdown":
                    # Acknowledge before stopping — stop() drops every
                    # connection, so a dispatched reply would race it.
                    try:
                        send_msg(conn, {"ok": True, "stopping": True})
                    except (ServeError, OSError):
                        pass
                    threading.Thread(target=self.stop, daemon=True).start()
                    break
                try:
                    reply, shard = self._dispatch(msg, assigned, shard)
                except ServeError as exc:
                    reply = {"ok": False, **encode_error(exc)}
                except Exception as exc:  # defensive: never kill the conn silently
                    reply = {"ok": False, **encode_error(ServeError(str(exc)))}
                try:
                    send_msg(conn, reply)
                except (ServeError, OSError):
                    break
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass
            if assigned:
                self._requeue(assigned, shard)
            if shard is not None:
                self._event("worker_disconnect", shard)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        msg: dict[str, Any],
        assigned: dict[str, _TrackedJob],
        shard: str | None,
    ) -> tuple[dict[str, Any], str | None]:
        op = msg.get("op")
        if op == "submit":
            return self._op_submit(msg), shard
        if op == "wait":
            return self._op_wait(msg), shard
        if op == "status":
            return self._op_status(msg), shard
        if op == "cancel":
            return self._op_cancel(msg), shard
        if op == "describe":
            return {"ok": True, "describe": self.describe()}, shard
        if op == "hello":
            shard = str(msg.get("shard", "worker"))
            with self._lock:
                self._workers_seen.add(shard)
            self._event("worker_connect", shard)
            return {"ok": True, "addr": self.addr}, shard
        if op == "next":
            return self._op_next(msg, assigned, shard), shard
        if op == "done":
            return self._op_done(msg, assigned), shard
        raise ServeError(f"unknown coordinator op: {op!r}")

    def _op_submit(self, msg: dict[str, Any]) -> dict[str, Any]:
        spec = JobSpec.from_dict(msg["spec"])
        if "options" in msg and msg["options"] is not None:
            options = SubmitOptions.from_wire(msg["options"])
        else:
            # Pre-SubmitOptions clients send a bare priority field.
            options = SubmitOptions(priority=int(msg.get("priority", 0)))
        tenant = options.tenant or DEFAULT_TENANT
        spec_hash = spec.spec_hash()
        with self._lock:
            if self._stopped.is_set():
                raise ServeError("coordinator is stopped")
            self.jobs_submitted += 1
            obs.inc("serve.coord.jobs_total")
            obs.inc("serve.coord.jobs_total", labels={"tenant": tenant})
            job = self._jobs.get(spec_hash)
            if job is not None and job.status in ("queued", "running"):
                # In-flight dedup only — a *done* job falls through to
                # the cache lookup below (mirroring JobService, where a
                # finished spec's resubmission is a cache hit).
                job.dedup_count += 1
                self.deduped += 1
                obs.inc("serve.coord.dedup_total")
                self._event("dedup", spec_hash[:12])
                return {"ok": True, "job": job.snapshot(), "deduped": True}
            if self.cache.lookup(spec) is not None:
                self.cache_hits += 1
                obs.inc("serve.coord.cache_hits_total")
                job = _TrackedJob(spec, spec_hash, options.priority, tenant)
                job.finish(
                    run_dir=str(self.cache.entry_dir(spec)), from_cache=True
                )
                self._jobs[spec_hash] = job
                self._event("cache_hit", spec_hash[:12])
                return {"ok": True, "job": job.snapshot(), "deduped": False}
            policy = self._queue.policy_for(tenant)
            if policy.max_inflight is not None:
                inflight = sum(
                    1 for j in self._jobs.values()
                    if j.tenant == tenant and j.status in ("queued", "running")
                )
                if inflight >= policy.max_inflight:
                    obs.inc("serve.coord.rejected_total")
                    raise QuotaError(
                        f"tenant {tenant!r} at max_inflight "
                        f"({policy.max_inflight} admitted jobs); retry after "
                        "some finish",
                        tenant=tenant,
                    )
            job = _TrackedJob(spec, spec_hash, options.priority, tenant)
            try:
                self._queue.push(job, priority=options.priority, tenant=tenant)
            except Exception:
                obs.inc("serve.coord.rejected_total")
                raise
            self._jobs[spec_hash] = job
            self._event("submit", spec_hash[:12])
            self._cond.notify()
            return {"ok": True, "job": job.snapshot(), "deduped": False}

    def _op_wait(self, msg: dict[str, Any]) -> dict[str, Any]:
        job = self._get_job(msg)
        timeout = msg.get("timeout")
        deadline = None if timeout is None else float(timeout)
        waited = 0.0
        while True:
            if job._finished.wait(timeout=_WAIT_CHUNK_S):
                return {"ok": True, "job": job.snapshot()}
            waited += _WAIT_CHUNK_S
            if deadline is not None and waited >= deadline:
                return {"ok": True, "job": job.snapshot(), "timed_out": True}
            if self._stopped.is_set():
                raise ServeError("coordinator stopped while waiting")

    def _op_status(self, msg: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "job": self._get_job(msg).snapshot()}

    def _op_next(
        self,
        msg: dict[str, Any],
        assigned: dict[str, _TrackedJob],
        shard: str | None,
    ) -> dict[str, Any]:
        if shard is None:
            raise ServeError("worker must say hello before asking for work")
        timeout = float(msg.get("timeout", 0.0))
        with self._cond:
            if not self._queue:
                self._cond.wait(timeout=min(timeout, 30.0))
            if self._stopped.is_set():
                raise ServeError("coordinator is stopped")
            entry = self._queue.pop_nowait()
            if entry is None:
                return {"ok": True, "job": None}
            job = entry.item
            job.status = "running"
            job.worker = shard
        assigned[job.spec_hash] = job
        self._event("assign", f"{job.spec_hash[:12]} -> {shard}")
        return {
            "ok": True,
            "job": {
                "spec": job.spec.to_dict(),
                "spec_hash": job.spec_hash,
                "priority": job.priority,
                "retries": job.retries,
                # Worker passthrough: the shard resubmits locally with
                # these so its ledger rows carry the tenant label.
                "options": {"priority": job.priority, "tenant": job.tenant},
            },
        }

    def _op_done(
        self, msg: dict[str, Any], assigned: dict[str, _TrackedJob]
    ) -> dict[str, Any]:
        spec_hash = str(msg.get("spec_hash", ""))
        job = assigned.pop(spec_hash, None)
        if job is None:
            with self._lock:
                job = self._jobs.get(spec_hash)
        if job is None:
            raise ServeError(f"done for unknown job {spec_hash[:12]}")
        error = msg.get("error")
        job.finish(
            run_dir=msg.get("run_dir"),
            error=None if error is None else dict(error),
            from_cache=bool(msg.get("from_cache", False)),
        )
        self._event(
            "failed" if error is not None else "done", spec_hash[:12]
        )
        return {"ok": True}

    def _op_cancel(self, msg: dict[str, Any]) -> dict[str, Any]:
        job = self._get_job(msg)
        with self._lock:
            if job.status != "queued":
                # Running/done jobs are out of the coordinator's reach —
                # the claim lives on a worker.  Report non-cancellation
                # rather than guessing.
                return {"ok": True, "cancelled": False, "job": job.snapshot()}
            removed = self._queue.remove(lambda j: j is job)
            if not removed:
                return {"ok": True, "cancelled": False, "job": job.snapshot()}
            self.jobs_cancelled += 1
            obs.inc("serve.coord.cancelled_total")
            job.finish(error=encode_error(JobCancelledError(
                f"job {job.spec_hash[:12]} cancelled while queued"
            )))
            self._event("cancel", job.spec_hash[:12])
            return {"ok": True, "cancelled": True, "job": job.snapshot()}

    def _requeue(
        self, assigned: dict[str, _TrackedJob], shard: str | None
    ) -> None:
        """Return a lost worker's unfinished claims to the queue."""
        with self._lock:
            for job in assigned.values():
                if job.status != "running":
                    continue
                job.status = "queued"
                job.worker = None
                job.retries += 1
                obs.inc("serve.coord.requeues_total")
                # force=True: a lost worker's claim must never be shed
                # by capacity/quota checks on its way back in.
                self._queue.push(
                    job, priority=job.priority, tenant=job.tenant, force=True
                )
                self._event(
                    "requeue", f"{job.spec_hash[:12]} (lost {shard})"
                )
            self._cond.notify_all()

    def _get_job(self, msg: dict[str, Any]) -> _TrackedJob:
        spec_hash = str(msg.get("spec_hash", ""))
        with self._lock:
            job = self._jobs.get(spec_hash)
        if job is None:
            raise ServeError(f"unknown job {spec_hash[:12] or '<missing>'}")
        return job

    # ------------------------------------------------------------------
    def _event(self, kind: str, detail: str | None = None) -> None:
        if self.ledger is not None:
            self.ledger.record_event(f"coord.{kind}", detail)

    def describe(self) -> dict[str, Any]:
        """Introspection snapshot (mirrors ``JobService.describe``)."""
        with self._lock:
            statuses: dict[str, int] = {}
            for job in self._jobs.values():
                statuses[job.status] = statuses.get(job.status, 0) + 1
            return {
                "describe_version": DESCRIBE_VERSION,
                "kind": "coordinator",
                "addr": self.addr,
                "settings": {
                    "queue_capacity": self.settings.queue_capacity,
                    "cache_dir": str(self.settings.cache_dir),
                    "auth": self.token is not None,
                },
                "queue_depth": len(self._queue),
                "queue_depth_by_tenant": self._queue.depth_by_tenant(),
                "tenants": {
                    name: asdict(policy)
                    for name, policy in sorted(self._queue.policies.items())
                },
                "jobs": statuses,
                "jobs_submitted": self.jobs_submitted,
                "cache_hits": self.cache_hits,
                "deduped": self.deduped,
                "cancelled": self.jobs_cancelled,
                "workers": sorted(self._workers_seen),
                "ledger": None if self.ledger is None else str(self.ledger.path),
                "closed": self._stopped.is_set(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coordinator(addr={self.addr!r}, queued={len(self._queue)}, "
            f"jobs={len(self._jobs)})"
        )

"""Async multi-tenant HTTP gateway over the serve tier.

The gateway is the front door for "many clients, one simulation
service": a stdlib-``asyncio`` HTTP server that exposes the
:class:`~repro.serve.Client` verbs — submit, status, result, cancel —
as JSON endpoints plus a Server-Sent-Events stream of per-slice
progress, over either an in-process :class:`~repro.serve.JobService`
or a remote coordinator (``backend="host:port"``).  Fairness, quotas,
and priority aging live *below* it in :class:`~repro.serve.FairJobQueue`
— the gateway's job is admission, translation, and streaming:

* ``POST /v1/jobs`` — body ``{"spec": {...}, "options": {...}}``;
  the tenant rides in ``options`` or the ``X-Repro-Tenant`` header.
  Admission failures (:class:`~repro.errors.AdmissionError` /
  :class:`~repro.errors.QuotaError`) surface as **429** with a
  ``Retry-After`` header derived from current queue depth — explicit
  load shedding, never silent queueing;
* ``GET /v1/jobs/<hash>`` — job snapshot;
* ``GET /v1/jobs/<hash>/result?timeout=`` — block (server-side, in
  chunks) for the result; replies with run accounting and the
  ``state_sha256`` digest of the final particle state so clients can
  assert bit-identity without shipping arrays over HTTP;
* ``POST /v1/jobs/<hash>/cancel`` — cancel a queued/running job;
* ``GET /v1/jobs/<hash>/events`` — SSE: per-slice ``slice`` events from
  the scheduler's observer seam (in-process backend) or ``status``
  transitions (remote backend), closed by one ``finished`` event;
* ``GET /v1/status`` — versioned describe document
  (:mod:`repro.serve.schema`, ``kind="gateway"``) with the backend's
  own describe nested;
* ``GET /healthz`` — unauthenticated liveness probe.

Auth reuses the serve-tier shared secret: when a token is configured
(``token=`` / ``configure(serve_token=)`` / ``REPRO_SERVE_TOKEN``),
every endpoint but ``/healthz`` requires ``Authorization: Bearer
<token>`` and replies **401** otherwise.  The same token is forwarded on
the coordinator connection, so one secret protects the whole path.

Everything here is standard library — no aiohttp, no frameworks — and
all blocking backend calls hop through ``run_in_executor`` so one slow
result wait never stalls the accept loop.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import traceback
from dataclasses import replace
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.errors import AdmissionError, ReproError, ServeError
from repro.serve.options import SubmitOptions
from repro.serve.remote import connect
from repro.serve.schema import DESCRIBE_VERSION
from repro.serve.service import JobHandle, JobService
from repro.serve.settings import current_settings
from repro.serve.spec import JobSpec
from repro.serve.wire import format_addr, parse_addr

__all__ = ["Gateway"]

#: Upper bound on a request body (a JobSpec is tiny; anything bigger is
#: a client bug or abuse).
_MAX_BODY = 1 << 20
#: Executor-side wait slice while a result endpoint blocks — short, so
#: pool threads rotate instead of pinning on one slow job.
_RESULT_SLICE_S = 0.25
#: Remote-backend SSE poll cadence (the coordinator has no push seam).
_SSE_POLL_S = 0.25
#: Retry-After ceiling (seconds).
_MAX_RETRY_AFTER_S = 60

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HTTPError(Exception):
    """Internal control flow: unwinds a handler into one JSON reply."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        error_type: str = "ServeError",
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.headers = headers or {}


def _json_response(
    status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
) -> bytes:
    body = json.dumps(payload).encode()
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for key, value in (headers or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _sse_event(event: str, data: dict[str, Any]) -> bytes:
    return f"event: {event}\ndata: {json.dumps(data)}\n\n".encode()


class Gateway:
    """Asyncio HTTP front end over the job service (see module docs).

    Parameters
    ----------
    addr:
        ``"host:port"`` to listen on; port ``0`` picks a free port (the
        bound address is :attr:`addr` after :meth:`start`).  ``None``
        resolves through ``configure(gateway_addr=)`` /
        ``REPRO_GATEWAY_ADDR``, defaulting to ``127.0.0.1:0``.
    backend:
        ``None`` for an in-process :class:`~repro.serve.JobService`
        (configured by ``service_kwargs`` — ``tenants=``,
        ``max_concurrent_jobs=``, ...), or a coordinator ``"host:port"``
        to front the distributed tier.
    token:
        Shared secret: required as ``Authorization: Bearer`` on every
        endpoint but ``/healthz`` *and* forwarded to a remote backend.
        Resolves through ``configure(serve_token=)`` /
        ``REPRO_SERVE_TOKEN``; ``None`` after resolution disables auth.
    """

    def __init__(
        self,
        addr: str | None = None,
        *,
        backend: str | None = None,
        token: str | None = None,
        **service_kwargs: Any,
    ) -> None:
        settings = current_settings(token=token)
        if addr is None:
            addr = settings.gateway_addr or "127.0.0.1:0"
        self._bind_host, self._bind_port = parse_addr(addr)
        self.token = settings.token
        self.backend = backend
        if backend is None:
            self._client = connect(None, **service_kwargs)
        else:
            if service_kwargs:
                raise ServeError(
                    f"{sorted(service_kwargs)} configure an in-process "
                    "service and don't apply when fronting a coordinator "
                    f"({backend}); set them on the coordinator/workers"
                )
            self._client = connect(backend, token=self.token)
        #: the in-process service when there is one (slice-event seam)
        self._service: JobService | None = (
            self._client.service
            if isinstance(self._client.service, JobService)
            else None
        )
        self.addr: str | None = None
        self.requests_total = 0
        self.shed_total = 0
        self.auth_failures = 0
        self.streams_open = 0
        self._handles: dict[str, JobHandle] = {}
        self._lock = threading.Lock()
        #: spec_hash -> asyncio queues of SSE subscribers (loop thread only)
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stopping = threading.Event()
        self._startup_error: BaseException | None = None
        self._remove_listener: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Gateway":
        """Bind and serve on a background event loop; returns ``self``."""
        if self._thread is not None:
            return self
        if self._service is not None:
            self._remove_listener = self._service.add_slice_listener(
                self._on_service_event
            )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServeError(f"gateway failed to start: {self._startup_error}")
        if self.addr is None:
            raise ServeError("gateway failed to bind within 10s")
        return self

    def stop(self) -> None:
        """Stop serving and close the backend client."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._remove_listener is not None:
            self._remove_listener()
            self._remove_listener = None
        loop, event = self._loop, self._shutdown_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._client.close()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn, self._bind_host, self._bind_port
        )
        sock = server.sockets[0]
        self.addr = format_addr(sock.getsockname()[:2])
        self._started.set()
        try:
            await self._shutdown_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    # slice-event plumbing (service scheduler threads -> loop -> SSE)
    # ------------------------------------------------------------------
    def _on_service_event(self, event: dict[str, Any]) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        try:
            loop.call_soon_threadsafe(self._fan_out, dict(event))
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _fan_out(self, event: dict[str, Any]) -> None:
        queues = self._subscribers.get(event.get("spec_hash", ""))
        if not queues:
            return
        for q in list(queues):
            q.put_nowait(event)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # defensive: never kill the accept loop
            traceback.print_exc(file=sys.stderr)
            try:
                writer.write(_json_response(
                    500, {"ok": False, "error": str(exc),
                          "error_type": type(exc).__name__}
                ))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        if not request_line:
            return
        try:
            method, target, _version = request_line.decode().split(None, 2)
        except ValueError:
            writer.write(_json_response(400, {"ok": False, "error": "bad request line"}))
            await writer.drain()
            return
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            writer.write(_json_response(
                413, {"ok": False, "error": f"body exceeds {_MAX_BODY} bytes"}
            ))
            await writer.drain()
            return
        body = await reader.readexactly(length) if length else b""

        self.requests_total += 1
        obs.inc("serve.gateway.requests_total")
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            if path == "/healthz":
                writer.write(_json_response(200, {"ok": True}))
                await writer.drain()
                return
            self._check_auth(headers)
            if path == "/v1/status" and method == "GET":
                reply = await self._handle_status()
            elif path == "/v1/jobs" and method == "POST":
                reply = await self._handle_submit(body, headers)
            elif path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/events") and method == "GET":
                    await self._handle_events(rest[: -len("/events")].rstrip("/"), writer)
                    return
                reply = await self._handle_job(method, rest, query)
            else:
                raise _HTTPError(404, f"no route for {method} {path}")
        except _HTTPError as exc:
            writer.write(_json_response(
                exc.status,
                {"ok": False, "error": str(exc), "error_type": exc.error_type},
                exc.headers,
            ))
            await writer.drain()
            return
        writer.write(reply)
        await writer.drain()

    def _check_auth(self, headers: dict[str, str]) -> None:
        if self.token is None:
            return
        auth = headers.get("authorization", "")
        if auth != f"Bearer {self.token}":
            self.auth_failures += 1
            obs.inc("serve.gateway.auth_failures_total")
            raise _HTTPError(
                401,
                "authentication failed: send Authorization: Bearer <token> "
                "(the serve token; see REPRO_SERVE_TOKEN)",
            )

    # ------------------------------------------------------------------
    # endpoint handlers
    # ------------------------------------------------------------------
    async def _handle_status(self) -> bytes:
        loop = asyncio.get_running_loop()
        try:
            backend = await loop.run_in_executor(None, self._client.describe)
        except ReproError as exc:
            backend = {"error": str(exc)}
        return _json_response(200, {"ok": True, "status": self.describe(backend)})

    async def _handle_submit(self, body: bytes, headers: dict[str, str]) -> bytes:
        payload = self._parse_json(body)
        if "spec" not in payload:
            raise _HTTPError(400, 'body must carry a "spec" object')
        try:
            spec = JobSpec.from_dict(payload["spec"])
            opts = SubmitOptions.from_wire(payload.get("options") or {})
        except (ReproError, TypeError, ValueError) as exc:
            raise _HTTPError(400, str(exc), error_type=type(exc).__name__)
        header_tenant = headers.get("x-repro-tenant")
        if opts.tenant is None and header_tenant:
            opts = replace(opts, tenant=header_tenant)
        loop = asyncio.get_running_loop()
        try:
            handle = await loop.run_in_executor(
                None, lambda: self._client.submit(spec, options=opts)
            )
        except AdmissionError as exc:
            self.shed_total += 1
            obs.inc("serve.gateway.shed_total")
            retry_after = await loop.run_in_executor(None, self._retry_after)
            raise _HTTPError(
                429, str(exc), error_type=type(exc).__name__,
                headers={"Retry-After": str(retry_after)},
            )
        except ReproError as exc:
            raise _HTTPError(400, str(exc), error_type=type(exc).__name__)
        with self._lock:
            self._handles[handle.spec_hash] = handle
        return _json_response(200, {"ok": True, "job": self._snapshot(handle)})

    async def _handle_job(
        self, method: str, rest: str, query: dict[str, str]
    ) -> bytes:
        if rest.endswith("/result") and method == "GET":
            return await self._handle_result(
                rest[: -len("/result")].rstrip("/"), query
            )
        if rest.endswith("/cancel") and method == "POST":
            return await self._handle_cancel(rest[: -len("/cancel")].rstrip("/"))
        if "/" not in rest and method == "GET":
            handle = self._get_handle(rest)
            # Refresh first: a remote handle only learns of completion
            # through a status RPC, which done() performs.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, handle.done)
            return _json_response(200, {"ok": True, "job": self._snapshot(handle)})
        raise _HTTPError(404, f"no route for {method} /v1/jobs/{rest}")

    async def _handle_result(self, spec_hash: str, query: dict[str, str]) -> bytes:
        handle = self._get_handle(spec_hash)
        timeout = float(query["timeout"]) if "timeout" in query else None
        loop = asyncio.get_running_loop()
        waited = 0.0
        while not await loop.run_in_executor(
            None, lambda: handle.wait(timeout=_RESULT_SLICE_S)
        ):
            waited += _RESULT_SLICE_S
            if timeout is not None and waited >= timeout:
                raise _HTTPError(
                    408, f"job {spec_hash[:12]} not finished within {timeout}s"
                )
        if handle.error is not None:
            return _json_response(200, {
                "ok": True,
                "job": self._snapshot(handle),
                "result": None,
            })
        result = handle.result(timeout=0)
        digest = await loop.run_in_executor(None, self._digest, result)
        return _json_response(200, {
            "ok": True,
            "job": self._snapshot(handle),
            "result": {
                "run_dir": str(result.run_dir),
                "steps": result.steps,
                "time": result.time,
                "from_cache": result.from_cache,
                "state_sha256": digest,
            },
        })

    @staticmethod
    def _digest(result: Any) -> str:
        from repro.check.golden import state_digest

        return state_digest(result.particles, result.time)

    async def _handle_cancel(self, spec_hash: str) -> bytes:
        handle = self._get_handle(spec_hash)
        loop = asyncio.get_running_loop()
        cancelled = await loop.run_in_executor(
            None, lambda: self._client.cancel(spec_hash)
        )
        return _json_response(200, {
            "ok": True,
            "cancelled": bool(cancelled),
            "job": self._snapshot(handle),
        })

    async def _handle_events(
        self, spec_hash: str, writer: asyncio.StreamWriter
    ) -> None:
        handle = self._get_handle(spec_hash)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        self.streams_open += 1
        obs.set_gauge("serve.gateway.streams_open", self.streams_open)
        try:
            if self._service is not None:
                await self._stream_service_events(spec_hash, handle, writer)
            else:
                await self._stream_polled_events(spec_hash, handle, writer)
        finally:
            self.streams_open -= 1
            obs.set_gauge("serve.gateway.streams_open", self.streams_open)

    async def _stream_service_events(
        self, spec_hash: str, handle: JobHandle, writer: asyncio.StreamWriter
    ) -> None:
        """Real per-slice events off the scheduler's observer seam."""
        q: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(spec_hash, []).append(q)
        try:
            if handle.done():
                writer.write(_sse_event("finished", self._snapshot(handle)))
                await writer.drain()
                return
            while True:
                try:
                    event = await asyncio.wait_for(q.get(), timeout=_SSE_POLL_S)
                except asyncio.TimeoutError:
                    if handle.done():
                        # Finished before we subscribed (or the finished
                        # event raced the subscription) — close it out.
                        writer.write(
                            _sse_event("finished", self._snapshot(handle))
                        )
                        await writer.drain()
                        return
                    continue
                kind = event.pop("type", "slice")
                writer.write(_sse_event(kind, event))
                await writer.drain()
                if kind == "finished":
                    return
        finally:
            queues = self._subscribers.get(spec_hash, [])
            if q in queues:
                queues.remove(q)
            if not queues:
                self._subscribers.pop(spec_hash, None)

    async def _stream_polled_events(
        self, spec_hash: str, handle: JobHandle, writer: asyncio.StreamWriter
    ) -> None:
        """Remote backend: no push seam, so stream status transitions."""
        loop = asyncio.get_running_loop()
        last_status: str | None = None
        while True:
            done = await loop.run_in_executor(None, handle.done)
            status = handle.status
            if done:
                writer.write(_sse_event("finished", self._snapshot(handle)))
                await writer.drain()
                return
            if status != last_status:
                writer.write(_sse_event("status", self._snapshot(handle)))
                await writer.drain()
                last_status = status
            await asyncio.sleep(_SSE_POLL_S)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _parse_json(self, body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return payload

    def _get_handle(self, spec_hash: str) -> JobHandle:
        with self._lock:
            handle = self._handles.get(spec_hash)
        if handle is None:
            raise _HTTPError(
                404, f"unknown job {spec_hash[:12] or '<missing>'} "
                "(jobs are tracked per gateway)",
            )
        return handle

    def _snapshot(self, handle: JobHandle) -> dict[str, Any]:
        snap = {
            "spec_hash": handle.spec_hash,
            "status": handle.status,
            "dedup_count": handle.dedup_count,
        }
        tenant = getattr(handle, "tenant", None)
        if tenant is not None:
            snap["tenant"] = tenant
        if handle.error is not None:
            snap["error"] = str(handle.error)
            snap["error_type"] = type(handle.error).__name__
        return snap

    def _retry_after(self) -> int:
        """Back-pressure hint: deeper queue -> longer suggested backoff."""
        depth, drain = 0, 1
        try:
            if self._service is not None:
                depth = len(self._service.queue)
                drain = self._service.settings.max_concurrent_jobs
            else:
                described = self._client.describe()
                depth = int(described.get("queue_depth", 0))
                drain = max(1, len(described.get("workers", ())))
        except ReproError:
            pass
        return min(_MAX_RETRY_AFTER_S, 1 + depth // max(1, drain))

    def describe(self, backend: dict[str, Any] | None = None) -> dict[str, Any]:
        """The gateway's versioned describe document (kind ``gateway``)."""
        with self._lock:
            tracked = len(self._handles)
        return {
            "describe_version": DESCRIBE_VERSION,
            "kind": "gateway",
            "addr": self.addr,
            "backend": self.backend or "in-process",
            "auth": self.token is not None,
            "requests_total": self.requests_total,
            "shed_total": self.shed_total,
            "auth_failures": self.auth_failures,
            "streams_open": self.streams_open,
            "jobs_tracked": tracked,
            "backend_describe": backend,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Gateway(addr={self.addr!r}, backend={self.backend or 'in-process'!r}, "
            f"requests={self.requests_total})"
        )

"""Unified submission options for every serve surface.

Before this module, submission tuning was kwarg sprawl: ``priority=``,
``retry=``, ``fault_injector=``, ``verify=`` threaded separately through
:meth:`JobService.submit`, :meth:`Client.submit`, ``serve submit`` and the
remote client — and each new knob (tenant, quotas) would have widened four
signatures at once.  :class:`SubmitOptions` collapses them into one frozen
dataclass accepted uniformly by the in-process service, the socket client,
the HTTP gateway, and the CLI::

    from repro.serve import SubmitOptions, connect

    client = connect()
    handle = client.submit(spec, options=SubmitOptions(priority=5, tenant="ops"))

The legacy keyword forms keep working for one release behind exactly one
:class:`DeprecationWarning` per call (see :func:`resolve_options`).

Wire shape
----------
Only the JSON-safe subset — ``priority`` and ``tenant`` — crosses process
boundaries (socket protocol, HTTP gateway, ``--jobs`` batch files).
``retry`` / ``fault_injector`` / ``verify`` hold live Python objects and are
in-process-only; :meth:`SubmitOptions.to_wire` raises
:class:`~repro.errors.ServeError` when they are set, which is the same
contract the remote client enforced before this class existed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.errors import ServeError

__all__ = ["SubmitOptions", "resolve_options"]

#: Legacy per-call keywords folded into SubmitOptions (shim set).
DEPRECATED_SUBMIT_KWARGS = ("priority", "retry", "fault_injector", "verify")

#: Fields that may cross a process boundary (socket / HTTP / batch JSON).
WIRE_FIELDS = ("priority", "tenant")


@dataclass(frozen=True)
class SubmitOptions:
    """Per-submission tuning, uniform across all serve surfaces.

    ``priority`` — higher pops first within a tenant (FIFO on ties).
    ``tenant`` — fair-scheduling and quota bucket; ``None`` falls back to
    the service's default tenant (settings chain: ``configure(tenant=)``
    > ``REPRO_TENANT`` > ``"default"``).
    ``retry`` — per-job :class:`~repro.exec.RetryPolicy` (in-process only).
    ``fault_injector`` — per-job :class:`~repro.exec.FaultInjector`
    (in-process only, testing).
    ``verify`` — per-job invariant-guard override (in-process only;
    ``None`` inherits the service default).
    """

    priority: int = 0
    tenant: str | None = None
    retry: Any | None = None
    fault_injector: Any | None = None
    verify: Any | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ServeError(
                f"SubmitOptions.priority must be an int, got {self.priority!r}"
            )
        if self.tenant is not None and (
            not isinstance(self.tenant, str) or not self.tenant
        ):
            raise ServeError(
                f"SubmitOptions.tenant must be a non-empty string, got {self.tenant!r}"
            )

    # -- wire form -----------------------------------------------------
    def wire_safe(self) -> bool:
        """True when no in-process-only field is set."""
        return self.retry is None and self.fault_injector is None and self.verify is None

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe dict of the fields that may cross a process boundary.

        Raises :class:`ServeError` if an in-process-only field (``retry``,
        ``fault_injector``, ``verify``) is set — those cannot be shipped
        to a coordinator or gateway.
        """
        if not self.wire_safe():
            offending = [
                name
                for name in ("retry", "fault_injector", "verify")
                if getattr(self, name) is not None
            ]
            raise ServeError(
                "SubmitOptions fields "
                + ", ".join(offending)
                + " are in-process only and cannot cross the wire; "
                "configure them on the worker's service instead"
            )
        out: dict[str, Any] = {}
        if self.priority != 0:
            out["priority"] = self.priority
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any] | None) -> "SubmitOptions":
        """Rebuild from :meth:`to_wire` output; rejects unknown keys."""
        if payload is None:
            return cls()
        unknown = set(payload) - set(WIRE_FIELDS)
        if unknown:
            raise ServeError(
                f"unknown SubmitOptions wire fields: {sorted(unknown)} "
                f"(supported: {list(WIRE_FIELDS)})"
            )
        return cls(**dict(payload))

    def with_defaults(self, *, tenant: str | None = None) -> "SubmitOptions":
        """Fill unset fields from service-level defaults (currently tenant)."""
        if self.tenant is None and tenant is not None:
            return replace(self, tenant=tenant)
        return self


def resolve_options(
    options: SubmitOptions | None,
    deprecated: Mapping[str, Any],
    *,
    where: str,
    stacklevel: int = 3,
) -> SubmitOptions:
    """Merge the new ``options=`` form with legacy per-call keywords.

    ``deprecated`` maps legacy kwarg names (a subset of
    :data:`DEPRECATED_SUBMIT_KWARGS`) to the values the caller passed;
    entries that equal the :class:`SubmitOptions` default are treated as
    "not passed".  When any legacy value is present, exactly one
    :class:`DeprecationWarning` is emitted naming ``where`` — and mixing
    both forms in one call is an error, because silently preferring one
    would make the migration ambiguous.
    """
    defaults = {f.name: f.default for f in fields(SubmitOptions)}
    passed = {
        name: value
        for name, value in deprecated.items()
        if value != defaults.get(name, None)
    }
    if not passed:
        return options if options is not None else SubmitOptions()
    if options is not None:
        raise ServeError(
            f"{where}: pass either options=SubmitOptions(...) or the legacy "
            f"keywords ({sorted(passed)}), not both"
        )
    warnings.warn(
        f"{where}: the {sorted(passed)} keyword(s) are deprecated; pass "
        "options=SubmitOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return SubmitOptions(**passed)

"""Bounded, thread-safe priority queue with admission control.

The serve layer's backpressure point: :meth:`JobQueue.push` *rejects*
(:class:`~repro.errors.AdmissionError`) rather than blocks when the
queue is at capacity, so a submitting client always gets an immediate
answer — queued or refused — and a stalled scheduler can never wedge its
producers.

Ordering is strict priority (higher first), FIFO within a priority
level: ties break on a monotonic submission sequence number, so equal-
priority jobs run in submission order.  That makes scheduling
deterministic for any fixed submission sequence.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any

from repro.errors import AdmissionError, ServeError

__all__ = ["JobQueue"]


class JobQueue:
    """Priority queue of pending jobs, bounded at ``capacity``."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False
        #: total accepted / rejected submissions (observability)
        self.accepted = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    # ------------------------------------------------------------------
    def push(self, item: Any, *, priority: int = 0) -> None:
        """Enqueue ``item``; higher ``priority`` pops first.

        Raises :class:`AdmissionError` at capacity and
        :class:`ServeError` after :meth:`close`.
        """
        with self._nonempty:
            if self._closed:
                raise ServeError("queue is closed")
            if len(self._heap) >= self.capacity:
                self.rejected += 1
                raise AdmissionError(
                    f"queue at capacity ({self.capacity} pending jobs); "
                    "retry after the scheduler drains or raise queue_capacity"
                )
            heapq.heappush(self._heap, (-priority, next(self._seq), item))
            self.accepted += 1
            self._nonempty.notify()

    def pop(self, timeout: float | None = None) -> Any | None:
        """Dequeue the highest-priority item, blocking up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed and
        empty (the scheduler's shutdown signal).
        """
        with self._nonempty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._nonempty.wait(timeout=timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further pushes and wake every blocked :meth:`pop`."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobQueue(pending={len(self)}, capacity={self.capacity}, "
            f"closed={self._closed})"
        )

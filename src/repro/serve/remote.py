"""One client surface, two transports: ``connect()`` and the remote tier.

:func:`connect` is the single public way to obtain a serve client:

* ``connect()`` — resolve the coordinator address through the usual
  settings chain (``repro.configure(serve_addr=...)``, then
  ``REPRO_SERVE_ADDR``); no address configured means an in-process
  :class:`~repro.serve.JobService`;
* ``connect(None)`` — force in-process regardless of configuration;
* ``connect("host:port")`` — dial that coordinator.

Either way the return value is a :class:`~repro.serve.Client` with the
same verbs (``submit`` / ``run`` / ``map`` / ``describe`` / ``close``),
the same :class:`~repro.serve.JobHandle` future semantics, and the same
errors — a remote :class:`~repro.errors.AdmissionError` is raised
client-side exactly like an in-process one (:mod:`repro.serve.wire`
reconstructs the class) — so call sites never branch on transport.

:class:`RemoteService` is the transport adapter behind the remote case:
it speaks the coordinator protocol over one socket and hands back
:class:`RemoteHandle` futures.  Results never cross the wire — the
coordinator reports the completed run *directory* and the handle loads
the final checkpoint from the shared filesystem through the very same
loader the in-process cache uses, which is what makes remote results
bit-identical to local ones by construction.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.errors import ServeError
from repro.serve.cache import JobResult, load_result
from repro.serve.options import SubmitOptions, resolve_options
from repro.serve.service import (
    Client,
    JobHandle,
    JobService,
    _internal_construction,
)
from repro.serve.settings import current_settings
from repro.serve.spec import JobSpec
from repro.serve.wire import decode_error, parse_addr, recv_msg, send_msg

__all__ = ["RemoteHandle", "RemoteService", "connect"]

#: Per-RPC slice of a long server-side wait, so concurrent handles on
#: one connection interleave instead of starving behind a single wait.
_WAIT_SLICE_S = 0.5

#: "No address argument given" sentinel — distinct from an explicit
#: ``None`` (which forces in-process).
_UNSET: Any = object()


class RemoteHandle(JobHandle):
    """A :class:`JobHandle` backed by coordinator RPCs.

    Same contract as the in-process handle — ``done``/``wait``/
    ``result``/``status``/``dedup_count`` — with state refreshed from
    the coordinator on demand and resolved locally (loading the result
    from the run directory) once the coordinator reports a terminal
    state.
    """

    def __init__(
        self,
        service: "RemoteService",
        spec: JobSpec,
        spec_hash: str,
        snapshot: dict[str, Any],
    ) -> None:
        super().__init__(spec, spec_hash)
        self._remote = service
        self._absorb_lock = threading.Lock()
        self._absorb(snapshot)

    def _absorb(self, snapshot: dict[str, Any]) -> None:
        """Fold a coordinator job snapshot into local future state.

        Serialized: concurrent pollers (e.g. gateway status probes on
        the same handle) must not both load the result or interleave a
        terminal transition with a stale queued/running update.
        """
        with self._absorb_lock:
            self.dedup_count = int(snapshot.get("dedup_count", 0) or 0)
            if snapshot.get("tenant"):
                self.tenant = snapshot["tenant"]
            status = snapshot.get("status")
            if self._done.is_set():
                return
            if status == "done":
                result = load_result(
                    self.spec,
                    snapshot["run_dir"],
                    from_cache=bool(snapshot.get("from_cache", False)),
                )
                self._resolve(result)
            elif status == "failed":
                self._reject(decode_error(snapshot.get("error") or {}))
            elif status in ("queued", "running"):
                self.status = status

    # -- waiting (RPC-backed) ------------------------------------------
    def done(self) -> bool:
        if not self._done.is_set():
            self._absorb(self._remote._status(self.spec_hash))
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        if self._done.is_set():
            return True
        self._absorb(self._remote._wait(self.spec_hash, timeout))
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        if not self.wait(timeout=timeout):
            raise ServeError(
                f"job {self.spec_hash[:12]} not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteHandle({self.spec_hash[:12]}, status={self.status})"


class RemoteService:
    """Coordinator-backed stand-in for :class:`JobService`.

    Speaks one request/response socket (thread-safe: RPCs serialize on
    an internal lock) and exposes the subset of the service protocol
    :class:`Client` drives — ``submit``, ``run``, ``describe``,
    ``close`` — plus :meth:`shutdown` to stop the coordinator itself.
    """

    def __init__(
        self,
        addr: str,
        *,
        token: str | None = None,
        connect_timeout: float = 30.0,
    ) -> None:
        self.addr = addr
        self._token = token
        host, port = parse_addr(addr)
        try:
            self._sock: socket.socket | None = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ServeError(f"cannot reach coordinator at {addr}: {exc}") from exc
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    # -- plumbing ------------------------------------------------------
    def _rpc(self, msg: dict[str, Any]) -> dict[str, Any]:
        if self._token is not None:
            msg = {**msg, "token": self._token}
        with self._lock:
            if self._sock is None:
                raise ServeError("connection to coordinator is closed")
            try:
                send_msg(self._sock, msg)
                reply = recv_msg(self._sock)
            except OSError as exc:
                raise ServeError(
                    f"lost connection to coordinator at {self.addr}: {exc}"
                ) from exc
        if reply is None:
            raise ServeError(f"coordinator at {self.addr} closed the connection")
        if not reply.get("ok"):
            raise decode_error(reply)
        return reply

    def _status(self, spec_hash: str) -> dict[str, Any]:
        return self._rpc({"op": "status", "spec_hash": spec_hash})["job"]

    def _wait(self, spec_hash: str, timeout: float | None) -> dict[str, Any]:
        """Chunked server-side wait so one handle can't starve others."""
        remaining = timeout
        while True:
            slice_s = (
                _WAIT_SLICE_S if remaining is None
                else max(0.0, min(_WAIT_SLICE_S, remaining))
            )
            reply = self._rpc(
                {"op": "wait", "spec_hash": spec_hash, "timeout": slice_s}
            )
            job = reply["job"]
            if job["status"] in ("done", "failed"):
                return job
            if remaining is not None:
                remaining -= slice_s
                if remaining <= 0:
                    return job

    # -- service protocol ----------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        options: SubmitOptions | None = None,
        priority: int = 0,
        **unsupported: Any,
    ) -> RemoteHandle:
        """Submit to the coordinator; returns a :class:`RemoteHandle`.

        Engine-level per-job options (``retry``, ``fault_injector``,
        ``verify``) are worker-side policy in the distributed tier and
        cannot be shipped with a submission — setting one (via ``options``
        or the deprecated kwargs) raises :class:`ServeError` rather than
        silently dropping it.
        """
        if not isinstance(spec, JobSpec):
            raise ServeError(
                f"submit() takes a JobSpec, got {type(spec).__name__}"
            )
        given = {k: v for k, v in unsupported.items() if v is not None}
        if given:
            raise ServeError(
                f"{sorted(given)} not supported over a coordinator "
                "connection; configure them on the worker shards"
            )
        opts = resolve_options(
            options, {"priority": priority}, where="RemoteService.submit"
        )
        if not opts.wire_safe():
            local_only = sorted(
                name for name in ("fault_injector", "retry", "verify")
                if getattr(opts, name) is not None
            )
            raise ServeError(
                f"{local_only} not supported over a coordinator "
                "connection; configure them on the worker shards"
            )
        reply = self._rpc(
            {"op": "submit", "spec": spec.to_dict(), "options": opts.to_wire()}
        )
        return RemoteHandle(self, spec, spec.spec_hash(), reply["job"])

    def run(
        self,
        spec: JobSpec,
        *,
        options: SubmitOptions | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> JobResult:
        """Submit and block for the result."""
        opts = resolve_options(
            options, {"priority": priority}, where="RemoteService.run"
        )
        return self.submit(spec, options=opts).result(timeout=timeout)

    def cancel(self, spec_hash: str) -> bool:
        """Cancel a queued job at the coordinator.

        Returns ``True`` if the job was plucked from the queue (it fails
        with :class:`~repro.errors.JobCancelledError`), ``False`` if it
        was already running, finished, or unknown to the cancel op.
        """
        reply = self._rpc({"op": "cancel", "spec_hash": spec_hash})
        return bool(reply.get("cancelled", False))

    def describe(self) -> dict[str, Any]:
        """The coordinator's introspection snapshot."""
        return self._rpc({"op": "describe"})["describe"]

    def shutdown(self) -> None:
        """Ask the coordinator to stop (used by ``serve shutdown``)."""
        self._rpc({"op": "shutdown"})

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Drop the connection (the coordinator keeps running)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteService(addr={self.addr!r})"


def connect(
    addr: "str | None" = _UNSET,
    *,
    token: str | None = None,
    **service_kwargs: Any,
) -> Client:
    """Open a serve client — in-process or against a coordinator.

    ``addr`` semantics:

    * omitted — resolve through the settings chain:
      ``repro.configure(serve_addr=...)``, then the ``REPRO_SERVE_ADDR``
      environment variable, else in-process;
    * ``None`` — force an in-process service regardless of settings;
    * ``"host:port"`` — dial that coordinator.

    ``token`` is the shared secret a token-protected coordinator
    requires; omitted, it resolves through ``configure(serve_token=)``
    then ``REPRO_SERVE_TOKEN``.  A mismatch surfaces as a clear
    :class:`~repro.errors.ServeError` on the first RPC.  The in-process
    path ignores it (there is no wire to protect).

    The returned :class:`Client` exposes identical verbs and errors on
    both transports.  ``service_kwargs`` (``max_concurrent_jobs=``,
    ``cache_dir=``, ``verify=``, ...) configure the in-process service
    and are rejected for a remote connection — those knobs belong to the
    coordinator and its workers, and silently ignoring them would make
    the two transports behave differently.
    """
    if addr is _UNSET:
        addr = current_settings().addr
    if addr is not None:
        if service_kwargs:
            raise ServeError(
                f"{sorted(service_kwargs)} configure an in-process service "
                f"and don't apply when connecting to a coordinator "
                f"({addr}); set them on the coordinator/workers instead"
            )
        if token is None:
            token = current_settings().token
        return Client._wrap(RemoteService(addr, token=token), own=True)
    with _internal_construction():
        service = JobService(**service_kwargs)
    return Client._wrap(service, own=True)

"""Step-sliced scheduler: many live sessions over one shared worker pool.

The paper's time-axis insight — overlap independent work along time so
the hardware never idles — applied to whole *runs*: instead of executing
jobs back-to-back, the scheduler keeps up to ``max_live`` sessions in
flight and round-robins them in ``steps_per_slice``-step slices.  While
one job's force pass waits on the shared :class:`~repro.exec.EnginePool`,
another job's slice can occupy it.

Correctness does not depend on scheduling order: each session's steps
are strictly sequential, forces are deterministic on every backend, and
periodic checkpoints fire on absolute step counts — so a job's final
state is bit-identical whether it ran alone, sliced against seven
siblings, or resumed after a crash.  The scheduler buys throughput and
fairness, never a different answer.

Jobs are anything exposing the small protocol the runner drives:
``begin()``, ``advance(k) -> bool`` (True when finished), ``finish()``,
``fail(exc)`` — see ``repro.serve.service._Job`` for the real one.

``slice_hook`` is the scheduler's verification seam: called after every
successful slice with ``(job, done)``, and a raising hook fails the job
exactly like a raising ``advance`` — the serve layer uses it to run
:class:`~repro.check.RunGuard` invariant checks each slice, so a job
serving bad physics dies at slice granularity rather than at completion.

``slice_observer`` is the observability twin of that seam: called after
the hook with ``(job, done, wall_s)`` where ``wall_s`` is the measured
wall-clock duration of the ``advance`` call.  The serve layer points it
at the run ledger and the labeled ``serve.slice_seconds`` histogram.  An
observer must never influence the run, so a raising observer is a bug
surfaced to the runner thread, not a job failure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

from repro.errors import ServeError
from repro.serve.queue import JobQueue

__all__ = ["Scheduler"]

#: How long a runner blocks on the queue before re-checking shutdown.
_POLL_S = 0.05


class Scheduler:
    """Drains a :class:`JobQueue` through round-robin step slices."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        max_live: int = 2,
        runner_threads: int | None = None,
        steps_per_slice: int = 8,
        slice_hook: Callable[[Any, bool], None] | None = None,
        slice_observer: Callable[[Any, bool, float], None] | None = None,
    ) -> None:
        if max_live < 1:
            raise ServeError(f"max_live must be >= 1, got {max_live}")
        if steps_per_slice < 1:
            raise ServeError(
                f"steps_per_slice must be >= 1, got {steps_per_slice}"
            )
        runner_threads = max_live if runner_threads is None else runner_threads
        if runner_threads < 1:
            raise ServeError(
                f"runner_threads must be >= 1, got {runner_threads}"
            )
        self.queue = queue
        self.max_live = max_live
        self.runner_threads = runner_threads
        self.steps_per_slice = steps_per_slice
        self.slice_hook = slice_hook
        self.slice_observer = slice_observer
        self._ready: deque[Any] = deque()
        self._lock = threading.Lock()
        self._live = 0
        self._abort = False
        self._threads: list[threading.Thread] = []
        #: slices executed (observability)
        self.slices = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the runner threads (idempotent)."""
        if self._threads:
            return
        for i in range(self.runner_threads):
            t = threading.Thread(
                target=self._run, name=f"repro-serve-runner-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the runners.

        ``drain=True`` closes the queue and lets runners finish every
        queued and live job first; ``drain=False`` aborts after the
        current slices, failing whatever remains (each abandoned job's
        ``fail`` fires with :class:`ServeError`).
        """
        self.queue.close()
        if not drain:
            with self._lock:
                self._abort = True
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if not drain:
            self._fail_remaining()

    def _fail_remaining(self) -> None:
        leftovers = []
        with self._lock:
            leftovers.extend(self._ready)
            self._ready.clear()
            self._live -= len(leftovers)
        while True:
            item = self.queue.pop(timeout=0)
            if item is None:
                break
            leftovers.append(item)
        for job in leftovers:
            job.fail(ServeError("scheduler stopped before job completed"))

    @property
    def live(self) -> int:
        """Sessions currently in flight (begun, not finished)."""
        with self._lock:
            return self._live

    @property
    def idle(self) -> bool:
        """No live sessions and nothing queued."""
        return self.live == 0 and len(self.queue) == 0

    # ------------------------------------------------------------------
    # runner
    # ------------------------------------------------------------------
    def _take_ready(self) -> Any | None:
        with self._lock:
            if self._ready:
                return self._ready.popleft()
            return None

    def _admit(self) -> Any | None:
        """Pop a queued job if the live budget allows; else None."""
        with self._lock:
            if self._live >= self.max_live:
                return None
            self._live += 1
        job = self.queue.pop(timeout=_POLL_S)
        if job is None:
            with self._lock:
                self._live -= 1
            return None
        try:
            job.begin()
        except Exception as exc:
            with self._lock:
                self._live -= 1
            job.fail(exc)
            return None
        return job

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._abort:
                    return
            job = self._take_ready()
            if job is None:
                job = self._admit()
            if job is None:
                if self.queue.closed and self.idle:
                    return
                # Over the live budget with nothing ready: yield briefly
                # instead of spinning (the budget path blocks in pop()).
                time.sleep(0.001)
                continue
            try:
                t0 = time.perf_counter()
                done = job.advance(self.steps_per_slice)
                slice_wall = time.perf_counter() - t0
                if self.slice_hook is not None:
                    self.slice_hook(job, done)
            except Exception as exc:
                with self._lock:
                    self._live -= 1
                job.fail(exc)
                continue
            if self.slice_observer is not None:
                self.slice_observer(job, done, slice_wall)
            with self._lock:
                self.slices += 1
                if done:
                    self._live -= 1
                else:
                    self._ready.append(job)
            if done:
                job.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Scheduler(live={self.live}, max_live={self.max_live}, "
            f"runners={self.runner_threads}, "
            f"steps_per_slice={self.steps_per_slice})"
        )

"""Versioned JSON schema for serve-tier status surfaces.

``JobService.describe()``, ``Coordinator.describe()`` and the gateway's
``GET /v1/status`` all return one JSON-safe document shape so ``top`` and
external pollers can rely on it across releases.  The contract:

* every document carries ``describe_version`` (this module's
  :data:`DESCRIBE_VERSION`) and a ``kind`` discriminator
  (``"service"`` | ``"coordinator"`` | ``"gateway"``);
* the per-kind required keys below are stable within a version — new
  optional keys may appear at any time, required keys only change with a
  version bump;
* pollers should reject documents whose major version they don't know
  rather than guess.

:func:`validate_describe` is the round-trip test's (and any poller's)
entry point; it raises :class:`~repro.errors.ServeError` naming the
first violated requirement.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ServeError

__all__ = ["DESCRIBE_VERSION", "DESCRIBE_KINDS", "validate_describe"]

#: Bumped when a *required* key is added, removed, or changes meaning.
DESCRIBE_VERSION = 1

#: Required keys per document kind (beyond the common pair).
DESCRIBE_KINDS: dict[str, tuple[str, ...]] = {
    "service": (
        "settings",
        "queue_depth",
        "queue_depth_by_tenant",
        "tenants",
        "default_tenant",
        "live",
        "jobs_submitted",
        "cache_hits",
        "deduped",
        "closed",
    ),
    "coordinator": (
        "addr",
        "settings",
        "queue_depth",
        "queue_depth_by_tenant",
        "tenants",
        "jobs",
        "workers",
        "cache_hits",
        "deduped",
        "closed",
    ),
    "gateway": (
        "addr",
        "backend",
        "requests_total",
        "shed_total",
        "streams_open",
    ),
}


def validate_describe(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Check ``payload`` against the versioned describe contract.

    Returns the payload (as a plain dict) on success so callers can
    chain; raises :class:`ServeError` on the first violation.  Also
    verifies JSON round-trip safety — a describe document that cannot
    survive ``json.dumps``/``loads`` is a bug regardless of its keys.
    """
    if not isinstance(payload, Mapping):
        raise ServeError(
            f"describe document must be a mapping, got {type(payload).__name__}"
        )
    version = payload.get("describe_version")
    if version != DESCRIBE_VERSION:
        raise ServeError(
            f"unsupported describe_version {version!r} "
            f"(this library speaks {DESCRIBE_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in DESCRIBE_KINDS:
        raise ServeError(
            f"unknown describe kind {kind!r} (expected one of "
            f"{sorted(DESCRIBE_KINDS)})"
        )
    missing = [key for key in DESCRIBE_KINDS[kind] if key not in payload]
    if missing:
        raise ServeError(
            f"describe document (kind={kind!r}) missing required keys: {missing}"
        )
    try:
        round_tripped = json.loads(json.dumps(dict(payload)))
    except (TypeError, ValueError) as exc:
        raise ServeError(f"describe document is not JSON-safe: {exc}") from None
    return round_tripped

"""The batched job service: admission, dedup, caching, execution.

:class:`JobService` ties the serve layer together: submissions pass
admission control on a bounded :class:`~repro.serve.JobQueue`, identical
in-flight specs coalesce onto one :class:`JobHandle`, completed specs are
answered straight from the content-addressed
:class:`~repro.serve.ResultCache`, and everything that actually runs is
step-sliced by the :class:`~repro.serve.Scheduler` over one shared
:class:`~repro.exec.EnginePool`.

Fault domains are per job: each job gets its own
:class:`~repro.exec.ExecutionEngine` (vended from the shared pool) with
its own retry policy and fault injector, so an injected or real failure
degrades or kills *that* job while siblings keep their pool and their
bit-identical results.

Observability: every submission bumps ``serve.jobs_total``; cache
answers bump ``serve.cache_hits_total``; coalesced submissions bump
``serve.dedup_total``; rejections bump ``serve.rejected_total``; the
pending count is mirrored to the ``serve.queue_depth`` gauge; and each
executed job records a ``serve.job`` span (worker-measured interval) on
completion.  Per-plan labeled timeseries ride alongside the totals:
``serve.jobs_total``/``serve.slices_total`` counters and the
``serve.queue_wait_seconds``/``serve.slice_seconds`` bounded-reservoir
histograms, all labeled ``{plan=...}``.

Durability: when a run ledger is configured
(``repro.configure(ledger_dir=...)`` / ``REPRO_LEDGER_DIR`` / the
``ledger=`` keyword), the service records every submission, queue wait,
executed slice, cache hit, dedup, retry count and final status to
SQLite through the scheduler's ``slice_observer`` seam — pure
observation, so batched results stay bit-identical to solo runs.  The
``repro-nbody top`` and ``report`` commands read that ledger.

:class:`Client` is the ergonomic front end, and
:func:`repro.serve.connect` is the one public way to obtain one —
in-process or against a coordinator, same verbs either way::

    from repro.serve import JobSpec, connect

    with connect() as client:          # in-process service
        handles = [client.submit(JobSpec(n=2048, plan=p, steps=50))
                   for p in ("i", "j", "w", "jw")]
        results = [h.result() for h in handles]

Constructing :class:`JobService` or :class:`Client` directly still works
but emits a :class:`DeprecationWarning` — ``connect()`` is the supported
surface and the direct constructors are a one-release compatibility
shim.

Sharding: a service created with ``shard=`` stamps that shard name onto
every ledger row it writes (the provenance column ``merge-shards``
relies on), and ``resume_orphans=True`` lets it adopt incomplete cache
entries left by a killed sibling shard — resuming from the orphan's last
checkpoint instead of starting over, bit-identical by the runtime's
resume guarantee.

Tenancy: every submission lands in a tenant bucket (from
:class:`~repro.serve.SubmitOptions`, else the service's default tenant)
and the queue is a :class:`~repro.serve.FairJobQueue` — weighted fair
across tenants with deterministic priority aging, so one tenant's bulk
sweep cannot starve another's interactive probe.  Per-tenant
``max_queued`` / ``max_inflight`` quotas shed excess load with
:class:`~repro.errors.QuotaError` before it can crowd the queue, and
ledger rows carry the tenant for per-tenant accounting.  Submission
tuning itself is unified in :class:`~repro.serve.SubmitOptions`; the old
``priority=`` / ``retry=`` / ``fault_injector=`` / ``verify=`` keywords
keep working for one release behind a single :class:`DeprecationWarning`
per call.
"""

from __future__ import annotations

import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro import obs
from repro.check.guards import RunGuard
from repro.check.invariants import TolerancePolicy
from repro.errors import JobCancelledError, QuotaError, ServeError
from repro.exec.engine import EnginePool, ExecutionEngine
from repro.exec.faults import FaultInjector, RetryPolicy
from repro.obs.ledger import RunLedger
from repro.obs.settings import default_ledger
from repro.runtime.session import RunSession
from repro.serve.cache import JobResult, ResultCache
from repro.serve.options import SubmitOptions, resolve_options
from repro.serve.scheduler import Scheduler
from repro.serve.schema import DESCRIBE_VERSION
from repro.serve.settings import ServeSettings, current_settings
from repro.serve.spec import JobSpec
from repro.serve.tenancy import DEFAULT_TENANT, FairJobQueue, TenantPolicy

__all__ = ["Client", "JobHandle", "JobService"]

# ---------------------------------------------------------------------------
# deprecation shim for direct construction
# ---------------------------------------------------------------------------

_construction = threading.local()


@contextmanager
def _internal_construction() -> Iterator[None]:
    """Suppress the direct-construction deprecation warning.

    ``connect()`` (and ``Client`` building its own service) construct
    these classes on the user's behalf — those paths are the supported
    surface and must not warn.  Thread-local so one thread's connect()
    never silences a genuine direct construction on another.
    """
    previous = getattr(_construction, "internal", False)
    _construction.internal = True
    try:
        yield
    finally:
        _construction.internal = previous


def _warn_deprecated_constructor(name: str) -> None:
    if getattr(_construction, "internal", False):
        return
    warnings.warn(
        f"constructing {name} directly is deprecated and will be removed "
        "in the next release; use repro.serve.connect() — no argument (or "
        "addr=None) for an in-process service, 'host:port' for a "
        "coordinator — which returns a Client with the same API",
        DeprecationWarning,
        stacklevel=3,
    )


class JobHandle:
    """A submitted job's future: status, result, completion wait."""

    def __init__(self, spec: JobSpec, spec_hash: str) -> None:
        self.spec = spec
        self.spec_hash = spec_hash
        self._done = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None
        #: "queued" | "running" | "complete" | "failed" | "cancelled"
        self.status = "queued"
        #: submissions coalesced onto this handle beyond the first
        self.dedup_count = 0
        #: run ledger row backing this submission (None when unledgered)
        self.run_id: int | None = None
        #: fair-scheduling bucket this submission landed in
        self.tenant: str | None = None
        #: backing _Job while in flight (cancellation seam; None for
        #: cache-hit handles, which are born resolved)
        self._job: "_Job | None" = None

    # -- resolution (service-internal) ---------------------------------
    def _resolve(self, result: JobResult) -> None:
        self._result = result
        self.status = "complete"
        self._done.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self.status = (
            "cancelled" if isinstance(error, JobCancelledError) else "failed"
        )
        self._done.set()

    # -- waiting -------------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout=timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for the result; re-raises the job's failure if it died."""
        if not self._done.wait(timeout=timeout):
            raise ServeError(
                f"job {self.spec_hash[:12]} not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def error(self) -> BaseException | None:
        return self._error

    @property
    def from_cache(self) -> bool:
        return self._result is not None and self._result.from_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle({self.spec_hash[:12]}, status={self.status})"


class _Job:
    """Scheduler work unit: owns one session, engine, and handle."""

    def __init__(
        self,
        service: "JobService",
        spec: JobSpec,
        handle: JobHandle,
        *,
        options: SubmitOptions,
    ) -> None:
        self.service = service
        self.spec = spec
        self.handle = handle
        self.options = options
        self.tenant = options.tenant or DEFAULT_TENANT
        self.retry = options.retry
        self.fault_injector = options.fault_injector
        self.verify = options.verify
        #: set by JobService.cancel(); checked at every slice boundary
        self.cancel_event = threading.Event()
        self.engine: ExecutionEngine | None = None
        self.session: RunSession | None = None
        self._t0 = 0.0
        #: ledger row of this job (None when ledgering is off)
        self.run_id: int | None = None
        #: steps advanced by the most recent scheduler slice
        self.last_slice_steps = 0
        self._slice_seq = 0
        self._submitted_at = time.time()
        self._retries = 0
        #: set when another shard completed the spec before we could run
        self._from_cache = False

    # -- scheduler protocol --------------------------------------------
    def begin(self) -> None:
        if self.cancel_event.is_set():
            # Cancelled after the pop but before admission finished.
            raise JobCancelledError(
                f"job {self.spec_hash12} cancelled before it started"
            )
        self._t0 = time.perf_counter()
        self.handle.status = "running"
        service = self.service
        if service.resume_orphans:
            run_dir, mode = service.cache.claim_or_resume(self.spec)
        else:
            run_dir, mode = service.cache.claim(self.spec), "fresh"
        if mode == "complete":
            # Another shard completed this spec between our cache lookup
            # and the claim — serve its result instead of re-running.
            self._from_cache = True
            service._note_dequeued()
            return
        self.engine = service.pool.engine(
            retry=self.retry, fault_injector=self.fault_injector
        )
        if mode == "resume":
            # A killed sibling's orphan: continue from its last
            # checkpoint.  Bit-identical to a fresh run by the runtime's
            # resume guarantee, and strictly less work.
            self.session = RunSession.resume(
                run_dir,
                engine=self.engine,
                guard=self._resolve_guard(),
                ledger=False,
            )
            obs.inc("serve.orphan_resumes_total")
            if service.ledger is not None and self.run_id is not None:
                service.ledger.record_event(
                    "orphan_resume", self.spec_hash12, run_id=self.run_id
                )
        else:
            sim = self.spec.build_simulation(engine=self.engine)
            # ledger=False: the service records this job itself (queue
            # wait, slices, status) — a session-level ledger row would
            # double it.
            self.session = RunSession(
                sim,
                run_dir,
                checkpoint_every=self.spec.checkpoint_every,
                guard=self._resolve_guard(),
                ledger=False,
            )
        self.session.start(self.spec.steps)
        queue_wait = max(0.0, time.time() - self._submitted_at)
        obs.observe(
            "serve.queue_wait_seconds", queue_wait,
            labels={"plan": self.spec.plan},
        )
        if self.service.ledger is not None and self.run_id is not None:
            self.service.ledger.record_started(
                self.run_id,
                backend=self.engine.backend,
                checkpoint_dir=str(run_dir),
            )
        self.service._note_dequeued()

    def _resolve_guard(self) -> "RunGuard | bool | None":
        """This job's guard: per-submit ``verify`` wins over the service's.

        ``None`` falls through to the session default
        (``repro.configure(verify=...)`` / ``REPRO_CHECK_*``).
        """
        verify = self.verify if self.verify is not None else self.service.verify
        if verify is None or isinstance(verify, bool):
            return verify
        if isinstance(verify, RunGuard):
            return verify
        if isinstance(verify, TolerancePolicy):
            return RunGuard(policy=verify)
        raise ServeError(
            f"verify must be a bool, TolerancePolicy or RunGuard, "
            f"got {type(verify).__name__}"
        )

    def advance(self, max_steps: int) -> bool:
        if self.cancel_event.is_set():
            # Slice boundary is the cancellation point: the in-flight
            # slice ran to completion (bit-exact state), and fail() will
            # release the cache claim so nothing half-done lingers.
            raise JobCancelledError(f"job {self.spec_hash12} cancelled")
        if self._from_cache:
            self.last_slice_steps = 0
            return True
        assert self.session is not None
        before = self.session.simulation.record.steps
        done = self.session.advance(max_steps)
        self.last_slice_steps = self.session.simulation.record.steps - before
        return done

    def verify_slice(self, done: bool) -> None:
        """Scheduler slice hook: invariant check at slice granularity.

        Skipped once the session is complete — the final checkpoint
        already verified the final state.
        """
        if done or self.session is None or self.session.guard is None:
            return
        guard = self.session.guard
        if guard.primed:
            guard.check(self.session.simulation, where="slice")

    def finish(self) -> None:
        result = self.service.cache.load(self.spec, from_cache=self._from_cache)
        self._close_engine()
        obs.complete_span(
            "serve.job",
            self._t0,
            time.perf_counter(),
            spec=self.spec_hash12,
            plan=self.spec.plan,
            n=self.spec.n,
            steps=self.spec.steps,
        )
        self.service._job_finished(self, result=result)

    def fail(self, exc: BaseException) -> None:
        self._close_engine()
        if isinstance(exc, JobCancelledError) and self.session is not None:
            # Release the cache claim: a cancelled run's partial
            # checkpoints must not be adoptable as a resumable orphan —
            # a later identical submission starts fresh.
            self.session = None
            self.service.cache.evict(self.spec)
        self.service._job_finished(self, error=exc)

    # -- helpers -------------------------------------------------------
    def _close_engine(self) -> None:
        if self.engine is not None:
            # Retry accounting must survive the engine teardown.
            self._retries = self.engine.retries_total
            self.engine.close()
            self.engine = None

    @property
    def spec_hash12(self) -> str:
        return self.handle.spec_hash[:12]


class JobService:
    """Batched execution of :class:`JobSpec` jobs over a shared pool.

    Keyword arguments override :func:`repro.configure` values, which
    override ``REPRO_SERVE_*`` environment variables, which override the
    defaults (see :mod:`repro.serve.settings`).  ``pool`` injects an
    existing :class:`~repro.exec.EnginePool` (the service then does not
    close it); otherwise a thread-backed pool with ``pool_workers``
    workers is created and owned.

    ``shard`` names this service's fault domain — every ledger row it
    writes carries the name, so a merged multi-shard database keeps
    per-shard provenance.  ``resume_orphans=True`` lets the service adopt
    incomplete cache entries (a killed sibling shard's half-finished
    runs) by resuming from their last checkpoint.

    ``tenants`` maps tenant names to :class:`~repro.serve.TenantPolicy`
    (or plain dicts) — scheduling weight plus ``max_queued`` /
    ``max_inflight`` quotas; unnamed tenants get an unbounded weight-1
    default.  ``default_tenant`` is the bucket for submissions whose
    :class:`~repro.serve.SubmitOptions` name none (settings chain:
    explicit > ``configure(tenant=)`` > ``REPRO_TENANT`` >
    ``"default"``).  ``aging_every`` / ``age_max_boost`` tune the
    deterministic priority aging (see :mod:`repro.serve.tenancy`).

    .. deprecated::
        Direct construction is deprecated; use
        :func:`repro.serve.connect`.
    """

    def __init__(
        self,
        *,
        max_concurrent_jobs: int | None = None,
        queue_capacity: int | None = None,
        cache_dir: str | Path | None = None,
        pool: EnginePool | None = None,
        pool_backend: str = "thread",
        pool_workers: int = 2,
        runner_threads: int | None = None,
        steps_per_slice: int = 8,
        verify: "bool | TolerancePolicy | None" = None,
        ledger: "RunLedger | bool | None" = None,
        shard: str | None = None,
        resume_orphans: bool = False,
        tenants: "dict[str, TenantPolicy | dict[str, Any]] | None" = None,
        default_tenant: str | None = None,
        aging_every: int = 8,
        age_max_boost: int = 8,
    ) -> None:
        _warn_deprecated_constructor("JobService")
        #: fault-domain name stamped onto this service's ledger rows
        self.shard = shard
        #: adopt killed siblings' incomplete cache entries via resume
        self.resume_orphans = resume_orphans
        self.settings: ServeSettings = current_settings(
            max_concurrent_jobs=max_concurrent_jobs,
            queue_capacity=queue_capacity,
            cache_dir=None if cache_dir is None else str(cache_dir),
            tenant=default_tenant,
        )
        #: bucket for submissions that name no tenant
        self.default_tenant = self.settings.tenant or DEFAULT_TENANT
        self.cache = ResultCache(self.settings.cache_dir)
        self.queue = FairJobQueue(
            self.settings.queue_capacity,
            tenants=tenants,
            aging_every=aging_every,
            age_max_boost=age_max_boost,
        )
        self._own_pool = pool is None
        self.pool = pool or EnginePool(backend=pool_backend, workers=pool_workers)
        #: service-wide verification default (per-submit ``verify`` wins)
        self.verify = verify
        #: durable run ledger (None when ledgering is off); resolved with
        #: the usual precedence: explicit > configure() > env > off
        if ledger is None:
            self.ledger: RunLedger | None = default_ledger()
        elif ledger is False:
            self.ledger = None
        elif isinstance(ledger, RunLedger):
            self.ledger = ledger
        else:
            raise ServeError(
                f"ledger must be a RunLedger, False or None, "
                f"got {type(ledger).__name__}"
            )
        self.scheduler = Scheduler(
            self.queue,
            max_live=self.settings.max_concurrent_jobs,
            runner_threads=runner_threads,
            steps_per_slice=steps_per_slice,
            slice_hook=lambda job, done: job.verify_slice(done),
            slice_observer=self._observe_slice,
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, JobHandle] = {}
        #: admitted-but-unfinished jobs per tenant (max_inflight quota)
        self._tenant_inflight: dict[str, int] = {}
        #: gateway/SSE seam: callables fed slice + completion events
        self._listeners: list[Any] = []
        self._closed = False
        #: submission counters (also mirrored into repro.obs)
        self.jobs_submitted = 0
        self.cache_hits = 0
        self.deduped = 0
        self.jobs_cancelled = 0
        self.scheduler.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        options: SubmitOptions | None = None,
        priority: int = 0,
        retry: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        verify: "bool | TolerancePolicy | RunGuard | None" = None,
    ) -> JobHandle:
        """Admit one job; returns immediately with its handle.

        ``options`` is the one submission-tuning surface
        (:class:`~repro.serve.SubmitOptions`: priority, tenant, retry,
        fault_injector, verify); the bare keywords are a deprecated
        compatibility shim emitting one :class:`DeprecationWarning`.

        Order of resolution: an identical in-flight spec coalesces onto
        the existing handle; a completed cache entry resolves instantly;
        otherwise the tenant's quotas and the queue's capacity admit or
        shed it (:class:`~repro.errors.QuotaError` /
        :class:`~repro.errors.AdmissionError`).  ``options.priority``
        orders queued jobs within a tenant (higher first, FIFO within,
        deterministic aging across waits); ``options.retry`` /
        ``options.fault_injector`` configure this job's private engine
        and touch no other job; ``options.verify`` guards *this* job's
        invariants every scheduler slice and checkpoint, failing the
        handle with :class:`~repro.errors.VerificationError` on
        violation (default: the service-wide ``verify`` setting).
        """
        opts = resolve_options(
            options,
            {
                "priority": priority,
                "retry": retry,
                "fault_injector": fault_injector,
                "verify": verify,
            },
            where="JobService.submit",
        ).with_defaults(tenant=self.default_tenant)
        if not isinstance(spec, JobSpec):
            raise ServeError(
                f"submit() takes a JobSpec, got {type(spec).__name__}"
            )
        spec_hash = spec.spec_hash()
        tenant = opts.tenant or DEFAULT_TENANT
        with self._lock:
            if self._closed:
                raise ServeError("service is closed")
            self.jobs_submitted += 1
            obs.inc("serve.jobs_total")
            obs.inc("serve.jobs_total", labels={"plan": spec.plan})
            obs.inc("serve.jobs_total", labels={"tenant": tenant})
            existing = self._inflight.get(spec_hash)
            if existing is not None:
                existing.dedup_count += 1
                self.deduped += 1
                obs.inc("serve.dedup_total")
                if self.ledger is not None and existing.run_id is not None:
                    self.ledger.bump_dedup(existing.run_id)
                    self.ledger.record_event(
                        "dedup", spec_hash[:12], run_id=existing.run_id
                    )
                return existing
            cached = self.cache.lookup(spec)
            if cached is not None:
                self.cache_hits += 1
                obs.inc("serve.cache_hits_total")
                handle = JobHandle(spec, spec_hash)
                handle.tenant = tenant
                handle._resolve(cached)
                if self.ledger is not None:
                    run_id = self.ledger.record_submitted(
                        source="serve",
                        **self._spec_fields(spec, spec_hash, tenant),
                    )
                    handle.run_id = run_id
                    self.ledger.record_finished(
                        run_id,
                        status="cached",
                        from_cache=True,
                        checkpoint_dir=str(cached.run_dir),
                    )
                    self.ledger.record_event(
                        "cache_hit", spec_hash[:12], run_id=run_id
                    )
                return handle
            policy = self.queue.policy_for(tenant)
            if (
                policy.max_inflight is not None
                and self._tenant_inflight.get(tenant, 0) >= policy.max_inflight
            ):
                obs.inc("serve.rejected_total")
                obs.inc("serve.rejected_total", labels={"tenant": tenant})
                raise QuotaError(
                    f"tenant {tenant!r} at max_inflight "
                    f"({policy.max_inflight} admitted jobs); retry after "
                    "some finish",
                    tenant=tenant,
                )
            handle = JobHandle(spec, spec_hash)
            handle.tenant = tenant
            job = _Job(self, spec, handle, options=opts)
            handle._job = job
            if self.ledger is not None:
                job.run_id = self.ledger.record_submitted(
                    source="serve", **self._spec_fields(spec, spec_hash, tenant)
                )
                handle.run_id = job.run_id
            try:
                self.queue.push(job, priority=opts.priority, tenant=tenant)
            except Exception as exc:
                obs.inc("serve.rejected_total")
                obs.inc("serve.rejected_total", labels={"tenant": tenant})
                if self.ledger is not None and job.run_id is not None:
                    self.ledger.record_finished(
                        job.run_id, status="failed",
                        error=f"{type(exc).__name__}: rejected by admission "
                        "control",
                    )
                raise
            self._inflight[spec_hash] = handle
            self._tenant_inflight[tenant] = (
                self._tenant_inflight.get(tenant, 0) + 1
            )
            obs.set_gauge("serve.queue_depth", len(self.queue))
            return handle

    def _spec_fields(
        self, spec: JobSpec, spec_hash: str, tenant: str | None = None
    ) -> dict[str, Any]:
        """Ledger ``runs`` columns carrying the spec's identity."""
        fields: dict[str, Any] = {
            "spec_hash": spec_hash,
            "workload": spec.workload,
            "n": spec.n,
            "seed": spec.seed,
            "plan": spec.plan,
            "dt": spec.dt,
            "steps": spec.steps,
        }
        if self.shard is not None:
            fields["shard"] = self.shard
        if tenant is not None:
            fields["tenant"] = tenant
        return fields

    def submit_many(
        self,
        specs: Iterable[JobSpec],
        *,
        options: SubmitOptions | None = None,
        priority: int = 0,
    ) -> list[JobHandle]:
        """Submit a batch; handles come back in submission order."""
        opts = resolve_options(
            options, {"priority": priority}, where="JobService.submit_many"
        )
        return [self.submit(s, options=opts) for s in specs]

    def run(
        self,
        spec: JobSpec,
        *,
        options: SubmitOptions | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> JobResult:
        """Submit and block for the result."""
        opts = resolve_options(
            options, {"priority": priority}, where="JobService.run"
        )
        return self.submit(spec, options=opts).result(timeout=timeout)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, spec_hash: str) -> bool:
        """Cancel an in-flight job by spec hash; returns whether it took.

        A queued job is plucked from the queue and failed immediately; a
        running job stops at its next slice boundary.  Either way the
        handle fails with :class:`~repro.errors.JobCancelledError`, the
        job's result-cache claim is released (no orphan claims — a later
        identical submission starts fresh), and coalesced waiters see the
        same cancellation.  Returns ``False`` when the hash is unknown or
        the job already finished.
        """
        with self._lock:
            handle = self._inflight.get(spec_hash)
        if handle is None or handle.done():
            return False
        job = handle._job
        if job is None:
            return False
        job.cancel_event.set()
        removed = self.queue.remove(lambda item: item is job)
        self.jobs_cancelled += 1
        obs.inc("serve.cancelled_total")
        obs.set_gauge("serve.queue_depth", len(self.queue))
        if removed:
            # Never admitted: fail it ourselves (the scheduler will
            # never see it).
            job.fail(
                JobCancelledError(
                    f"job {spec_hash[:12]} cancelled while queued"
                )
            )
        # else: running (or mid-admission) — the cancel event fails it at
        # the next slice boundary / begin() check.
        return True

    # ------------------------------------------------------------------
    # scheduler callbacks
    # ------------------------------------------------------------------
    def _note_dequeued(self) -> None:
        obs.set_gauge("serve.queue_depth", len(self.queue))

    def _observe_slice(self, job: _Job, done: bool, wall_s: float) -> None:
        """Scheduler ``slice_observer``: labeled telemetry + ledger row.

        Pure observation — never raises into the run path, never mutates
        the job beyond its slice counter.
        """
        plan = job.spec.plan
        obs.inc("serve.slices_total", labels={"plan": plan})
        obs.observe("serve.slice_seconds", wall_s, labels={"plan": plan})
        if (
            self.ledger is not None
            and job.run_id is not None
            and job.last_slice_steps > 0
        ):
            job._slice_seq += 1
            self.ledger.record_slice(
                job.run_id,
                seq=job._slice_seq,
                steps=job.last_slice_steps,
                wall_s=wall_s,
            )
        self._emit_event(
            {
                "type": "slice",
                "spec_hash": job.handle.spec_hash,
                "tenant": job.tenant,
                "seq": job._slice_seq,
                "steps": job.last_slice_steps,
                "done": done,
                "wall_s": wall_s,
            }
        )

    # -- event listeners (gateway/SSE seam) -----------------------------
    def add_slice_listener(self, fn: Any) -> Any:
        """Register a callable fed slice + completion event dicts.

        Listeners are pure observers: exceptions are swallowed, and
        events fire on scheduler runner threads (bridge to your own loop
        if you need one).  Returns a zero-argument remover.
        """
        with self._lock:
            self._listeners.append(fn)

        def remove() -> None:
            with self._lock:
                try:
                    self._listeners.remove(fn)
                except ValueError:
                    pass

        return remove

    def _emit_event(self, event: dict[str, Any]) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for fn in listeners:
            try:
                fn(event)
            except Exception:  # noqa: BLE001 - observers never raise upward
                pass

    def _job_finished(
        self,
        job: _Job,
        *,
        result: JobResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        tenant = job.tenant
        with self._lock:
            self._inflight.pop(job.handle.spec_hash, None)
            remaining = self._tenant_inflight.get(tenant, 0) - 1
            if remaining > 0:
                self._tenant_inflight[tenant] = remaining
            else:
                self._tenant_inflight.pop(tenant, None)
            obs.set_gauge("serve.queue_depth", len(self.queue))
        if error is not None:
            obs.inc("serve.jobs_failed_total")
            obs.inc("serve.jobs_failed_total", labels={"tenant": tenant})
            self._ledger_finish(job, error=error)
            job.handle._reject(error)
        else:
            assert result is not None
            obs.inc("serve.jobs_completed_total")
            obs.inc("serve.jobs_completed_total", labels={"tenant": tenant})
            self._ledger_finish(job, result=result)
            job.handle._resolve(result)
        self._emit_event(
            {
                "type": "finished",
                "spec_hash": job.handle.spec_hash,
                "tenant": tenant,
                "status": job.handle.status,
                "error": None if error is None else f"{type(error).__name__}: {error}",
            }
        )

    def _ledger_finish(
        self,
        job: _Job,
        *,
        result: JobResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Finalise the job's ledger row (observer: never raises upward)."""
        if self.ledger is None or job.run_id is None:
            return
        fields: dict[str, Any] = {
            "wall_s": time.perf_counter() - job._t0,
            "retries": job._retries,
        }
        if error is not None:
            fields["error"] = f"{type(error).__name__}: {error}"
            report = getattr(error, "report", None)
            if report is not None:
                fields["invariant_report"] = repr(report)
            self.ledger.record_finished(job.run_id, status="failed", **fields)
            return
        assert result is not None
        record = result.record  # serialised SimulationRecord (a dict)
        fields["simulated_s"] = record.get("simulated_seconds")
        fields["force_passes"] = record.get("force_passes")
        if result.from_cache:
            # Raced another shard to completion — record as a cache
            # answer, not a run this service executed.
            fields["from_cache"] = True
            fields["checkpoint_dir"] = str(result.run_dir)
            self.ledger.record_finished(job.run_id, status="cached", **fields)
            return
        snapshot = obs.metrics().snapshot()
        metrics = {
            k: v for k, v in sorted(snapshot.items())
            if k.startswith("serve.") or k.startswith("task_")
        }
        self.ledger.record_finished(
            job.run_id, status="complete", metrics=metrics, **fields
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down: ``drain=True`` finishes queued work first.

        Idempotent.  With ``drain=False`` every unfinished handle fails
        with :class:`ServeError`.  An injected ``pool`` is left open for
        its owner; an owned pool is closed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.scheduler.stop(drain=drain, timeout=timeout)
        if self._own_pool:
            self.pool.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def describe(self) -> dict[str, Any]:
        """Introspection snapshot (versioned: see :mod:`repro.serve.schema`)."""
        return {
            "describe_version": DESCRIBE_VERSION,
            "kind": "service",
            "settings": {
                "max_concurrent_jobs": self.settings.max_concurrent_jobs,
                "queue_capacity": self.settings.queue_capacity,
                "cache_dir": str(self.settings.cache_dir),
            },
            "pool": self.pool.describe(),
            "queue_depth": len(self.queue),
            "queue_depth_by_tenant": self.queue.depth_by_tenant(),
            "tenants": {
                name: asdict(policy)
                for name, policy in sorted(self.queue.policies.items())
            },
            "default_tenant": self.default_tenant,
            "live": self.scheduler.live,
            "jobs_submitted": self.jobs_submitted,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "cancelled": self.jobs_cancelled,
            "ledger": None if self.ledger is None else str(self.ledger.path),
            "shard": self.shard,
            "resume_orphans": self.resume_orphans,
            "closed": self._closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobService(queue={len(self.queue)}, live={self.scheduler.live}, "
            f"submitted={self.jobs_submitted}, closed={self._closed})"
        )


class Client:
    """Convenience front end over a :class:`JobService`.

    Constructing a client without ``service=`` creates and owns a
    service configured from the remaining keyword arguments (same
    precedence chain as :class:`JobService`); ``close`` then tears it
    down.  A shared service passed in stays open.

    The same class fronts a remote coordinator: :func:`repro.serve.connect`
    wraps either an in-process :class:`JobService` or a
    :class:`~repro.serve.remote.RemoteService` — identical verbs, same
    errors, so call sites never branch on transport.

    .. deprecated::
        Direct construction is deprecated; use
        :func:`repro.serve.connect`.
    """

    def __init__(self, service: JobService | None = None, **service_kwargs: Any) -> None:
        _warn_deprecated_constructor("Client")
        if service is not None and service_kwargs:
            raise ServeError(
                "pass either an existing service or service kwargs, not both"
            )
        self._own_service = service is None
        with _internal_construction():
            self.service = service or JobService(**service_kwargs)

    @classmethod
    def _wrap(cls, service: Any, *, own: bool) -> "Client":
        """Build a client around an existing (or remote) service.

        The ``connect()`` path: bypasses ``__init__`` so wrapping emits
        no deprecation warning and accepts any object speaking the
        service protocol (``submit``/``run``/``describe``/``close``).
        """
        client = cls.__new__(cls)
        client._own_service = own
        client.service = service
        return client

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec | None = None, /, **spec_kwargs: Any) -> JobHandle:
        """Submit a spec, or build one from keyword arguments.

        ``options=SubmitOptions(...)`` is the submission-tuning surface;
        the legacy ``priority`` / ``retry`` / ``fault_injector`` /
        ``verify`` keywords still route through (the service's shim
        emits one :class:`DeprecationWarning`).  The remaining keywords
        construct the :class:`JobSpec` when no spec object is given.
        """
        submit_kwargs = {
            k: spec_kwargs.pop(k)
            for k in ("options", "priority", "retry", "fault_injector", "verify")
            if k in spec_kwargs
        }
        if spec is None:
            spec = JobSpec(**spec_kwargs)
        elif spec_kwargs:
            raise ServeError(
                "pass either a JobSpec or spec keyword arguments, not both"
            )
        return self.service.submit(spec, **submit_kwargs)

    def run(self, spec: JobSpec | None = None, /, **spec_kwargs: Any) -> JobResult:
        """Submit and block for the result."""
        timeout = spec_kwargs.pop("timeout", None)
        return self.submit(spec, **spec_kwargs).result(timeout=timeout)

    def map(
        self, specs: Sequence[JobSpec], *,
        options: SubmitOptions | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> list[JobResult]:
        """Submit a batch and wait for every result, in order."""
        opts = resolve_options(
            options, {"priority": priority}, where="Client.map"
        )
        handles = [self.service.submit(s, options=opts) for s in specs]
        return [h.result(timeout=timeout) for h in handles]

    def cancel(self, spec_hash: str) -> bool:
        """Cancel an in-flight job by spec hash (see :meth:`JobService.cancel`)."""
        return self.service.cancel(spec_hash)

    def describe(self) -> dict[str, Any]:
        """The backing service's introspection snapshot."""
        return self.service.describe()

    def close(self, *, drain: bool = True) -> None:
        if self._own_service:
            self.service.close(drain=drain)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Client({self.service!r})"

"""Serve-layer settings: defaults, environment variables, overrides.

Seven knobs govern the job service, resolved with one documented
precedence chain (first hit wins):

1. explicit keyword arguments to :func:`repro.serve.connect` (or the
   deprecated direct :class:`~repro.serve.JobService` /
   :class:`~repro.serve.Client` constructors);
2. values set through :func:`repro.configure` (``max_concurrent_jobs=``,
   ``queue_capacity=``, ``cache_dir=``, ``serve_addr=``,
   ``serve_token=``, ``tenant=``, ``gateway_addr=``);
3. the ``REPRO_SERVE_MAX_CONCURRENT_JOBS`` /
   ``REPRO_SERVE_QUEUE_CAPACITY`` / ``REPRO_SERVE_CACHE_DIR`` /
   ``REPRO_SERVE_ADDR`` / ``REPRO_SERVE_TOKEN`` / ``REPRO_TENANT`` /
   ``REPRO_GATEWAY_ADDR`` environment variables;
4. the built-in defaults on :class:`ServeSettings`.

``addr`` is the distributed-tier switch: ``None`` (the default) means
in-process serving, a ``"host:port"`` string points ``connect()`` and
``repro-nbody serve submit`` at a running coordinator.  ``token`` is the
optional shared secret both the socket protocol and the HTTP gateway
check; ``tenant`` is the default fair-scheduling bucket submissions fall
into when a :class:`~repro.serve.SubmitOptions` names none;
``gateway_addr`` is where ``repro-nbody serve gateway`` listens.

Environment variables are read when settings are resolved (service
construction), not at import, so tests and subprocesses can adjust them
freely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "ServeSettings",
    "current_settings",
    "set_overrides",
    "clear_overrides",
]

#: Environment variable names, in ServeSettings field order.
ENV_MAX_CONCURRENT_JOBS = "REPRO_SERVE_MAX_CONCURRENT_JOBS"
ENV_QUEUE_CAPACITY = "REPRO_SERVE_QUEUE_CAPACITY"
ENV_CACHE_DIR = "REPRO_SERVE_CACHE_DIR"
ENV_ADDR = "REPRO_SERVE_ADDR"
ENV_TOKEN = "REPRO_SERVE_TOKEN"
ENV_TENANT = "REPRO_TENANT"
ENV_GATEWAY_ADDR = "REPRO_GATEWAY_ADDR"


@dataclass(frozen=True)
class ServeSettings:
    """Resolved serve-layer configuration.

    ``max_concurrent_jobs`` bounds how many sessions the scheduler keeps
    live at once (and, by default, its runner-thread count);
    ``queue_capacity`` bounds queued-but-not-live submissions before
    :class:`~repro.errors.AdmissionError` backpressure kicks in;
    ``cache_dir`` roots the content-addressed result cache; ``addr`` is
    the default coordinator address for :func:`repro.serve.connect`
    (``None`` = in-process).
    """

    max_concurrent_jobs: int = 2
    queue_capacity: int = 64
    cache_dir: str = ".repro_cache"
    addr: str | None = None
    token: str | None = None
    tenant: str | None = None
    gateway_addr: str | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent_jobs < 1:
            raise ConfigurationError(
                f"max_concurrent_jobs must be >= 1, got {self.max_concurrent_jobs}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not str(self.cache_dir):
            raise ConfigurationError("cache_dir must be a non-empty path")
        if self.tenant is not None and not self.tenant:
            raise ConfigurationError("tenant must be a non-empty string")


#: Values installed by ``repro.configure`` (precedence level 2).
_overrides: dict[str, object] = {}


def set_overrides(
    *,
    max_concurrent_jobs: int | None = None,
    queue_capacity: int | None = None,
    cache_dir: str | None = None,
    addr: str | None = None,
    token: str | None = None,
    tenant: str | None = None,
    gateway_addr: str | None = None,
) -> None:
    """Install ``repro.configure``-level overrides (``None`` = leave as-is)."""
    pairs = {
        "max_concurrent_jobs": max_concurrent_jobs,
        "queue_capacity": queue_capacity,
        "cache_dir": cache_dir,
        "addr": addr,
        "token": token,
        "tenant": tenant,
        "gateway_addr": gateway_addr,
    }
    staged = dict(_overrides)
    staged.update({k: v for k, v in pairs.items() if v is not None})
    # Validate before committing so a bad configure() leaves state intact.
    replace(ServeSettings(), **staged)  # type: ignore[arg-type]
    _overrides.update(staged)


def clear_overrides() -> None:
    """Drop all ``repro.configure``-level serve overrides (tests)."""
    _overrides.clear()


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def current_settings(
    *,
    max_concurrent_jobs: int | None = None,
    queue_capacity: int | None = None,
    cache_dir: str | None = None,
    addr: str | None = None,
    token: str | None = None,
    tenant: str | None = None,
    gateway_addr: str | None = None,
) -> ServeSettings:
    """Resolve settings: explicit args > configure() > env > defaults."""
    values: dict[str, object] = {}
    env_pairs = {
        "max_concurrent_jobs": _env_int(ENV_MAX_CONCURRENT_JOBS),
        "queue_capacity": _env_int(ENV_QUEUE_CAPACITY),
        "cache_dir": os.environ.get(ENV_CACHE_DIR) or None,
        "addr": os.environ.get(ENV_ADDR) or None,
        "token": os.environ.get(ENV_TOKEN) or None,
        "tenant": os.environ.get(ENV_TENANT) or None,
        "gateway_addr": os.environ.get(ENV_GATEWAY_ADDR) or None,
    }
    values.update({k: v for k, v in env_pairs.items() if v is not None})
    values.update(_overrides)
    explicit = {
        "max_concurrent_jobs": max_concurrent_jobs,
        "queue_capacity": queue_capacity,
        "cache_dir": cache_dir,
        "addr": addr,
        "token": token,
        "tenant": tenant,
        "gateway_addr": gateway_addr,
    }
    values.update({k: v for k, v in explicit.items() if v is not None})
    return replace(ServeSettings(), **values)  # type: ignore[arg-type]

"""Canonical job descriptions and content-addressed result identity.

A :class:`JobSpec` pins everything that determines a run's *physics*:
workload generator and seed, body count, plan (by registered name) and
plan configuration, time step, and the absolute step target.  Two specs
with equal :meth:`JobSpec.canonical` forms produce bit-identical final
states — force evaluation, the leapfrog integrator, and checkpointing
are all deterministic — so the sha256 of the canonical JSON
(:meth:`JobSpec.spec_hash`) is a safe content address for caching and
in-flight deduplication.

``checkpoint_every`` is deliberately *excluded* from the hash: it changes
how often intermediate state is persisted, never the final state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.bench.workloads import WORKLOADS, make_workload
from repro.core.plans.base import Plan, PlanConfig
from repro.core.plans.registry import available_plans, get_plan
from repro.core.simulation import Simulation
from repro.errors import ServeError
from repro.exec.engine import ExecutionEngine
from repro.runtime.checkpoint import plan_config_from_dict, plan_config_to_dict

__all__ = ["JobSpec"]


@dataclass(frozen=True)
class JobSpec:
    """Canonical, hashable description of one simulation job.

    ``plan`` accepts a registered plan name or a :class:`Plan` instance
    (normalised to ``(name, config)`` — the instance itself is not kept,
    so a spec never smuggles unhashable state); ``plan_config`` accepts a
    :class:`PlanConfig` or its dict form and is mutually exclusive with
    passing an instance.
    """

    workload: str = "plummer"
    n: int = 1024
    seed: int = 0
    plan: str | Plan = "jw"
    dt: float = 1e-3
    steps: int = 10
    plan_config: PlanConfig | dict[str, Any] | None = None
    #: persistence cadence only — excluded from the content hash
    checkpoint_every: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        plan = self.plan
        config = self.plan_config
        if isinstance(plan, Plan):
            if config is not None:
                raise ServeError(
                    "pass plan_config only with a plan *name*; a plan "
                    "instance already carries its configuration"
                )
            config = plan.config
            plan = plan.name
        if not isinstance(plan, str):
            raise ServeError(
                f"plan must be a registered name or Plan instance, "
                f"got {type(plan).__name__}"
            )
        if plan not in available_plans():
            raise ServeError(
                f"unknown plan '{plan}'; choose from {list(available_plans())}"
            )
        if isinstance(config, PlanConfig):
            config = plan_config_to_dict(config)
        elif config is None:
            config = plan_config_to_dict(PlanConfig())
        elif isinstance(config, dict):
            # Round-trip to validate and normalise field types/order.
            config = plan_config_to_dict(plan_config_from_dict(config))
        else:
            raise ServeError(
                f"plan_config must be a PlanConfig or dict, "
                f"got {type(config).__name__}"
            )
        if self.workload not in WORKLOADS:
            raise ServeError(
                f"unknown workload '{self.workload}'; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if self.n < 1:
            raise ServeError(f"n must be >= 1, got {self.n}")
        if self.steps < 1:
            raise ServeError(f"steps must be >= 1, got {self.steps}")
        if self.dt <= 0.0:
            raise ServeError(f"dt must be positive, got {self.dt}")
        if self.checkpoint_every < 0:
            raise ServeError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        object.__setattr__(self, "plan", plan)
        object.__setattr__(self, "plan_config", config)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical(self) -> dict[str, Any]:
        """The physics-determining fields, in canonical form.

        Floats serialise via ``repr`` (shortest round-trip), so equal
        float values — however they were written — hash identically.
        """
        return {
            "workload": self.workload,
            "n": int(self.n),
            "seed": int(self.seed),
            "plan": self.plan,
            "dt": float(self.dt),
            "steps": int(self.steps),
            "plan_config": dict(sorted(self.plan_config.items())),
        }

    def spec_hash(self) -> str:
        """sha256 of the canonical JSON — the content address."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (includes ``checkpoint_every``)."""
        return {**self.canonical(), "checkpoint_every": self.checkpoint_every}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        known = {
            "workload", "n", "seed", "plan", "dt", "steps",
            "plan_config", "checkpoint_every",
        }
        extra = set(data) - known
        if extra:
            raise ServeError(f"unknown JobSpec fields: {sorted(extra)}")
        return cls(**data)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def build_simulation(
        self, *, engine: ExecutionEngine | None = None
    ) -> Simulation:
        """Instantiate the described simulation (fresh ICs, fresh plan)."""
        particles = make_workload(self.workload, self.n, seed=self.seed)
        plan = get_plan(
            self.plan,
            plan_config_from_dict(self.plan_config),
            engine=engine,
        )
        return Simulation(particles, plan, dt=self.dt)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobSpec({self.workload} n={self.n} seed={self.seed} "
            f"plan={self.plan} dt={self.dt} steps={self.steps})"
        )

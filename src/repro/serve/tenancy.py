"""Multi-tenant fair scheduling: policies, quotas, and the fair queue.

The serve tier's answer to "millions of users, heavy traffic": submissions
carry a *tenant* label, and :class:`FairJobQueue` replaces the flat
priority heap with weighted fair scheduling across tenants so one tenant's
bulk sweep can never starve another tenant's interactive probe.

Three mechanisms compose:

**Stride scheduling across tenants.**  Each tenant accrues virtual time
(``pass``) as its jobs pop: ``pass += STRIDE_BASE / weight``.  The tenant
with the smallest pass value pops next, so a weight-4 tenant gets ~4x the
pop share of a weight-1 tenant under contention — and an idle tenant's
first job after a quiet spell starts at the current global virtual time
(not its stale pass), so it is scheduled promptly without earning
catch-up credit for time it wasn't queued.

**Priority aging within a tenant.**  Inside a tenant, higher ``priority``
pops first (FIFO on ties), but a queued entry gains +1 effective priority
every ``aging_every`` *pops* (not wall-clock — pop count is deterministic
for a fixed submission sequence), capped at ``age_max_boost``.  A
long-queued bulk job therefore eventually ties an interactive priority
and runs (FIFO breaks the tie in its favor once), but the cap means it
can never permanently outrank fresh interactive work.

**Quotas.**  ``TenantPolicy.max_queued`` bounds a tenant's queue
residency; breaching it raises :class:`~repro.errors.QuotaError` (a
subclass of :class:`~repro.errors.AdmissionError`, so existing
backpressure handling — CLI exit 3, gateway 429 — applies unchanged).
Global ``capacity`` still raises plain ``AdmissionError``.
``max_inflight`` is enforced by :class:`~repro.serve.JobService`
(admitted-but-unfinished jobs), not here — the queue only sees the
queued leg.

All decisions depend only on the submission/pop sequence, never the
clock, preserving the repo-wide determinism gate.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import AdmissionError, QuotaError, ServeError

__all__ = ["TenantPolicy", "FairJobQueue", "DEFAULT_TENANT"]

#: Tenant bucket used when a submission names none.
DEFAULT_TENANT = "default"

#: Stride numerator; pass += STRIDE_BASE / weight per pop.  Large so
#: integer-ish weights produce well-separated float strides.
STRIDE_BASE = 1 << 16


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling weight and admission quotas.

    ``weight`` — share of pops under contention, relative to other
    tenants (weight 4 vs 1 → ~4:1 pop ratio).  ``max_queued`` /
    ``max_inflight`` — ``None`` means unbounded.
    """

    weight: float = 1.0
    max_queued: int | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if not (self.weight > 0):
            raise ServeError(f"tenant weight must be > 0, got {self.weight}")
        for name in ("max_queued", "max_inflight"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ServeError(f"tenant {name} must be >= 1, got {value}")


def coerce_policies(
    tenants: Mapping[str, TenantPolicy | Mapping[str, Any]] | None,
) -> dict[str, TenantPolicy]:
    """Normalize a ``{tenant: policy-or-dict}`` mapping (CLI/JSON friendly)."""
    out: dict[str, TenantPolicy] = {}
    for name, policy in (tenants or {}).items():
        if isinstance(policy, TenantPolicy):
            out[name] = policy
        elif isinstance(policy, Mapping):
            try:
                out[name] = TenantPolicy(**dict(policy))
            except TypeError as exc:
                raise ServeError(f"bad policy for tenant {name!r}: {exc}") from None
        else:
            raise ServeError(
                f"tenant policy for {name!r} must be a TenantPolicy or mapping, "
                f"got {type(policy).__name__}"
            )
    return out


class _Entry:
    """One queued item with the bookkeeping aging needs."""

    __slots__ = ("priority", "seq", "enq_tick", "tenant", "item")

    def __init__(self, priority: int, seq: int, enq_tick: int, tenant: str, item: Any):
        self.priority = priority
        self.seq = seq
        self.enq_tick = enq_tick
        self.tenant = tenant
        self.item = item


class FairJobQueue:
    """Bounded multi-tenant queue: weighted fair across tenants, aged
    priority within one.

    Drop-in replacement for :class:`~repro.serve.JobQueue` (same
    ``push``/``pop``/``close``/``len``/counters surface) plus the tenant
    dimension.  With a single tenant and no aging pressure it degrades to
    exactly the old strict-priority/FIFO order.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        tenants: Mapping[str, TenantPolicy | Mapping[str, Any]] | None = None,
        default_policy: TenantPolicy | None = None,
        aging_every: int = 8,
        age_max_boost: int = 8,
    ) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        if aging_every < 1:
            raise ServeError(f"aging_every must be >= 1, got {aging_every}")
        if age_max_boost < 0:
            raise ServeError(f"age_max_boost must be >= 0, got {age_max_boost}")
        self.capacity = capacity
        self.aging_every = aging_every
        self.age_max_boost = age_max_boost
        self._policies = coerce_policies(tenants)
        self._default_policy = default_policy or TenantPolicy()
        self._pending: dict[str, list[_Entry]] = {}
        self._pass: dict[str, float] = {}
        self._vtime = 0.0
        self._tick = 0  # pops so far; the deterministic clock for aging
        self._size = 0
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False
        #: total accepted / rejected submissions (observability)
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self._default_policy)

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            self._policies[tenant] = policy

    @property
    def policies(self) -> dict[str, TenantPolicy]:
        return dict(self._policies)

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depth_by_tenant(self) -> dict[str, int]:
        with self._lock:
            return {t: len(q) for t, q in self._pending.items() if q}

    # ------------------------------------------------------------------
    def push(
        self,
        item: Any,
        *,
        priority: int = 0,
        tenant: str = DEFAULT_TENANT,
        force: bool = False,
    ) -> None:
        """Enqueue ``item`` under ``tenant``.

        Raises :class:`QuotaError` when the tenant's ``max_queued`` is
        reached, :class:`AdmissionError` at global capacity, and
        :class:`ServeError` after :meth:`close`.  ``force=True`` skips
        the capacity and quota checks — the coordinator's requeue path
        uses it so a lost worker's claims are never shed on their way
        back into the queue.
        """
        with self._nonempty:
            if self._closed:
                raise ServeError("queue is closed")
            policy = self.policy_for(tenant)
            bucket = self._pending.get(tenant)
            depth = len(bucket) if bucket is not None else 0
            if not force:
                if policy.max_queued is not None and depth >= policy.max_queued:
                    self.rejected += 1
                    raise QuotaError(
                        f"tenant {tenant!r} at max_queued ({policy.max_queued} "
                        "pending jobs); retry after the scheduler drains",
                        tenant=tenant,
                    )
                if self._size >= self.capacity:
                    self.rejected += 1
                    raise AdmissionError(
                        f"queue is full ({self.capacity} pending jobs); "
                        "retry after the scheduler drains or raise "
                        "queue_capacity"
                    )
            if bucket is None:
                bucket = self._pending[tenant] = []
            if not bucket:
                # Empty -> nonempty: start at current virtual time so an
                # idle tenant neither banks credit nor owes debt.
                self._pass[tenant] = max(self._pass.get(tenant, 0.0), self._vtime)
            bucket.append(
                _Entry(priority, next(self._seq), self._tick, tenant, item)
            )
            self._size += 1
            self.accepted += 1
            self._nonempty.notify()

    # ------------------------------------------------------------------
    def _effective_priority(self, entry: _Entry) -> int:
        boost = (self._tick - entry.enq_tick) // self.aging_every
        return entry.priority + min(self.age_max_boost, boost)

    def _select_locked(self) -> _Entry:
        """Pick and remove the next entry (caller holds the lock, size > 0)."""
        # Stride step 1: tenant with the smallest pass value wins; ties
        # break on tenant name for determinism.
        tenant = min(
            (t for t, q in self._pending.items() if q),
            key=lambda t: (self._pass.get(t, 0.0), t),
        )
        self._vtime = self._pass.get(tenant, 0.0)
        policy = self.policy_for(tenant)
        self._pass[tenant] = self._vtime + STRIDE_BASE / policy.weight
        # Step 2: within the tenant, max aged priority, FIFO on ties.
        bucket = self._pending[tenant]
        best = max(bucket, key=lambda e: (self._effective_priority(e), -e.seq))
        bucket.remove(best)
        self._size -= 1
        self._tick += 1
        return best

    def pop(self, timeout: float | None = None) -> Any | None:
        """Dequeue per the fair policy, blocking up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed and empty.
        """
        entry = self.pop_entry(timeout)
        return None if entry is None else entry.item

    def pop_entry(self, timeout: float | None = None) -> _Entry | None:
        """Like :meth:`pop` but returns the entry (exposes ``tenant``)."""
        with self._nonempty:
            while not self._size:
                if self._closed:
                    return None
                if not self._nonempty.wait(timeout=timeout):
                    return None
            return self._select_locked()

    def pop_nowait(self) -> _Entry | None:
        """Non-blocking :meth:`pop_entry`; ``None`` when empty."""
        with self._lock:
            if not self._size:
                return None
            return self._select_locked()

    # ------------------------------------------------------------------
    def remove(self, predicate: Callable[[Any], bool]) -> list[Any]:
        """Remove and return every queued item matching ``predicate``.

        The cancellation seam: a queued job can be plucked out without
        disturbing the fair-scheduling state of its neighbors.
        """
        removed: list[Any] = []
        with self._lock:
            for tenant, bucket in self._pending.items():
                keep: list[_Entry] = []
                for entry in bucket:
                    if predicate(entry.item):
                        removed.append(entry.item)
                        self._size -= 1
                    else:
                        keep.append(entry)
                self._pending[tenant] = keep
        return removed

    def items(self) -> Iterable[Any]:
        """Snapshot of queued items (diagnostics; no scheduling effect)."""
        with self._lock:
            return [e.item for bucket in self._pending.values() for e in bucket]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further pushes and wake every blocked :meth:`pop`."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FairJobQueue(pending={self._size}, capacity={self.capacity}, "
            f"tenants={sorted(self._policies)}, closed={self._closed})"
        )

"""Wire protocol for the distributed serve tier: framing + error codec.

Everything the coordinator, workers, and remote clients exchange is a
single JSON object per message, framed with a 4-byte big-endian length
prefix.  JSON keeps the protocol debuggable (``nc`` + eyeballs) and the
payloads are tiny — specs, hashes, status snapshots — so framing
overhead is irrelevant next to a force pass.

Three independent pieces:

* :func:`send_msg` / :func:`recv_msg` — length-prefixed JSON over a
  connected socket.  ``recv_msg`` returns ``None`` on a clean EOF at a
  message boundary (the peer closed), and raises
  :class:`~repro.errors.ServeError` on a truncated or oversized frame.
* :func:`parse_addr` / :func:`format_addr` — ``"host:port"`` string
  address form used by ``connect()``, the CLI, and ``REPRO_SERVE_ADDR``.
* :func:`encode_error` / :func:`decode_error` — exceptions cross the
  wire as ``{"error": <class name>, "message": <str>}`` and are
  reconstructed client-side as the *same* :mod:`repro.errors` class, so
  a remote :class:`~repro.errors.AdmissionError` is catchable exactly
  like an in-process one.  Unknown classes degrade to
  :class:`~repro.errors.ServeError` with the original name preserved in
  the message.
"""

from __future__ import annotations

import inspect
import json
import socket
import struct
from typing import Any

from repro import errors as _errors
from repro.errors import ReproError, ServeError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "decode_error",
    "encode_error",
    "format_addr",
    "parse_addr",
    "recv_msg",
    "send_msg",
]

#: Upper bound on one frame — far above any spec/status payload, so a
#: hit means a corrupt or hostile peer, not a big job.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def send_msg(sock: socket.socket, obj: dict[str, Any]) -> None:
    """Send one JSON message with a length prefix."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ServeError(
            f"refusing to send a {len(payload)}-byte message "
            f"(limit {MAX_MESSAGE_BYTES})"
        )
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if got == 0:
                return None
            raise ServeError(
                f"connection closed mid-message ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one JSON message; ``None`` on clean EOF between messages."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ServeError(
            f"peer announced a {length}-byte message (limit {MAX_MESSAGE_BYTES})"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ServeError("connection closed between header and payload")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed wire message: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServeError(
            f"wire messages must be JSON objects, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------------
# addresses
# ---------------------------------------------------------------------------

def parse_addr(addr: str) -> tuple[str, int]:
    """Split a ``"host:port"`` address string; raises :class:`ServeError`."""
    if not isinstance(addr, str) or ":" not in addr:
        raise ServeError(
            f"serve address must look like 'host:port', got {addr!r}"
        )
    host, _, port_text = addr.rpartition(":")
    if not host:
        raise ServeError(
            f"serve address must name a host, got {addr!r} "
            "(use 127.0.0.1:PORT for localhost)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServeError(
            f"serve address port must be an integer, got {addr!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ServeError(f"serve address port out of range: {addr!r}")
    return host, port


def format_addr(addr: tuple[str, int]) -> str:
    """The ``"host:port"`` form of a ``(host, port)`` pair."""
    return f"{addr[0]}:{addr[1]}"


# ---------------------------------------------------------------------------
# error codec
# ---------------------------------------------------------------------------

def _error_registry() -> dict[str, type[ReproError]]:
    return {
        name: cls
        for name, cls in inspect.getmembers(_errors, inspect.isclass)
        if issubclass(cls, ReproError)
    }


def encode_error(exc: BaseException) -> dict[str, str]:
    """The wire form of an exception: class name + message."""
    return {"error": type(exc).__name__, "message": str(exc)}


def decode_error(payload: dict[str, Any]) -> ReproError:
    """Rebuild the library exception a peer reported.

    The class is looked up in :mod:`repro.errors`; anything unknown
    (including arbitrary exceptions a job raised) becomes a
    :class:`ServeError` whose message preserves the original class name.
    """
    name = str(payload.get("error", "ServeError"))
    message = str(payload.get("message", ""))
    cls = _error_registry().get(name)
    if cls is None:
        return ServeError(f"{name}: {message}" if message else name)
    return cls(message)

"""A worker shard: one in-process job service fed from a coordinator.

Each worker wraps today's :class:`~repro.serve.JobService` — scheduler,
engine pool, retry/fallback machinery, result cache, ledger — and adds a
thin pull loop: ask the coordinator for the ``next`` job whenever local
capacity allows, submit it to the service, report ``done`` (or the
failure) when the handle resolves.  A worker *is* the fault domain: its
pool, its retries, its ledger rows (stamped with its ``shard`` name).

Workers share the coordinator's cache directory over a shared
filesystem.  That makes three things fall out for free:

* results travel as run-directory paths, never as serialized arrays;
* a spec completed by any shard is a cache hit for every other shard;
* a shard killed mid-run leaves an orphaned entry that the *next* shard
  assigned the job adopts via ``resume_orphans`` — continuing from the
  orphan's last checkpoint, bit-identical to an uninterrupted run.

Two ways down: :meth:`Worker.stop` drains gracefully (finish claimed
jobs, report them, disconnect); :meth:`Worker.kill` simulates a crash —
abort the scheduler mid-run and drop the socket without reporting, so
the coordinator requeues the claimed jobs for the surviving shards (the
fault path the distributed tests exercise).
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import ServeError
from repro.serve.options import SubmitOptions
from repro.serve.service import JobHandle, JobService, _internal_construction
from repro.serve.settings import current_settings
from repro.serve.spec import JobSpec
from repro.serve.wire import encode_error, parse_addr, recv_msg, send_msg

__all__ = ["Worker"]

#: How long one ``next`` RPC parks on the coordinator before returning
#: empty-handed (bounds shutdown latency; the loop just asks again).
_NEXT_TIMEOUT_S = 0.5
#: Local poll cadence while watching outstanding handles.
_POLL_S = 0.02


class Worker:
    """Pulls jobs from a coordinator into a local :class:`JobService`.

    Parameters
    ----------
    addr:
        The coordinator's ``"host:port"``.
    shard:
        This worker's fault-domain name; stamped on its ledger rows and
        reported to the coordinator.
    cache_dir:
        Result-cache root — must be the same directory the coordinator
        and the other shards use.
    max_idle_s:
        Self-exit after this long with no work claimed and none offered
        (CI workers use it to wind down after the batch drains); ``None``
        keeps the worker alive until :meth:`stop`.
    token:
        Shared secret for a token-protected coordinator; resolves
        through ``configure(serve_token=)`` / ``REPRO_SERVE_TOKEN`` when
        omitted.
    service_kwargs:
        Everything else (``max_concurrent_jobs``, ``pool_workers``,
        ``verify``, ``ledger``, ...) configures the internal
        :class:`JobService`.
    """

    def __init__(
        self,
        addr: str,
        shard: str,
        *,
        cache_dir: str | Path | None = None,
        max_idle_s: float | None = None,
        token: str | None = None,
        **service_kwargs: Any,
    ) -> None:
        self.addr = addr
        self.shard = shard
        self.max_idle_s = max_idle_s
        self._token = current_settings(token=token).token
        with _internal_construction():
            self.service = JobService(
                shard=shard,
                resume_orphans=True,
                cache_dir=cache_dir,
                **service_kwargs,
            )
        self._prefetch = max(1, self.service.settings.max_concurrent_jobs)
        self._sock: socket.socket | None = None
        self._stop = threading.Event()
        self._killed = False
        self._thread: threading.Thread | None = None
        #: spec_hash -> (handle, spec) claimed from the coordinator
        self._outstanding: dict[str, tuple[JobHandle, JobSpec]] = {}
        self.jobs_done = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Worker":
        """Connect and pull in a background thread; returns ``self``."""
        if self._thread is None:
            self._connect()
            self._thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{self.shard}",
                daemon=True,
            )
            self._thread.start()
        return self

    def run(self) -> None:
        """Connect and pull on the calling thread until stopped.

        The blocking form the ``repro-nbody serve worker`` command uses;
        tears the service down when the loop exits (idle timeout or
        coordinator shutdown).
        """
        self._connect()
        try:
            self._loop()
        finally:
            if not self._killed:
                self._disconnect()
                self.service.close(drain=True)

    def stop(self) -> None:
        """Graceful shutdown: finish claimed jobs, report, disconnect."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._drain_outstanding()
        self._disconnect()
        self.service.close(drain=True)

    def kill(self) -> None:
        """Crash simulation: abandon claimed jobs without reporting.

        The scheduler aborts after its current slices (leaving resumable
        orphans in the shared cache) and the socket drops without a
        goodbye, so the coordinator requeues everything this worker had
        claimed.
        """
        self._killed = True
        self._stop.set()
        # Abort local execution first so no thread is still writing into
        # an orphan directory when a surviving shard adopts it.
        self.service.close(drain=False)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._outstanding.clear()
        self._disconnect()

    def __enter__(self) -> "Worker":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # socket plumbing (single-threaded: only the pull loop touches it)
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        host, port = parse_addr(self.addr)
        sock = socket.create_connection((host, port), timeout=30.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        reply = self._rpc({"op": "hello", "shard": self.shard})
        if not reply.get("ok"):
            raise ServeError(f"coordinator refused hello: {reply}")

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _rpc(self, msg: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            raise ServeError("worker is not connected")
        if self._token is not None:
            msg = {**msg, "token": self._token}
        send_msg(self._sock, msg)
        reply = recv_msg(self._sock)
        if reply is None:
            raise ServeError("coordinator closed the connection")
        return reply

    # ------------------------------------------------------------------
    # pull loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        idle_since = time.monotonic()
        try:
            while not self._stop.is_set():
                progressed = self._report_finished()
                if len(self._outstanding) < self._prefetch:
                    if self._claim_next():
                        progressed = True
                else:
                    time.sleep(_POLL_S)
                if progressed or self._outstanding:
                    idle_since = time.monotonic()
                elif (
                    self.max_idle_s is not None
                    and time.monotonic() - idle_since >= self.max_idle_s
                ):
                    obs.inc("serve.worker.idle_exits_total")
                    break
        except (ServeError, OSError):
            # Coordinator gone (stopped or crashed): nothing to report to.
            pass
        finally:
            if not self._killed:
                try:
                    self._drain_outstanding()
                except (ServeError, OSError):
                    pass

    def _claim_next(self) -> bool:
        reply = self._rpc(
            {"op": "next", "shard": self.shard, "timeout": _NEXT_TIMEOUT_S}
        )
        if not reply.get("ok"):
            raise ServeError(f"next rejected: {reply}")
        payload = reply.get("job")
        if payload is None:
            return False
        spec = JobSpec.from_dict(payload["spec"])
        wire_options = payload.get("options")
        options = (
            None if wire_options is None
            else SubmitOptions.from_wire(wire_options)
        )
        handle = self.service.submit(spec, options=options)
        self._outstanding[payload["spec_hash"]] = (handle, spec)
        obs.inc("serve.worker.claims_total")
        return True

    def _report_finished(self) -> bool:
        reported = False
        for spec_hash in list(self._outstanding):
            handle, _spec = self._outstanding[spec_hash]
            if not handle.done():
                continue
            self._report(spec_hash, handle)
            del self._outstanding[spec_hash]
            reported = True
        return reported

    def _report(self, spec_hash: str, handle: JobHandle) -> None:
        if handle.error is not None:
            self.jobs_failed += 1
            msg: dict[str, Any] = {
                "op": "done",
                "spec_hash": spec_hash,
                "error": encode_error(handle.error),
            }
        else:
            result = handle.result(timeout=0)
            self.jobs_done += 1
            msg = {
                "op": "done",
                "spec_hash": spec_hash,
                "run_dir": str(result.run_dir),
                "from_cache": result.from_cache,
            }
        reply = self._rpc(msg)
        if not reply.get("ok"):
            raise ServeError(f"done rejected: {reply}")

    def _drain_outstanding(self) -> None:
        """Finish and report every claimed job (graceful stop path)."""
        for spec_hash in list(self._outstanding):
            handle, _spec = self._outstanding.pop(spec_hash)
            handle.wait(timeout=None)
            self._report(spec_hash, handle)

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "addr": self.addr,
            "outstanding": len(self._outstanding),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "service": self.service.describe(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Worker(shard={self.shard!r}, addr={self.addr!r}, "
            f"outstanding={len(self._outstanding)})"
        )

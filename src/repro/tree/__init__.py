"""Barnes-Hut treecode substrate.

Morton keys → octree → multipole acceptance → traversal / walk generation
→ list-based force evaluation.  The w-parallel and jw-parallel GPU plans
consume the :class:`~repro.tree.walks.WalkSet` produced here.
"""

from repro.tree.morton import MAX_DEPTH, decode, encode, grid_coordinates, key_octant
from repro.tree.octree import Octree, build_octree
from repro.tree.mac import GroupMAC, PointMAC, SizeLimitedMAC, aabb_distance
from repro.tree.traversal import TraversalStats, bh_accelerations
from repro.tree.walks import (
    Walk,
    WalkSet,
    cell_groups,
    generate_walks,
    make_groups,
    uniform_groups,
)
from repro.tree.quadrupole import bh_accelerations_quadrupole, quadrupole_moments
from repro.tree.bh_force import (
    accelerations_from_walks,
    max_relative_error,
    rms_relative_error,
    walk_sources,
)

__all__ = [
    "MAX_DEPTH",
    "decode",
    "encode",
    "grid_coordinates",
    "key_octant",
    "Octree",
    "build_octree",
    "GroupMAC",
    "PointMAC",
    "SizeLimitedMAC",
    "aabb_distance",
    "TraversalStats",
    "bh_accelerations",
    "bh_accelerations_quadrupole",
    "quadrupole_moments",
    "Walk",
    "WalkSet",
    "generate_walks",
    "make_groups",
    "cell_groups",
    "uniform_groups",
    "accelerations_from_walks",
    "max_relative_error",
    "rms_relative_error",
    "walk_sources",
]

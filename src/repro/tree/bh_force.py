"""Force evaluation from walk interaction lists, and accuracy metrics.

:func:`accelerations_from_walks` is the CPU-side ground truth for what the
w-parallel / jw-parallel device kernels compute: for each walk, a dense
``group x (cells + particles)`` particle-particle evaluation using the
shared physics kernel :func:`repro.nbody.forces.accelerations_from_sources`.
The simulated GPU kernels are validated against this function exactly
(same lists, same arithmetic, float32 vs float64 tolerance), separating
"did the plan compute the right thing" from "is Barnes-Hut accurate".
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nbody.forces import accelerations_from_sources
from repro.tree.octree import Octree
from repro.tree.walks import Walk, WalkSet

__all__ = [
    "walk_sources",
    "accelerations_from_walks",
    "rms_relative_error",
    "max_relative_error",
]


def walk_sources(tree: Octree, walk: Walk) -> tuple[np.ndarray, np.ndarray]:
    """The dense source array of one walk: cell monopoles then leaf bodies.

    Returns ``(src_pos (L, 3), src_mass (L,))`` with
    ``L == walk.list_length``.
    """
    cl = walk.cell_list
    pl = walk.particle_list
    src_pos = np.concatenate([tree.coms[cl], tree.positions[pl]])
    src_mass = np.concatenate([tree.node_masses[cl], tree.masses[pl]])
    return src_pos, src_mass


def accelerations_from_walks(
    walks: WalkSet,
    *,
    softening: float = 0.0,
    G: float = 1.0,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Accelerations of all bodies from their walks, in **original** body order.

    Walks must cover every body exactly once (which
    :func:`repro.tree.walks.generate_walks` guarantees).
    """
    tree = walks.tree
    acc_sorted = np.full((tree.n_bodies, 3), np.nan, dtype=np.float64)
    with obs.span(
        "bh_force.walk_eval", n=tree.n_bodies, n_walks=len(walks)
    ) as sp:
        for w in walks:
            src_pos, src_mass = walk_sources(tree, w)
            acc_sorted[w.start : w.end] = accelerations_from_sources(
                tree.positions[w.start : w.end],
                src_pos,
                src_mass,
                softening=softening,
                G=G,
                dtype=dtype,
            )
        sp.set(interactions=walks.total_interactions)
    if np.isnan(acc_sorted).any():
        raise ValueError("walks do not cover every body")
    return tree.unsort(acc_sorted)


def rms_relative_error(acc: np.ndarray, ref: np.ndarray) -> float:
    """RMS of per-body relative force error ``|a - a_ref| / |a_ref|``.

    The standard treecode accuracy metric (the paper quotes ~1% for BH at
    typical theta).
    """
    acc = np.asarray(acc, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if acc.shape != ref.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ref.shape}")
    num = np.linalg.norm(acc - ref, axis=1)
    den = np.linalg.norm(ref, axis=1)
    if np.any(den == 0.0):
        raise ValueError("reference contains zero-force bodies")
    return float(np.sqrt(np.mean((num / den) ** 2)))


def max_relative_error(acc: np.ndarray, ref: np.ndarray) -> float:
    """Worst per-body relative force error."""
    acc = np.asarray(acc, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if acc.shape != ref.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ref.shape}")
    num = np.linalg.norm(acc - ref, axis=1)
    den = np.linalg.norm(ref, axis=1)
    if np.any(den == 0.0):
        raise ValueError("reference contains zero-force bodies")
    return float(np.max(num / den))

"""Force evaluation from walk interaction lists, and accuracy metrics.

:func:`accelerations_from_walks` is the CPU-side ground truth for what the
w-parallel / jw-parallel device kernels compute: for each walk, a dense
``group x (cells + particles)`` particle-particle evaluation using the
shared physics kernel :func:`repro.nbody.forces.accelerations_from_sources`.
The simulated GPU kernels are validated against this function exactly
(same lists, same arithmetic, float32 vs float64 tolerance), separating
"did the plan compute the right thing" from "is Barnes-Hut accurate".
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro import obs
from repro.exec.engine import ExecutionEngine, get_default_engine
from repro.exec.workspace import Workspace
from repro.nbody.forces import accelerations_from_sources
from repro.tree.octree import Octree
from repro.tree.walks import Walk, WalkSet

__all__ = [
    "walk_sources",
    "accelerations_from_walks",
    "rms_relative_error",
    "max_relative_error",
]


def walk_sources(
    tree: Octree, walk: Walk, *, workspace: Workspace | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The dense source array of one walk: cell monopoles then leaf bodies.

    Returns ``(src_pos (L, 3), src_mass (L,))`` with
    ``L == walk.list_length``.  With a ``workspace``, the arrays are views
    into reused scratch buffers (valid until the next call with the same
    workspace) instead of fresh concatenations.
    """
    cl = walk.cell_list
    pl = walk.particle_list
    if workspace is None:
        src_pos = np.concatenate([tree.coms[cl], tree.positions[pl]])
        src_mass = np.concatenate([tree.node_masses[cl], tree.masses[pl]])
        return src_pos, src_mass
    nc = int(cl.size)
    length = nc + int(pl.size)
    src_pos = workspace.take("walk.src_pos", (length, 3), tree.positions.dtype)
    src_mass = workspace.take("walk.src_mass", (length,), tree.masses.dtype)
    src_pos[:nc] = tree.coms[cl]
    src_pos[nc:] = tree.positions[pl]
    src_mass[:nc] = tree.node_masses[cl]
    src_mass[nc:] = tree.masses[pl]
    return src_pos, src_mass


def _walk_task(
    index: int,
    *,
    walks: WalkSet,
    softening: float,
    G: float,
    dtype: np.dtype | type,
    backend: str | None = None,
) -> np.ndarray:
    """Evaluate one walk's group block (runs on an engine worker)."""
    tree = walks.tree
    w = walks[index]
    from repro.exec.workspace import local_workspace

    ws = local_workspace()
    src_pos, src_mass = walk_sources(tree, w, workspace=ws)
    return accelerations_from_sources(
        tree.positions[w.start : w.end],
        src_pos,
        src_mass,
        softening=softening,
        G=G,
        dtype=dtype,
        workspace=ws,
        backend=backend,
    )


def accelerations_from_walks(
    walks: WalkSet,
    *,
    softening: float = 0.0,
    G: float = 1.0,
    dtype: np.dtype | type = np.float64,
    engine: ExecutionEngine | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Accelerations of all bodies from their walks, in **original** body order.

    Walks must cover every body exactly once (which
    :func:`repro.tree.walks.generate_walks` guarantees).  Walk evaluation
    fans out across ``engine`` (default: the process-global engine); walk
    blocks are written back in fixed walk order, so the result is
    bit-identical for every engine backend and worker count (within one
    *kernel* backend — ``backend`` selects it, resolved here once so
    fallback happens in the parent, and passed to workers by name).
    """
    tree = walks.tree
    eng = engine if engine is not None else get_default_engine()
    from repro.nbody.kernels import resolve_backend

    kernel_backend = resolve_backend(backend).name
    acc_sorted = np.full((tree.n_bodies, 3), np.nan, dtype=np.float64)
    with obs.span(
        "bh_force.walk_eval", n=tree.n_bodies, n_walks=len(walks)
    ) as sp:
        task = partial(
            _walk_task, walks=walks, softening=softening, G=G, dtype=dtype,
            backend=kernel_backend,
        )
        blocks = eng.map(task, range(len(walks)), label="bh.walk")
        for w, block in zip(walks, blocks):
            acc_sorted[w.start : w.end] = block
        sp.set(interactions=walks.total_interactions)
    if np.isnan(acc_sorted).any():
        raise ValueError("walks do not cover every body")
    return tree.unsort(acc_sorted)


def rms_relative_error(acc: np.ndarray, ref: np.ndarray) -> float:
    """RMS of per-body relative force error ``|a - a_ref| / |a_ref|``.

    The standard treecode accuracy metric (the paper quotes ~1% for BH at
    typical theta).
    """
    acc = np.asarray(acc, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if acc.shape != ref.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ref.shape}")
    num = np.linalg.norm(acc - ref, axis=1)
    den = np.linalg.norm(ref, axis=1)
    if np.any(den == 0.0):
        raise ValueError("reference contains zero-force bodies")
    return float(np.sqrt(np.mean((num / den) ** 2)))


def max_relative_error(acc: np.ndarray, ref: np.ndarray) -> float:
    """Worst per-body relative force error."""
    acc = np.asarray(acc, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if acc.shape != ref.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {ref.shape}")
    num = np.linalg.norm(acc - ref, axis=1)
    den = np.linalg.norm(ref, axis=1)
    if np.any(den == 0.0):
        raise ValueError("reference contains zero-force bodies")
    return float(np.max(num / den))

"""Multipole acceptance criteria (MAC).

The paper uses the classic Barnes-Hut geometric criterion: a cell of side
length ``l`` at distance ``D`` may be replaced by its monopole when

    l / D < theta

(section 2.2, eq. (3) context).  Two operational variants are needed:

* :class:`PointMAC` — per-target-body distances (the reference
  traversal).
* :class:`GroupMAC` — the multiple-walk variant (Hamada et al. 2009, the
  w/jw plans): one acceptance decision per *group* of bodies, using the
  minimum distance from the group's bounding box to the cell's centre of
  mass.  Because every body in the group is at least that far away, group
  acceptance is conservative: whenever the group accepts a cell, each
  member body would have accepted it individually.

An absolute-size extension (:class:`SizeLimitedMAC`) is provided as the
ablation knob for accuracy studies beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PointMAC", "GroupMAC", "SizeLimitedMAC", "aabb_distance"]

#: Guard distance so a zero-distance cell is never accepted.
_TINY = 1e-300


def aabb_distance(lo: np.ndarray, hi: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distance from points to the axis-aligned box ``[lo, hi]``.

    Zero for points inside the box.  ``points`` may be ``(3,)`` or ``(k, 3)``.
    """
    points = np.asarray(points, dtype=np.float64)
    d = np.maximum(np.maximum(lo - points, 0.0), points - hi)
    if points.ndim == 1:
        return float(np.sqrt(d @ d))
    return np.sqrt(np.einsum("ij,ij->i", d, d))


@dataclass(frozen=True)
class PointMAC:
    """Classic per-body Barnes-Hut criterion ``l / |x - com| < theta``."""

    theta: float = 0.6

    def __post_init__(self) -> None:
        if self.theta <= 0.0:
            raise ValueError(f"theta must be positive, got {self.theta}")

    def accept(self, sizes: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Vectorised acceptance mask for cells of ``sizes`` at ``distances``."""
        return np.asarray(sizes) < self.theta * np.maximum(np.asarray(distances), _TINY)


@dataclass(frozen=True)
class GroupMAC:
    """Group (multiple-walk) criterion using box-to-COM minimum distance.

    A cell is accepted for a whole group when ``l < theta * D_min`` where
    ``D_min`` is the distance from the group's bounding box to the cell's
    centre of mass.  Cells whose body range overlaps the group's own body
    range are never accepted (they contain group members, so a monopole
    would introduce a self-force) — the traversal handles that with
    :meth:`never_accept_overlap` semantics.
    """

    theta: float = 0.6

    def __post_init__(self) -> None:
        if self.theta <= 0.0:
            raise ValueError(f"theta must be positive, got {self.theta}")

    def accept(
        self,
        sizes: np.ndarray,
        box_lo: np.ndarray,
        box_hi: np.ndarray,
        coms: np.ndarray,
    ) -> np.ndarray:
        """Acceptance mask for cells (``sizes``, ``coms``) vs the group box."""
        d = aabb_distance(box_lo, box_hi, coms)
        return np.asarray(sizes) < self.theta * np.maximum(d, _TINY)


@dataclass(frozen=True)
class SizeLimitedMAC:
    """BH criterion with an additional absolute cell-size cap (ablation knob).

    Accept when ``l / D < theta`` **and** ``l < max_size``; forcing small
    maximum cell sizes trades accuracy for longer interaction lists, which
    stresses the plans' load-balancing differently from varying theta.
    """

    theta: float = 0.6
    max_size: float = np.inf

    def __post_init__(self) -> None:
        if self.theta <= 0.0:
            raise ValueError(f"theta must be positive, got {self.theta}")
        if self.max_size <= 0.0:
            raise ValueError(f"max_size must be positive, got {self.max_size}")

    def accept(self, sizes: np.ndarray, distances: np.ndarray) -> np.ndarray:
        sizes = np.asarray(sizes)
        base = sizes < self.theta * np.maximum(np.asarray(distances), _TINY)
        return base & (sizes < self.max_size)

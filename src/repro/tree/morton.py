"""Vectorised 3-D Morton (Z-order) keys.

The octree build sorts bodies by Morton key so that every octree node
covers a *contiguous* range of the sorted body array — the property the
walk generator exploits to form spatially-coherent groups, and the reason
GPU treecodes (Hamada et al.) use the same ordering.

Keys interleave 21 bits per dimension into a 63-bit integer
(``MAX_DEPTH = 21`` octree levels).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MAX_DEPTH", "KEY_BITS", "encode", "decode", "grid_coordinates", "key_octant"]

#: Octree levels representable by one key (bits per dimension).
MAX_DEPTH = 21

#: Total key width in bits.
KEY_BITS = 3 * MAX_DEPTH

_GRID = np.uint64(1) << np.uint64(MAX_DEPTH)  # 2**21 cells per dimension


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each uint64 so consecutive bits land 3 apart.

    Standard magic-number bit interleaving extended to 21 bits.
    """
    x = v.astype(np.uint64)
    x &= np.uint64(0x1FFFFF)  # keep 21 bits
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = v.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def grid_coordinates(
    positions: np.ndarray, center: np.ndarray, half_width: float
) -> np.ndarray:
    """Integer grid coordinates of positions inside the bounding cube.

    Maps the cube ``[center - h, center + h]^3`` onto the ``2^21``-cell
    grid, clipping boundary round-off into range.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if half_width <= 0.0:
        raise ValueError(f"half_width must be positive, got {half_width}")
    rel = (positions - np.asarray(center)) / (2.0 * half_width) + 0.5
    cells = np.floor(rel * float(_GRID)).astype(np.int64)
    np.clip(cells, 0, int(_GRID) - 1, out=cells)
    return cells.astype(np.uint64)


def encode(positions: np.ndarray, center: np.ndarray, half_width: float) -> np.ndarray:
    """Morton keys for ``(n, 3)`` positions within the given bounding cube.

    Bit layout: key = interleave(x, y, z) with x occupying the *highest*
    bit of each 3-bit digit, so a key's digit at depth ``d`` is the octant
    index ``(x_bit << 2) | (y_bit << 1) | z_bit``.
    """
    cells = grid_coordinates(positions, center, half_width)
    return (
        (_spread_bits(cells[:, 0]) << np.uint64(2))
        | (_spread_bits(cells[:, 1]) << np.uint64(1))
        | _spread_bits(cells[:, 2])
    )


def decode(keys: np.ndarray) -> np.ndarray:
    """Recover integer grid coordinates ``(n, 3)`` from Morton keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    x = _compact_bits(keys >> np.uint64(2))
    y = _compact_bits(keys >> np.uint64(1))
    z = _compact_bits(keys)
    return np.stack([x, y, z], axis=1)


def key_octant(keys: np.ndarray, depth: int) -> np.ndarray:
    """The 3-bit octant digit of each key at octree ``depth`` (0-based root children).

    ``depth = 0`` selects the most-significant digit (which root child the
    body falls into).
    """
    if not 0 <= depth < MAX_DEPTH:
        raise ValueError(f"depth must be in [0, {MAX_DEPTH}), got {depth}")
    shift = np.uint64(3 * (MAX_DEPTH - 1 - depth))
    return ((np.asarray(keys, dtype=np.uint64) >> shift) & np.uint64(0b111)).astype(
        np.int64
    )

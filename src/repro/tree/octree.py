"""Array-based octree built over Morton-sorted bodies.

Construction follows the standard GPU-treecode recipe (Hamada et al. 2009;
Bonsai): bodies are sorted by Morton key once, after which every node of
the octree covers a contiguous slice ``[start, end)`` of the sorted body
array.  Node child boundaries are found by binary search on the key array,
and centre-of-mass moments come from prefix sums, so the build is
O(M log N) for M nodes with small constants and no per-body Python work.

The resulting :class:`Octree` stores all node attributes as flat NumPy
arrays (structure-of-arrays), which is what the traversal kernels and the
simulated GPU plans consume.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import TreeError
from repro.tree import morton

__all__ = ["Octree", "build_octree"]

_OCTANT_OFFSETS = np.array(
    [
        [(o >> 2) & 1, (o >> 1) & 1, o & 1]  # x is the high bit, matching morton.encode
        for o in range(8)
    ],
    dtype=np.float64,
) * 2.0 - 1.0  # map {0,1} -> {-1,+1}


class Octree:
    """An immutable octree over a snapshot of body positions.

    Attributes (all NumPy arrays, ``M`` = node count, ``N`` = body count):

    ``centers (M, 3)``, ``half_widths (M,)``
        Geometric cube of each node.
    ``starts (M,)``, ``ends (M,)``
        Contiguous body range (in Morton order) covered by each node.
    ``children (M, 8)``
        Child node indices, ``-1`` where absent.  Leaves have all ``-1``.
    ``is_leaf (M,)``
        Boolean leaf mask.
    ``depths (M,)``
        Node depth, root = 0.
    ``coms (M, 3)``, ``node_masses (M,)``
        Monopole moments (mass-weighted mean position, total mass).
    ``positions (N, 3)``, ``masses (N,)``, ``keys (N,)``, ``order (N,)``
        Bodies in Morton order; ``order[i]`` is the original index of
        sorted body ``i``.
    """

    def __init__(
        self,
        *,
        centers: np.ndarray,
        half_widths: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        children: np.ndarray,
        is_leaf: np.ndarray,
        depths: np.ndarray,
        coms: np.ndarray,
        node_masses: np.ndarray,
        positions: np.ndarray,
        masses: np.ndarray,
        keys: np.ndarray,
        order: np.ndarray,
        leaf_size: int,
    ) -> None:
        self.centers = centers
        self.half_widths = half_widths
        self.starts = starts
        self.ends = ends
        self.children = children
        self.is_leaf = is_leaf
        self.depths = depths
        self.coms = coms
        self.node_masses = node_masses
        self.positions = positions
        self.masses = masses
        self.keys = keys
        self.order = order
        self.leaf_size = leaf_size

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of octree nodes (including the root)."""
        return self.centers.shape[0]

    @property
    def n_bodies(self) -> int:
        """Number of bodies the tree was built over."""
        return self.positions.shape[0]

    @property
    def root(self) -> int:
        """Index of the root node (always 0)."""
        return 0

    def node_counts(self) -> np.ndarray:
        """Bodies per node, shape ``(M,)``."""
        return self.ends - self.starts

    def node_sizes(self) -> np.ndarray:
        """Side length ``l`` of each node's cube (the BH criterion's ``l``)."""
        return 2.0 * self.half_widths

    def leaf_nodes(self) -> np.ndarray:
        """Indices of all leaf nodes."""
        return np.flatnonzero(self.is_leaf)

    def unsort(self, values_sorted: np.ndarray) -> np.ndarray:
        """Scatter per-sorted-body values back to the original body order."""
        out = np.empty_like(values_sorted)
        out[self.order] = values_sorted
        return out

    def max_depth(self) -> int:
        """Deepest node level present in the tree."""
        return int(self.depths.max())

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`TreeError` on violation.

        Intended for tests and debugging — O(N + M) work.
        """
        m = self.n_nodes
        if self.starts[0] != 0 or self.ends[0] != self.n_bodies:
            raise TreeError("root must cover the whole body range")
        for i in range(m):
            s, e = int(self.starts[i]), int(self.ends[i])
            if not 0 <= s < e <= self.n_bodies:
                raise TreeError(f"node {i} has empty or out-of-range body span [{s},{e})")
            kids = self.children[i][self.children[i] >= 0]
            if self.is_leaf[i]:
                if kids.size:
                    raise TreeError(f"leaf {i} has children")
                continue
            if not kids.size:
                raise TreeError(f"internal node {i} has no children")
            spans = sorted((int(self.starts[k]), int(self.ends[k])) for k in kids)
            cursor = s
            for ks, ke in spans:
                if ks != cursor:
                    raise TreeError(f"children of node {i} do not tile its span")
                cursor = ke
            if cursor != e:
                raise TreeError(f"children of node {i} do not cover its span")
            for k in kids:
                if self.half_widths[k] > self.half_widths[i] * 0.5 + 1e-12:
                    raise TreeError(f"child {int(k)} of {i} is not half-sized")
                if self.depths[k] != self.depths[i] + 1:
                    raise TreeError(f"child {int(k)} of {i} has wrong depth")
        # geometric containment of bodies and COMs
        lo = self.centers - self.half_widths[:, np.newaxis]
        hi = self.centers + self.half_widths[:, np.newaxis]
        pad = 1e-9 * (1.0 + np.abs(self.centers).max())
        for i in range(m):
            s, e = int(self.starts[i]), int(self.ends[i])
            p = self.positions[s:e]
            if (p < lo[i] - pad).any() or (p > hi[i] + pad).any():
                raise TreeError(f"node {i} contains bodies outside its cube")
            if (self.coms[i] < lo[i] - pad).any() or (self.coms[i] > hi[i] + pad).any():
                raise TreeError(f"node {i} COM outside its cube")
        # monopole consistency at the root
        total = float(self.masses.sum())
        if not np.isclose(self.node_masses[0], total, rtol=1e-12):
            raise TreeError("root mass does not equal total body mass")


def build_octree(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    leaf_size: int = 32,
    center: np.ndarray | None = None,
    half_width: float | None = None,
) -> Octree:
    """Build an :class:`Octree` over the given bodies.

    Parameters
    ----------
    leaf_size:
        Maximum bodies per leaf; nodes with at most this many bodies are
        not subdivided.  Subdivision also stops at Morton resolution
        (:data:`repro.tree.morton.MAX_DEPTH`), so coincident bodies cannot
        recurse forever.
    center, half_width:
        Optional explicit bounding cube; computed from the data when
        omitted.
    """
    positions = np.ascontiguousarray(positions, dtype=np.float64)
    masses = np.ascontiguousarray(masses, dtype=np.float64)
    n = positions.shape[0]
    if n == 0:
        raise TreeError("cannot build an octree over zero bodies")
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise TreeError(f"positions must be (n, 3), got {positions.shape}")
    if masses.shape != (n,):
        raise TreeError(f"masses must be ({n},), got {masses.shape}")
    if leaf_size < 1:
        raise TreeError(f"leaf_size must be >= 1, got {leaf_size}")

    if center is None or half_width is None:
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        auto_center = 0.5 * (lo + hi)
        auto_half = float(np.max(hi - lo)) * 0.5
        auto_half = auto_half * (1.0 + 1e-9) + 1e-12
        if center is None:
            center = auto_center
        if half_width is None:
            half_width = auto_half
    center = np.asarray(center, dtype=np.float64)

    keys = morton.encode(positions, center, half_width)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    pos_s = positions[order]
    mass_s = masses[order]

    # prefix sums for O(1) monopole moments per node
    csum_m = np.concatenate([[0.0], np.cumsum(mass_s)])
    csum_mx = np.vstack([np.zeros(3), np.cumsum(mass_s[:, np.newaxis] * pos_s, axis=0)])

    centers: list[np.ndarray] = []
    half_widths: list[float] = []
    starts: list[int] = []
    ends: list[int] = []
    children: list[np.ndarray] = []
    is_leaf: list[bool] = []
    depths: list[int] = []

    def new_node(c: np.ndarray, h: float, s: int, e: int, d: int) -> int:
        idx = len(centers)
        centers.append(c)
        half_widths.append(h)
        starts.append(s)
        ends.append(e)
        children.append(np.full(8, -1, dtype=np.int64))
        is_leaf.append(True)
        depths.append(d)
        return idx

    root = new_node(center, float(half_width), 0, n, 0)
    stack: list[int] = [root]
    digit_mask = np.uint64(0b111)

    while stack:
        node = stack.pop()
        s, e, d = starts[node], ends[node], depths[node]
        if e - s <= leaf_size or d >= morton.MAX_DEPTH:
            continue  # remains a leaf
        is_leaf[node] = False
        shift = np.uint64(3 * (morton.MAX_DEPTH - 1 - d))
        digits = ((keys[s:e] >> shift) & digit_mask).astype(np.int64)
        # sorted keys => digits are non-decreasing; child boundaries by search
        bounds = s + np.searchsorted(digits, np.arange(9))
        child_half = half_widths[node] * 0.5
        for o in range(8):
            cs, ce = int(bounds[o]), int(bounds[o + 1])
            if cs == ce:
                continue
            c_center = centers[node] + child_half * _OCTANT_OFFSETS[o]
            k = new_node(c_center, child_half, cs, ce, d + 1)
            children[node][o] = k
            stack.append(k)
        if (children[node] < 0).all():  # pragma: no cover - defensive
            raise TreeError(f"internal node {node} produced no children")

    starts_a = np.asarray(starts, dtype=np.int64)
    ends_a = np.asarray(ends, dtype=np.int64)
    node_masses = csum_m[ends_a] - csum_m[starts_a]
    if np.any(node_masses <= 0.0):
        raise TreeError("node with non-positive mass (zero-mass bodies?)")
    coms = (csum_mx[ends_a] - csum_mx[starts_a]) / node_masses[:, np.newaxis]

    if obs.enabled:
        obs.inc("octree_builds_total")
        obs.set_gauge("tree_depth", max(depths))
        obs.set_gauge("tree_nodes", len(centers))
        obs.instant(
            "octree_built",
            n_bodies=n,
            n_nodes=len(centers),
            max_depth=max(depths),
            leaf_size=leaf_size,
        )

    return Octree(
        centers=np.asarray(centers),
        half_widths=np.asarray(half_widths),
        starts=starts_a,
        ends=ends_a,
        children=np.asarray(children),
        is_leaf=np.asarray(is_leaf),
        depths=np.asarray(depths, dtype=np.int64),
        coms=coms,
        node_masses=node_masses,
        positions=pos_s,
        masses=mass_s,
        keys=keys,
        order=np.asarray(order, dtype=np.int64),
        leaf_size=leaf_size,
    )

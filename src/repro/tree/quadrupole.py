"""Quadrupole moments — the accuracy extension of the basic treecode.

The paper's treecode (like Barnes & Hut 1986) truncates the multipole
expansion at the monopole.  The standard next step — carried by most
production treecodes and by the paper's cited follow-up work — adds the
traceless quadrupole tensor

    Q_jk = sum_i m_i (3 x_j x_k - |x|^2 delta_jk),   x = body - cell COM

which reduces the force error at fixed theta by roughly an order of
magnitude for near-spherical cells, letting a larger theta (shorter
interaction lists, less device work) reach the same accuracy.

The cell acceleration including the quadrupole term is

    a = -G M r / r^3  +  G [ Q r / r^5 - (5/2) (r^T Q r) r / r^7 ]

with ``r`` the vector from the cell's centre of mass to the target.

Moments are computed in O(N + M) from prefix sums over the Morton-sorted
bodies, mirroring how the octree computes its monopoles.
"""

from __future__ import annotations

import numpy as np

from repro.tree.mac import PointMAC
from repro.tree.octree import Octree

__all__ = ["quadrupole_moments", "bh_accelerations_quadrupole"]


def quadrupole_moments(tree: Octree) -> np.ndarray:
    """Traceless quadrupole tensor of every node, shape ``(M, 3, 3)``.

    Uses prefix sums of the second-moment outer products over the sorted
    body array, then shifts them to each node's centre of mass via the
    parallel-axis relation — no per-node body loops.
    """
    pos = tree.positions
    m = tree.masses
    # prefix sums of m, m*x, and m * outer(x, x)
    csum_m = np.concatenate([[0.0], np.cumsum(m)])
    csum_mx = np.vstack([np.zeros(3), np.cumsum(m[:, None] * pos, axis=0)])
    outer = m[:, None, None] * (pos[:, :, None] * pos[:, None, :])
    csum_mxx = np.concatenate([np.zeros((1, 3, 3)), np.cumsum(outer, axis=0)])

    s, e = tree.starts, tree.ends
    m_node = csum_m[e] - csum_m[s]                       # (M,)
    mx = csum_mx[e] - csum_mx[s]                          # (M, 3)
    mxx = csum_mxx[e] - csum_mxx[s]                       # (M, 3, 3)
    com = tree.coms                                       # (M, 3)

    # second moments about the COM: S = sum m (x - c)(x - c)^T
    #                                  = mxx - c mx^T - mx c^T + m c c^T
    S = (
        mxx
        - com[:, :, None] * mx[:, None, :]
        - mx[:, :, None] * com[:, None, :]
        + m_node[:, None, None] * (com[:, :, None] * com[:, None, :])
    )
    trace = np.einsum("nii->n", S)
    eye = np.eye(3)
    return 3.0 * S - trace[:, None, None] * eye[None, :, :]


def _quad_acceleration(
    d: np.ndarray, dist2: np.ndarray, mass: float, Q: np.ndarray
) -> np.ndarray:
    """Monopole + quadrupole acceleration for displacement(s) ``d = com - x``.

    ``d`` is ``(k, 3)`` pointing from target to COM, ``dist2 = |d|^2``
    (softened).  Returns ``(k, 3)``.
    """
    inv_r2 = 1.0 / dist2
    inv_r = np.sqrt(inv_r2)
    inv_r3 = inv_r * inv_r2
    inv_r5 = inv_r3 * inv_r2
    inv_r7 = inv_r5 * inv_r2
    # monopole: +m d / r^3   (d points target -> com, i.e. attractive)
    acc = mass * inv_r3[:, None] * d
    # quadrupole (r = -d is com -> target):  Q r / r^5 - 2.5 (r^T Q r) r / r^7
    r = -d
    Qr = r @ Q.T
    rQr = np.einsum("ij,ij->i", r, Qr)
    acc += Qr * inv_r5[:, None] - 2.5 * (rQr * inv_r7)[:, None] * r
    return acc


def bh_accelerations_quadrupole(
    tree: Octree,
    *,
    theta: float = 0.6,
    softening: float = 0.0,
    G: float = 1.0,
    targets: np.ndarray | None = None,
    quads: np.ndarray | None = None,
) -> np.ndarray:
    """Barnes-Hut accelerations with monopole + quadrupole cell terms.

    Same traversal and acceptance criterion as
    :func:`repro.tree.traversal.bh_accelerations`; only the accepted-cell
    contribution changes, so error differences isolate the multipole
    order.  ``quads`` may be passed to amortise the moment computation.
    """
    mac = PointMAC(theta)
    if quads is None:
        quads = quadrupole_moments(tree)
    self_targets = targets is None
    tpos = tree.positions if self_targets else np.asarray(targets, dtype=np.float64)
    if tpos.ndim != 2 or tpos.shape[1] != 3:
        raise ValueError(f"targets must be (k, 3), got {tpos.shape}")
    k = tpos.shape[0]
    acc = np.zeros((k, 3))
    eps2 = softening * softening
    sizes = tree.node_sizes()

    stack: list[tuple[int, np.ndarray]] = [(tree.root, np.arange(k))]
    while stack:
        node, idx = stack.pop()
        s, e = int(tree.starts[node]), int(tree.ends[node])
        if tree.is_leaf[node]:
            d = tree.positions[s:e][np.newaxis, :, :] - tpos[idx][:, np.newaxis, :]
            r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
            if eps2 == 0.0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    inv_r3 = r2 ** (-1.5)
                inv_r3[r2 == 0.0] = 0.0
            else:
                inv_r3 = r2 ** (-1.5)
            w = inv_r3 * tree.masses[s:e][np.newaxis, :]
            acc[idx] += np.einsum("ij,ijk->ik", w, d)
            continue

        d = tree.coms[node] - tpos[idx]
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        ok = mac.accept(sizes[node], dist)
        if self_targets:
            inside = (idx >= s) & (idx < e)
            ok &= ~inside
        if ok.any():
            sel = np.flatnonzero(ok)
            acc[idx[sel]] += _quad_acceleration(
                d[sel], dist[sel] ** 2 + eps2,
                float(tree.node_masses[node]), quads[node],
            )
        rest = idx[~ok]
        if rest.size:
            for child in tree.children[node]:
                if child >= 0:
                    stack.append((int(child), rest))

    if G != 1.0:
        acc *= G
    if self_targets:
        return tree.unsort(acc)
    return acc

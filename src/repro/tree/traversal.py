"""Per-body Barnes-Hut tree traversal — the CPU reference treecode.

This is the classic algorithm of section 2.2 of the paper: for each target
body, walk the tree from the root; replace sufficiently distant cells by
their monopole, open the rest, and sum leaf bodies directly.

The implementation is *frontier-vectorised*: instead of one Python-level
traversal per body, the tree is walked once with, at every node, the NumPy
array of target indices that still need that node.  Work is therefore
proportional to the total interaction count with O(nodes) Python overhead,
which keeps the reference usable up to N ~ 10^5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tree.mac import PointMAC
from repro.tree.octree import Octree

__all__ = ["TraversalStats", "bh_accelerations"]


@dataclass
class TraversalStats:
    """Work counts accumulated by a traversal.

    ``cell_interactions``
        Number of (body, accepted-cell) monopole evaluations.
    ``body_interactions``
        Number of (body, leaf-body) direct evaluations.
    ``nodes_visited``
        Number of (node, frontier) visits — Python-level loop iterations.
    """

    cell_interactions: int = 0
    body_interactions: int = 0
    nodes_visited: int = 0

    @property
    def total_interactions(self) -> int:
        """All pairwise force evaluations performed."""
        return self.cell_interactions + self.body_interactions


def bh_accelerations(
    tree: Octree,
    *,
    theta: float = 0.6,
    softening: float = 0.0,
    G: float = 1.0,
    targets: np.ndarray | None = None,
    stats: TraversalStats | None = None,
) -> np.ndarray:
    """Barnes-Hut accelerations on target positions.

    Parameters
    ----------
    tree:
        An :class:`~repro.tree.octree.Octree` over the source bodies.
    targets:
        ``(k, 3)`` positions to evaluate at.  When omitted, the tree's own
        bodies are used and the result is returned in the **original**
        (pre-Morton-sort) body order.
    stats:
        Optional :class:`TraversalStats` to accumulate work counts into.

    Returns
    -------
    ``(k, 3)`` acceleration array (or ``(N, 3)`` in original body order).
    """
    mac = PointMAC(theta)
    self_targets = targets is None
    tpos = tree.positions if self_targets else np.asarray(targets, dtype=np.float64)
    if tpos.ndim != 2 or tpos.shape[1] != 3:
        raise ValueError(f"targets must be (k, 3), got {tpos.shape}")
    k = tpos.shape[0]
    acc = np.zeros((k, 3))
    eps2 = softening * softening
    sizes = tree.node_sizes()

    # frontier stack: (node index, indices of targets needing this node)
    stack: list[tuple[int, np.ndarray]] = [(tree.root, np.arange(k))]
    while stack:
        node, idx = stack.pop()
        if stats is not None:
            stats.nodes_visited += 1
        s, e = int(tree.starts[node]), int(tree.ends[node])
        if tree.is_leaf[node]:
            # direct sum over the leaf's bodies for every pending target
            d = tree.positions[s:e][np.newaxis, :, :] - tpos[idx][:, np.newaxis, :]
            r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
            if eps2 == 0.0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    inv_r3 = r2 ** (-1.5)
                inv_r3[r2 == 0.0] = 0.0  # self-interaction (or coincident body)
            else:
                inv_r3 = r2 ** (-1.5)
            w = inv_r3 * tree.masses[s:e][np.newaxis, :]
            acc[idx] += np.einsum("ij,ijk->ik", w, d)
            if stats is not None:
                stats.body_interactions += idx.size * (e - s)
            continue

        d = tree.coms[node] - tpos[idx]
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        ok = mac.accept(sizes[node], dist)
        # A target body *inside* this node must never accept it (self-force);
        # geometric containment check is cheap and exact for self-targets.
        if self_targets:
            inside = (idx >= s) & (idx < e)
            ok &= ~inside
        if ok.any():
            sel = np.flatnonzero(ok)
            r2 = dist[sel] ** 2 + eps2
            w = tree.node_masses[node] * r2 ** (-1.5)
            acc[idx[sel]] += w[:, np.newaxis] * d[sel]
            if stats is not None:
                stats.cell_interactions += sel.size
        rest = idx[~ok]
        if rest.size:
            for child in tree.children[node]:
                if child >= 0:
                    stack.append((int(child), rest))

    if G != 1.0:
        acc *= G
    if self_targets:
        return tree.unsort(acc)
    return acc

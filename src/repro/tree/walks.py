"""Walk (interaction-list) generation — the multiple-walk treecode substrate.

A *walk* is the unit of GPU work in the w-parallel and jw-parallel plans
(sections 4.2-4.3 of the paper): a spatially-coherent group of bodies that
traverses the tree **together** and shares one interaction list.  The
traversal produces, per walk:

* a **cell list** — tree nodes accepted by the group MAC, evaluated as
  monopoles;
* a **particle list** — bodies of opened leaves, evaluated directly
  (this always includes the group's own bodies, whose softened
  self-interaction is zero).

The host (CPU) generates walks; the device (GPU) evaluates the resulting
dense interactions.  The per-walk interaction counts produced here are what
drives the simulated GPU's timing for the w/jw plans, and evaluating the
lists reproduces the exact arithmetic the device kernels perform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TreeError
from repro.tree.mac import GroupMAC, aabb_distance
from repro.tree.octree import Octree

__all__ = [
    "Walk",
    "WalkSet",
    "make_groups",
    "cell_groups",
    "uniform_groups",
    "generate_walks",
]


@dataclass(frozen=True)
class Walk:
    """One walk: a body group plus its interaction lists.

    ``start``/``end`` index the tree's Morton-sorted body arrays; the
    cell/particle lists index tree nodes and sorted bodies respectively.
    """

    index: int
    start: int
    end: int
    cell_list: np.ndarray  # node indices accepted as monopoles
    particle_list: np.ndarray  # sorted-body indices summed directly

    @property
    def n_bodies(self) -> int:
        """Number of target bodies in the group."""
        return self.end - self.start

    @property
    def list_length(self) -> int:
        """Sources in the shared interaction list (cells + particles)."""
        return int(self.cell_list.size + self.particle_list.size)

    @property
    def interactions(self) -> int:
        """Body-source force evaluations this walk performs."""
        return self.n_bodies * self.list_length


class WalkSet:
    """All walks for one tree snapshot, plus aggregate statistics."""

    def __init__(self, tree: Octree, walks: list[Walk], theta: float) -> None:
        self.tree = tree
        self.walks = walks
        self.theta = theta

    def __len__(self) -> int:
        return len(self.walks)

    def __iter__(self):
        return iter(self.walks)

    def __getitem__(self, i: int) -> Walk:
        return self.walks[i]

    @property
    def total_interactions(self) -> int:
        """Total body-source evaluations across all walks (one force pass)."""
        return sum(w.interactions for w in self.walks)

    def interactions_per_walk(self) -> np.ndarray:
        """Per-walk interaction counts (the load-balance input)."""
        return np.asarray([w.interactions for w in self.walks], dtype=np.int64)

    def list_lengths(self) -> np.ndarray:
        """Per-walk interaction-list lengths."""
        return np.asarray([w.list_length for w in self.walks], dtype=np.int64)

    def group_sizes(self) -> np.ndarray:
        """Per-walk body-group sizes."""
        return np.asarray([w.n_bodies for w in self.walks], dtype=np.int64)

    def load_imbalance(self) -> float:
        """Max over mean of per-walk interactions — 1.0 is perfectly even."""
        work = self.interactions_per_walk()
        mean = work.mean()
        if mean == 0:
            return 1.0
        return float(work.max() / mean)


def uniform_groups(n_bodies: int, group_size: int) -> np.ndarray:
    """Contiguous ``(k, 2)`` ranges of at most ``group_size`` sorted bodies."""
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if n_bodies < 1:
        raise ValueError(f"n_bodies must be >= 1, got {n_bodies}")
    starts = np.arange(0, n_bodies, group_size)
    ends = np.minimum(starts + group_size, n_bodies)
    return np.stack([starts, ends], axis=1)


def make_groups(tree: Octree, max_group_size: int) -> np.ndarray:
    """Body groups aligned to leaf boundaries, each at most ``max_group_size``.

    Walks the leaves in Morton order and packs consecutive leaves while the
    running size stays within the budget; a single oversized leaf (possible
    when ``leaf_size > max_group_size``) is split into uniform chunks.
    Returns ``(k, 2)`` ``[start, end)`` ranges over sorted bodies.
    """
    if max_group_size < 1:
        raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")
    leaves = tree.leaf_nodes()
    leaf_starts = tree.starts[leaves]
    order = np.argsort(leaf_starts)
    groups: list[tuple[int, int]] = []
    cur_start = 0
    cur_end = 0
    for li in leaves[order]:
        s, e = int(tree.starts[li]), int(tree.ends[li])
        if s != cur_end:  # pragma: no cover - leaves tile the body range
            raise TreeError("leaves do not tile the body range")
        if e - s > max_group_size:
            # flush pending group, then split the big leaf uniformly
            if cur_end > cur_start:
                groups.append((cur_start, cur_end))
            for cs in range(s, e, max_group_size):
                groups.append((cs, min(cs + max_group_size, e)))
            cur_start = cur_end = e
            continue
        if e - cur_start > max_group_size:
            groups.append((cur_start, cur_end))
            cur_start = cur_end
        cur_end = e
    if cur_end > cur_start:
        groups.append((cur_start, cur_end))
    return np.asarray(groups, dtype=np.int64)


def cell_groups(tree: Octree, max_group_size: int) -> np.ndarray:
    """Body groups taken directly from tree cells (Hamada-style walks).

    Descends from the root and emits every *maximal* node whose body count
    is at most ``max_group_size``.  This is how the original multiple-walk
    method (and the paper's w-parallel plan) forms walks: groups follow
    the tree geometry, so their sizes vary widely with the local density —
    the source of the ~1/3 lane-utilisation loss the paper attributes to
    w-parallel.  (A node deeper than Morton resolution can exceed the
    budget and is split uniformly.)  Returns ``(k, 2)`` ranges over sorted
    bodies.
    """
    if max_group_size < 1:
        raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")
    counts = tree.node_counts()
    groups: list[tuple[int, int]] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        s, e = int(tree.starts[node]), int(tree.ends[node])
        if counts[node] <= max_group_size:
            groups.append((s, e))
            continue
        if tree.is_leaf[node]:
            # oversized leaf (coincident bodies at max Morton depth)
            for cs in range(s, e, max_group_size):
                groups.append((cs, min(cs + max_group_size, e)))
            continue
        for child in tree.children[node]:
            if child >= 0:
                stack.append(int(child))
    groups.sort()
    return np.asarray(groups, dtype=np.int64)


def generate_walks(
    tree: Octree,
    *,
    theta: float = 0.6,
    group_size: int = 256,
    groups: np.ndarray | None = None,
) -> WalkSet:
    """Generate walks (interaction lists) for every body group.

    The group traversal is frontier-vectorised: each iteration classifies
    the whole frontier of candidate nodes at once.  A node is

    * **accepted** (cell list) when the group MAC holds *and* its body
      range does not overlap the group's own range;
    * sent to the **particle list** when it is a leaf that was not
      accepted;
    * **opened** otherwise.
    """
    mac = GroupMAC(theta)
    if groups is None:
        groups = make_groups(tree, group_size)
    groups = np.asarray(groups, dtype=np.int64)
    if groups.ndim != 2 or groups.shape[1] != 2:
        raise ValueError(f"groups must be (k, 2), got {groups.shape}")

    sizes = tree.node_sizes()
    walks: list[Walk] = []
    for widx, (gs, ge) in enumerate(groups):
        gs, ge = int(gs), int(ge)
        if not 0 <= gs < ge <= tree.n_bodies:
            raise ValueError(f"group [{gs},{ge}) out of range")
        gpos = tree.positions[gs:ge]
        lo = gpos.min(axis=0)
        hi = gpos.max(axis=0)

        cells: list[np.ndarray] = []
        parts: list[np.ndarray] = []
        frontier = np.array([tree.root], dtype=np.int64)
        while frontier.size:
            ok = mac.accept(sizes[frontier], lo, hi, tree.coms[frontier])
            # never approximate a node containing group members
            overlap = (tree.starts[frontier] < ge) & (tree.ends[frontier] > gs)
            ok &= ~overlap
            accepted = frontier[ok]
            if accepted.size:
                cells.append(accepted)
            rest = frontier[~ok]
            if not rest.size:
                break
            leaf = tree.is_leaf[rest]
            for li in rest[leaf]:
                parts.append(np.arange(tree.starts[li], tree.ends[li], dtype=np.int64))
            opened = rest[~leaf]
            if opened.size:
                kids = tree.children[opened].ravel()
                frontier = kids[kids >= 0]
            else:
                frontier = np.empty(0, dtype=np.int64)

        walks.append(
            Walk(
                index=widx,
                start=gs,
                end=ge,
                cell_list=(
                    np.concatenate(cells) if cells else np.empty(0, dtype=np.int64)
                ),
                particle_list=(
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
                ),
            )
        )
    return WalkSet(tree, walks, theta)

"""Shared fixtures and helpers for the test suite.

Plain helpers (``make_sim``, ``small_spec``, ``Interrupt``...) are
importable as ``from tests.conftest import ...`` so the runtime/serve/
exec/check test modules share one definition instead of copy-pasting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plans import PlanConfig, plan_by_name
from repro.core.simulation import Simulation
from repro.nbody.ic import plummer, uniform_sphere

#: Softening used throughout the functional tests.
EPS = 1e-2


# ---------------------------------------------------------------------------
# Shared helpers (import from tests.conftest)
# ---------------------------------------------------------------------------

def make_sim(plan_name="j", n=96, seed=7, engine=None, wg_size=256, dt=1e-3):
    """A small deterministic simulation — the runtime/serve test workhorse."""
    particles = plummer(n, seed=seed)
    plan = plan_by_name(
        plan_name, PlanConfig(softening=EPS, wg_size=wg_size), engine=engine
    )
    return Simulation(particles, plan, dt=dt)


class Interrupt(RuntimeError):
    """Stands in for a crash/SIGTERM mid-run."""


def interrupt_at(step):
    """A run callback that raises :class:`Interrupt` at ``step``."""

    def callback(sim):
        if sim.record.steps == step:
            raise Interrupt(f"killed at step {step}")

    return callback


def small_spec(**kw):
    """A cheap :class:`~repro.serve.JobSpec`; override any field via kwargs."""
    from repro.serve import JobSpec

    base = dict(workload="plummer", n=128, seed=1, plan="jw", dt=1e-3, steps=5)
    base.update(kw)
    return JobSpec(**base)


def solo_state(spec):
    """Final (positions, velocities, time) of ``spec`` run standalone."""
    sim = spec.build_simulation()
    for _ in range(spec.steps):
        sim.step()
    return (
        sim.particles.positions.copy(),
        sim.particles.velocities.copy(),
        sim.time,
    )


@pytest.fixture(scope="session")
def plummer_small():
    """A 256-body Plummer sphere (session-scoped; treat as read-only)."""
    return plummer(256, seed=11)


@pytest.fixture(scope="session")
def plummer_medium():
    """A 2048-body Plummer sphere (session-scoped; treat as read-only)."""
    return plummer(2048, seed=12)


@pytest.fixture(scope="session")
def uniform_small():
    """A 512-body uniform sphere (session-scoped; treat as read-only)."""
    return uniform_sphere(512, seed=13)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def config():
    """Default plan configuration with the test softening."""
    return PlanConfig(softening=EPS)


@pytest.fixture(scope="session")
def bodies():
    """(positions, masses) of a 1024-body Plummer sphere (read-only)."""
    p = plummer(1024, seed=7)
    return p.positions, p.masses

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plans import PlanConfig
from repro.nbody.ic import plummer, uniform_sphere

#: Softening used throughout the functional tests.
EPS = 1e-2


@pytest.fixture(scope="session")
def plummer_small():
    """A 256-body Plummer sphere (session-scoped; treat as read-only)."""
    return plummer(256, seed=11)


@pytest.fixture(scope="session")
def plummer_medium():
    """A 2048-body Plummer sphere (session-scoped; treat as read-only)."""
    return plummer(2048, seed=12)


@pytest.fixture(scope="session")
def uniform_small():
    """A 512-body uniform sphere (session-scoped; treat as read-only)."""
    return uniform_sphere(512, seed=13)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def config():
    """Default plan configuration with the test softening."""
    return PlanConfig(softening=EPS)

"""API-surface tests: public exports, error hierarchy, version metadata.

Downstream users import from the package roots; these tests pin that the
documented public API actually resolves and that `__all__` is truthful.
"""

import importlib

import pytest

import repro
from repro import errors


PACKAGES = [
    "repro",
    "repro.nbody",
    "repro.tree",
    "repro.gpu",
    "repro.core",
    "repro.core.plans",
    "repro.perfmodel",
    "repro.bench",
    "repro.exec",
    "repro.obs",
    "repro.runtime",
    "repro.serve",
    "repro.plans",
    "repro.check",
]

#: The documented stable facade: ``from repro import <name>`` must work.
FACADE_EXPORTS = [
    "Simulation",
    "SimulationRecord",
    "ParticleSet",
    "PlanConfig",
    "IParallelPlan",
    "JParallelPlan",
    "WParallelPlan",
    "JwParallelPlan",
    "plan_by_name",
    "available_plans",
    "get_plan",
    "register",
    "resolve_plan",
    "RunSession",
    "RunLedger",
    "ExecutionEngine",
    "EnginePool",
    "RetryPolicy",
    "FaultInjector",
    "Client",
    "Coordinator",
    "Gateway",
    "JobHandle",
    "JobResult",
    "JobService",
    "JobSpec",
    "SubmitOptions",
    "TenantPolicy",
    "Worker",
    "connect",
    "configure",
    "ReproError",
    "VerificationError",
    "DifferentialOracle",
    "RunGuard",
    "TolerancePolicy",
    "GoldenStore",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.__all__ lists missing '{name}'"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_nonempty_and_unique(self, package):
        mod = importlib.import_module(package)
        assert mod.__all__
        assert len(set(mod.__all__)) == len(mod.__all__)

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_documented_quickstart_imports(self):
        # the exact imports the README shows
        from repro.core import JwParallelPlan, PlanConfig, Simulation  # noqa: F401
        from repro.nbody import plummer, total_energy  # noqa: F401

    def test_facade_pins(self):
        """Every documented front-door name resolves from the package root."""
        for name in FACADE_EXPORTS:
            assert name in repro.__all__, f"facade export '{name}' not pinned"
            assert hasattr(repro, name), f"repro.{name} does not resolve"

    def test_facade_names_match_canonical_definitions(self):
        from repro.core.simulation import Simulation
        from repro.nbody.particles import ParticleSet
        from repro.runtime import RunSession

        assert repro.Simulation is Simulation
        assert repro.ParticleSet is ParticleSet
        assert repro.RunSession is RunSession

    def test_serve_facade_matches_serve_package(self):
        import repro.serve as serve

        assert repro.connect is serve.connect
        assert repro.Coordinator is serve.Coordinator
        assert repro.Worker is serve.Worker
        assert repro.SubmitOptions is serve.SubmitOptions
        assert repro.TenantPolicy is serve.TenantPolicy
        assert repro.Gateway is serve.Gateway

    def test_facade_rejects_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_dir_includes_facade(self):
        listing = dir(repro)
        for name in FACADE_EXPORTS:
            assert name in listing


class TestUnifiedConfigure:
    """repro.configure subsumes the per-module entry points."""

    def test_configure_builds_default_engine(self):
        from repro.exec import get_default_engine, set_default_engine

        prior = get_default_engine()
        try:
            engine = repro.configure(workers=2, exec_backend="thread")
            assert get_default_engine() is engine
            assert engine.workers == 2
            assert engine.backend == "thread"
        finally:
            set_default_engine(prior)

    def test_configure_sets_retry_policy(self):
        from repro.exec import get_default_engine, set_default_engine

        prior = get_default_engine()
        try:
            engine = repro.configure(workers=1, max_retries=3)
            assert engine.retry is not None
            assert engine.retry.max_retries == 3
        finally:
            set_default_engine(prior)

    def test_configure_trace_toggle(self):
        from repro import obs

        repro.configure(trace=True)
        assert obs.enabled
        repro.configure(trace=False)
        assert not obs.enabled

    def test_trace_only_call_keeps_engine(self):
        from repro.exec import get_default_engine

        before = get_default_engine()
        repro.configure(trace=False)
        assert get_default_engine() is before

    def test_old_exec_configure_warns_and_delegates(self):
        import repro.exec as rexec
        from repro.exec import get_default_engine, set_default_engine

        prior = get_default_engine()
        try:
            with pytest.warns(DeprecationWarning, match="repro.configure"):
                engine = rexec.configure(workers=2, backend="thread")
            # same behaviour as the unified entry point
            assert get_default_engine() is engine
            assert engine.workers == 2
            assert engine.backend == "thread"
        finally:
            set_default_engine(prior)


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in (
            "ConfigurationError",
            "LaunchError",
            "DeviceError",
            "TreeError",
            "WorkloadError",
            "ExecutionError",
            "CheckpointError",
            "ServeError",
            "AdmissionError",
            "VerificationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_library_failures_catchable_by_base(self):
        import numpy as np

        from repro.nbody.particles import ParticleSet
        from repro.tree.octree import build_octree

        with pytest.raises(errors.ReproError):
            ParticleSet(np.zeros((2, 2)), np.zeros((2, 2)), np.ones(2))
        with pytest.raises(errors.ReproError):
            build_octree(np.zeros((0, 3)), np.zeros(0))

    def test_base_error_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestPlanRegistryConsistency:
    def test_registry_names_match_descriptors(self):
        from repro.core.plans import plan_by_name
        from repro.core.ptpm import PLAN_NAMES, describe

        for name in PLAN_NAMES:
            plan = plan_by_name(name)
            descriptor = describe(name)
            assert plan.name == descriptor.name
            assert plan.method == descriptor.method

    def test_experiment_registry_ids_match_results(self):
        from repro.bench.experiments import run_experiment

        res = run_experiment("abl-queue", n=2048)
        assert res.exp_id == "abl-queue"

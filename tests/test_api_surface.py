"""API-surface tests: public exports, error hierarchy, version metadata.

Downstream users import from the package roots; these tests pin that the
documented public API actually resolves and that `__all__` is truthful.
"""

import importlib

import pytest

import repro
from repro import errors


PACKAGES = [
    "repro",
    "repro.nbody",
    "repro.tree",
    "repro.gpu",
    "repro.core",
    "repro.core.plans",
    "repro.perfmodel",
    "repro.bench",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.__all__ lists missing '{name}'"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_nonempty_and_unique(self, package):
        mod = importlib.import_module(package)
        assert mod.__all__
        assert len(set(mod.__all__)) == len(mod.__all__)

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_documented_quickstart_imports(self):
        # the exact imports the README shows
        from repro.core import JwParallelPlan, PlanConfig, Simulation  # noqa: F401
        from repro.nbody import plummer, total_energy  # noqa: F401


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in (
            "ConfigurationError",
            "LaunchError",
            "DeviceError",
            "TreeError",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_library_failures_catchable_by_base(self):
        import numpy as np

        from repro.nbody.particles import ParticleSet
        from repro.tree.octree import build_octree

        with pytest.raises(errors.ReproError):
            ParticleSet(np.zeros((2, 2)), np.zeros((2, 2)), np.ones(2))
        with pytest.raises(errors.ReproError):
            build_octree(np.zeros((0, 3)), np.zeros(0))

    def test_base_error_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestPlanRegistryConsistency:
    def test_registry_names_match_descriptors(self):
        from repro.core.plans import plan_by_name
        from repro.core.ptpm import PLAN_NAMES, describe

        for name in PLAN_NAMES:
            plan = plan_by_name(name)
            descriptor = describe(name)
            assert plan.name == descriptor.name
            assert plan.method == descriptor.method

    def test_experiment_registry_ids_match_results(self):
        from repro.bench.experiments import run_experiment

        res = run_experiment("abl-queue", n=2048)
        assert res.exp_id == "abl-queue"

"""Shape tests for the experiment registry — the paper's claims, asserted.

These run the real experiments on a reduced sweep and check the
qualitative results the paper reports: who wins, by roughly what factor,
and how curves move with N.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_overlap,
    ablation_queue,
    ablation_theta,
    ablation_tile,
    fig4,
    fig5,
    run_experiment,
    table1,
    table2,
    table3,
)

SWEEP = (1024, 4096, 16384)


@pytest.fixture(scope="module")
def fig5_result():
    return fig5(n_values=SWEEP)


@pytest.fixture(scope="module")
def table2_result():
    return table2(n_values=SWEEP)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "table1", "table2", "table3",
            "abl-tile", "abl-theta", "abl-queue", "abl-overlap", "abl-quad",
            "ext-multigpu", "val-accuracy",
        }

    def test_run_experiment_dispatch(self):
        res = run_experiment("fig4", n_values=(1024, 2048))
        assert res.exp_id == "fig4"
        assert "jw" in res.table

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig4:
    def test_jw_gflops_rises_then_saturates(self):
        res = fig4(n_values=SWEEP)
        g = [r.kernel_gflops for r in res.data["rows"]]
        assert g[0] > 100  # already substantial at N=1024 (the j-split)
        assert g[-1] > 200  # approaching the ~300 sustained figure
        assert g[-1] >= g[0]

    def test_renders(self):
        res = fig4(n_values=SWEEP)
        out = res.render()
        assert "Fig. 4" in out
        assert "GFLOPS" in out


class TestFig5:
    def test_jw_leads_or_ties_at_every_n(self, fig5_result):
        # jw leads outright at small N (the headline claim); at large N the
        # regular PP kernels also saturate the device, so jw only needs to
        # stay within a few percent of the best
        rows = fig5_result.data["rows"]
        by_n: dict[int, dict[str, float]] = {}
        for r in rows:
            by_n.setdefault(r.n_bodies, {})[r.plan] = r.kernel_gflops
        for n, plans in by_n.items():
            if n < 4096:
                assert plans["jw"] == max(plans.values()), f"jw not best at N={n}"
            else:
                assert plans["jw"] >= 0.95 * max(plans.values())

    def test_i_parallel_rises_with_n(self, fig5_result):
        gi = [r.kernel_gflops for r in fig5_result.data["rows"] if r.plan == "i"]
        assert gi == sorted(gi)
        assert gi[0] < 100 < gi[-1] + 200

    def test_w_below_jw_by_utilization(self, fig5_result):
        rows = fig5_result.data["rows"]
        for n in SWEEP:
            gw = next(r for r in rows if r.plan == "w" and r.n_bodies == n)
            gjw = next(r for r in rows if r.plan == "jw" and r.n_bodies == n)
            assert gw.kernel_gflops < gjw.kernel_gflops

    def test_chart_includes_all_plans(self, fig5_result):
        for p in ("i", "j", "w", "jw"):
            assert f"= {p}" in fig5_result.chart


class TestTable1:
    def test_speedup_in_paper_range(self):
        res = table1(n_values=SWEEP)
        speedups = res.data["speedups"]
        # grows with N toward the paper's ~400x
        assert speedups == sorted(speedups)
        assert speedups[-1] > 200
        assert speedups[-1] < 1000

    def test_renders_cpu_column(self):
        res = table1(n_values=(1024,))
        assert "Pentium" in res.table


class TestTable2And3:
    def test_jw_fastest_total_everywhere(self, table2_result):
        rows = table2_result.data["rows"]
        by_n: dict[int, dict[str, float]] = {}
        for r in rows:
            by_n.setdefault(r.n_bodies, {})[r.plan] = r.total_seconds
        for n, plans in by_n.items():
            assert plans["jw"] == min(plans.values()), f"jw not fastest at N={n}"

    def test_jw_vs_w_factor_in_range(self, table2_result):
        rows = table2_result.data["rows"]
        for n in SWEEP:
            tw = next(r for r in rows if r.plan == "w" and r.n_bodies == n).total_seconds
            tjw = next(r for r in rows if r.plan == "jw" and r.n_bodies == n).total_seconds
            assert 1.5 <= tw / tjw <= 5.0

    def test_tree_beats_pp_at_large_n(self, table2_result):
        rows = table2_result.data["rows"]
        n = SWEEP[-1]
        ti = next(r for r in rows if r.plan == "i" and r.n_bodies == n).total_seconds
        tjw = next(r for r in rows if r.plan == "jw" and r.n_bodies == n).total_seconds
        assert ti / tjw > 2.0

    def test_table3_kernel_only_less_than_total(self):
        r2 = table2(n_values=(4096,))
        r3 = table3(n_values=(4096,))
        for a, b in zip(r3.data["rows"], r2.data["rows"]):
            assert a.kernel_seconds <= b.total_seconds


class TestAblations:
    def test_tile_ablation_has_all_points(self):
        res = ablation_tile(n_values=(4096,), wg_sizes=(64, 256))
        assert len(res.data["points"]) == 2

    def test_theta_tradeoff_monotone(self):
        res = ablation_theta(n=1024, thetas=(0.4, 0.8))
        errs = res.data["errors"]
        times = res.data["times"]
        assert errs[0] < errs[1]  # tighter theta -> lower error
        assert times[0] > times[1]  # ... and more time

    def test_theta_errors_at_bh_level(self):
        res = ablation_theta(n=1024, thetas=(0.6,))
        assert res.data["errors"][0] < 0.01

    def test_queue_ablation_ordering(self):
        res = ablation_queue(n=8192)
        o = res.data["outcomes"]
        assert o["dynamic"].makespan <= o["static"].makespan
        assert o["dynamic-lpt"].makespan <= o["dynamic"].makespan

    def test_overlap_gain_above_one(self):
        res = ablation_overlap(n_values=(4096, 16384))
        assert all(g > 1.0 for g in res.data["gains"])

    def test_quadrupole_improves_accuracy(self):
        res = run_experiment("abl-quad", n=1024, thetas=(0.8,))
        assert all(imp > 1.2 for imp in res.data["improvements"])

"""Tests for the benchmark harness: workloads, runner, tables, figures."""

import numpy as np
import pytest

from repro.bench.figures import ascii_chart
from repro.bench.runner import run_plan_point, run_sweep
from repro.bench.tables import fmt_gflops, fmt_int, fmt_ratio, fmt_seconds, format_table
from repro.bench.workloads import PAPER_N_SWEEP, QUICK_N_SWEEP, WORKLOADS, make_workload
from repro.errors import WorkloadError


class TestWorkloads:
    def test_paper_sweep_is_powers_of_two(self):
        for n in PAPER_N_SWEEP:
            assert n & (n - 1) == 0
        assert PAPER_N_SWEEP[0] == 1024

    def test_quick_subset(self):
        assert set(QUICK_N_SWEEP) <= set(PAPER_N_SWEEP)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_workloads_instantiate(self, name):
        p = make_workload(name, 128, seed=1)
        assert p.n == 128

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            make_workload("galaxy_brain", 10)


class TestRunner:
    def test_run_plan_point_scales_steps(self):
        r1 = run_plan_point("i", 1024, n_steps=1)
        r100 = run_plan_point("i", 1024, n_steps=100)
        assert r100.total_seconds == pytest.approx(100 * r1.total_seconds)
        assert r100.interactions == 100 * r1.interactions

    def test_row_metrics(self):
        r = run_plan_point("jw", 2048, n_steps=10)
        assert r.kernel_gflops > 0
        assert r.kernel_gflops_rsqrt == pytest.approx(r.kernel_gflops * 38 / 20)
        assert r.effective_gflops <= r.kernel_gflops

    def test_plan_kwargs_forwarded(self):
        r_on = run_plan_point("jw", 2048)
        r_off = run_plan_point("jw", 2048, overlap=False)
        assert r_off.total_seconds > r_on.total_seconds

    def test_plan_kwargs_validated(self):
        with pytest.raises(AttributeError):
            run_plan_point("jw", 1024, warp_drive=True)

    def test_sweep_ordering(self):
        rows = run_sweep(["i", "jw"], [1024, 2048], n_steps=1)
        assert [(r.plan, r.n_bodies) for r in rows] == [
            ("i", 1024), ("jw", 1024), ("i", 2048), ("jw", 2048),
        ]


class TestTables:
    def test_fmt_seconds_scales(self):
        assert fmt_seconds(5e-5) == "50.0 us"
        assert fmt_seconds(5e-3) == "5.00 ms"
        assert fmt_seconds(2.0) == "2.000 s"

    def test_fmt_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            fmt_seconds(-1.0)

    def test_fmt_helpers(self):
        assert fmt_gflops(123.456) == "123.5"
        assert fmt_ratio(2.345) == "2.35x"
        assert fmt_ratio(400.4) == "400x"
        assert fmt_int(1234567) == "1,234,567"

    def test_format_table_alignment(self):
        out = format_table("T", ["a", "bb"], [["1", "2"], ["10", "20"]], notes=["n1"])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "note: n1" in lines[-1]
        # all data lines equal width
        widths = {len(l) for l in lines[2:5]}
        assert len(widths) == 1

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table("T", ["a", "b"], [["1"]])
        with pytest.raises(ValueError):
            format_table("T", [], [])


class TestFigures:
    def test_chart_renders(self):
        out = ascii_chart(
            [1024, 2048, 4096],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            title="demo",
        )
        assert "demo" in out
        assert "o = a" in out
        assert "x = b" in out

    def test_chart_extremes_plotted(self):
        out = ascii_chart([1, 10], {"s": [0.0, 10.0]})
        assert "10.0" in out and "0.0" in out

    def test_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0, 2.0]}, width=4)

    def test_flat_series_ok(self):
        out = ascii_chart([1, 2], {"a": [5.0, 5.0]})
        assert "o = a" in out

"""Tests for the cross-validation harness."""

import pytest

from repro.bench.validation import ValidationCell, accuracy_matrix, render_accuracy_matrix
from repro.bench.experiments import run_experiment


class TestAccuracyMatrix:
    @pytest.fixture(scope="class")
    def cells(self):
        return accuracy_matrix(
            plans=("i", "jw"), workloads=("plummer", "uniform"), n=512
        )

    def test_full_grid(self, cells):
        assert len(cells) == 4
        assert {(c.plan, c.workload) for c in cells} == {
            ("i", "plummer"), ("i", "uniform"), ("jw", "plummer"), ("jw", "uniform"),
        }

    def test_all_pass(self, cells):
        assert all(c.passed for c in cells)

    def test_pp_tighter_than_bh(self, cells):
        e_i = max(c.rms_error for c in cells if c.plan == "i")
        e_jw = min(c.rms_error for c in cells if c.plan == "jw")
        assert e_i < e_jw

    def test_render(self, cells):
        out = render_accuracy_matrix(cells)
        assert "Validation" in out
        assert "ok" in out
        assert "plummer" in out and "uniform" in out

    def test_render_marks_failures(self):
        bad = ValidationCell("i", "plummer", 10, rms_error=1.0, tolerance=1e-4)
        out = render_accuracy_matrix([bad])
        assert "FAIL" in out

    def test_experiment_wrapper(self):
        res = run_experiment(
            "val-accuracy", n=256, plans=("j",), workloads=("plummer",)
        )
        assert res.data["all_passed"]
        assert res.exp_id == "val-accuracy"
